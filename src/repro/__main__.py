"""``python -m repro`` runs the command-line tool."""

import sys

from repro.tool.cli import main

if __name__ == "__main__":
    sys.exit(main())
