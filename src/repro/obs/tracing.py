"""Span tracing — nested, wall-clock-timed sections of a run.

The visualization tool's value is showing *how* a simulation or
verification evolves step by step; spans are the textual counterpart: each
simulator step, each alternating-scheme application opens a span carrying
attributes such as the operation label and the resulting node count.
Completed root spans are retained in a bounded ring buffer so a long
process never grows without bound.

Usage::

    tracer = Tracer()
    with tracer.span("sim.run", circuit="qft3") as root:
        with tracer.span("sim.step", index=0) as step:
            ...
            step.set_attribute("nodes", 5)
    print(format_span_tree(tracer.spans[-1]))

A disabled tracer (``Tracer(enabled=False)``, or globally via
:func:`repro.obs.set_enabled`) returns a shared null span whose methods are
no-ops, so instrumented code pays only one flag check per span.
"""

from __future__ import annotations

import functools
from collections import deque
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import is_enabled

__all__ = ["Span", "Tracer", "default_tracer", "format_span_tree", "traced"]


class Span:
    """One timed, attributed section; nests via the owning tracer."""

    __slots__ = ("name", "attributes", "children", "start_time", "end_time", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.children: List[Span] = []
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_time = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_time = perf_counter()
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} {self.duration * 1e3:.3f} ms>"


class _NullSpan:
    """Shared no-op span returned by disabled tracers."""

    name = ""
    attributes: Dict[str, object] = {}
    children: Tuple[()] = ()
    start_time = None
    end_time = None
    duration = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested spans and retains finished root spans.

    ``capacity`` bounds the ring buffer of retained root spans (children
    live through their parents, so retention is per tree).  ``enabled=None``
    defers to the global observability switch *per call*, so tracing can be
    toggled at runtime.
    """

    def __init__(self, enabled: Optional[bool] = None, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._enabled = enabled
        self._stack: List[Span] = []
        self._finished: deque = deque(maxlen=capacity)

    @property
    def enabled(self) -> bool:
        if self._enabled is None:
            return is_enabled()
        return self._enabled

    def span(self, name: str, **attributes):
        """Open a span as a context manager; nests under the current span."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def spans(self) -> Tuple[Span, ...]:
        """Retained finished *root* spans, oldest first."""
        return tuple(self._finished)

    def clear(self) -> None:
        self._stack.clear()
        self._finished.clear()

    # ------------------------------------------------------------------
    # span bookkeeping (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators abandoned mid-span) by
        # unwinding to the closing span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if not self._stack:
            self._finished.append(span)


def traced(
    name_or_func=None,
    tracer: Optional[Tracer] = None,
):
    """Decorator tracing every call of a function as one span.

    Works bare (``@traced``) or parameterized
    (``@traced("dd.multiply", tracer=my_tracer)``).  The tracer is resolved
    at call time, so the global default tracer picks up runtime toggling.
    """

    def decorate(func: Callable, span_name: Optional[str] = None) -> Callable:
        label = span_name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            active = tracer if tracer is not None else default_tracer()
            with active.span(label):
                return func(*args, **kwargs)

        return wrapper

    if callable(name_or_func):
        return decorate(name_or_func)
    return lambda func: decorate(func, name_or_func)


def _format_attributes(attributes: Dict[str, object]) -> str:
    if not attributes:
        return ""
    body = ", ".join(f"{key}={value}" for key, value in attributes.items())
    return f"  {{{body}}}"


def format_span_tree(span, indent: str = "") -> str:
    """Render a finished span and its children as an indented tree."""
    lines: List[str] = []

    def visit(node, prefix: str, child_prefix: str) -> None:
        lines.append(
            f"{prefix}{node.name}  [{node.duration * 1e3:.3f} ms]"
            f"{_format_attributes(node.attributes)}"
        )
        children = list(node.children)
        for position, child in enumerate(children):
            last = position == len(children) - 1
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            visit(child, child_prefix + branch, child_prefix + extend)

    visit(span, indent, indent)
    return "\n".join(lines)


#: Process-wide default tracer (honours the global observability switch).
_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return _DEFAULT_TRACER
