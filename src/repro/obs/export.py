"""Exporters for metric registries — JSON, Prometheus text, run reports.

Three consumers, three formats:

* :func:`to_json` — a machine-readable snapshot (dashboards, the
  ``BENCH_*.json`` perf trajectory under ``benchmarks/results/``);
* :func:`to_prometheus` — the Prometheus text exposition format, so a
  scrape endpoint is one ``open().write()`` away;
* :func:`run_report` — a human-readable summary grouped by subsystem, the
  format behind ``qdd-tool stats``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "registry_snapshot",
    "run_report",
    "snapshot_delta",
    "to_json",
    "to_prometheus",
]


def registry_snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """A JSON-able snapshot of every instrument in ``registry``."""
    metrics: List[Dict[str, object]] = []
    for metric in registry.collect():
        entry: Dict[str, object] = {
            "name": metric.name,
            "type": metric.kind,
            "labels": dict(metric.labels),
        }
        if metric.kind == "histogram":
            entry["count"] = metric.count
            entry["sum"] = metric.sum
            entry["buckets"] = [
                {"le": "+Inf" if math.isinf(bound) else bound, "count": count}
                for bound, count in metric.cumulative_buckets()
            ]
        else:
            entry["value"] = metric.value
        metrics.append(entry)
    return {"metrics": metrics}


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    """Serialize a registry snapshot as JSON."""
    return json.dumps(registry_snapshot(registry), indent=indent, sort_keys=True)


def snapshot_value(
    snapshot: Dict[str, object],
    name: str,
    labels: Optional[Dict[str, str]] = None,
) -> Optional[float]:
    """Look one counter/gauge value up in a :func:`registry_snapshot` dict.

    Consumers of persisted snapshots (campaign artifacts, benchmark JSON
    payloads) join on ``(name, labels)`` with this instead of re-implementing
    the label-matching walk.  Returns ``None`` for histograms and misses.
    """
    wanted = labels or {}
    for entry in snapshot.get("metrics", []):
        if entry.get("name") != name or entry.get("type") == "histogram":
            continue
        if dict(entry.get("labels") or {}) == wanted:
            return entry.get("value")
    return None


def _metric_key(entry: Dict[str, object]) -> tuple:
    labels = entry.get("labels") or {}
    return (entry["name"], tuple(sorted(labels.items())))


def snapshot_delta(
    previous: Dict[str, object], current: Dict[str, object]
) -> Dict[str, object]:
    """Diff two :func:`registry_snapshot` dicts down to what changed.

    Streaming ``/metrics`` every couple of seconds must cost O(changes),
    not O(metrics): a delta contains only instruments whose value moved
    since ``previous``, and histogram entries carry only the buckets whose
    cumulative count changed (plus ``count``/``sum``, always).  Instruments
    absent from ``previous`` appear whole.  Applying a delta is a merge by
    ``(name, labels)``; ``le`` keys identify histogram buckets.

    The result has the snapshot shape (``{"metrics": [...]}``) so the same
    consumers can process full snapshots and deltas alike.
    """
    before = {_metric_key(entry): entry for entry in previous.get("metrics", [])}
    changed: List[Dict[str, object]] = []
    for entry in current.get("metrics", []):
        old = before.get(_metric_key(entry))
        if entry.get("type") == "histogram":
            if old is not None and old.get("count") == entry.get("count") \
                    and old.get("sum") == entry.get("sum"):
                continue
            old_buckets = {
                bucket["le"]: bucket["count"]
                for bucket in (old.get("buckets", []) if old else [])
            }
            delta_buckets = [
                bucket
                for bucket in entry.get("buckets", [])
                if old_buckets.get(bucket["le"]) != bucket["count"]
            ]
            changed.append(dict(entry, buckets=delta_buckets))
        elif old is None or old.get("value") != entry.get("value"):
            changed.append(entry)
    return {"metrics": changed}


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_string(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(merged.items())
    )
    return f"{{{body}}}"


def _format_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: set = set()
    for metric in registry.collect():
        if metric.name not in typed:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            typed.add(metric.name)
        if metric.kind == "histogram":
            for bound, count in metric.cumulative_buckets():
                le = "+Inf" if math.isinf(bound) else _format_number(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_string(metric.labels, {'le': le})} {count}"
                )
            lines.append(
                f"{metric.name}_sum{_label_string(metric.labels)} "
                f"{_format_number(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_label_string(metric.labels)} {metric.count}"
            )
        else:
            lines.append(
                f"{metric.name}{_label_string(metric.labels)} "
                f"{_format_number(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _derived_hit_ratios(metrics) -> List[str]:
    """hit-ratio lines derived from ``*_hits_total`` / ``*_misses_total``."""
    hits: Dict[tuple, float] = {}
    misses: Dict[tuple, float] = {}
    for metric in metrics:
        if metric.kind != "counter":
            continue
        if metric.name.endswith("_hits_total"):
            key = (metric.name[: -len("_hits_total")], tuple(sorted(metric.labels.items())))
            hits[key] = metric.value
        elif metric.name.endswith("_misses_total"):
            key = (metric.name[: -len("_misses_total")], tuple(sorted(metric.labels.items())))
            misses[key] = metric.value
    lines = []
    for key in sorted(set(hits) | set(misses)):
        hit = hits.get(key, 0.0)
        miss = misses.get(key, 0.0)
        total = hit + miss
        ratio = hit / total if total else 0.0
        stem, labels = key
        label_text = _label_string(dict(labels))
        lines.append(f"  {stem}{label_text}: {ratio:.3f} ({hit:.0f}/{total:.0f})")
    return lines


def run_report(registry: MetricsRegistry, title: Optional[str] = None) -> str:
    """A human-readable report of everything the registry has seen.

    Metrics are grouped by their name prefix (``dd``, ``sim``, ``verify``,
    ...), histograms summarized as count/mean/max-bucket, and hit ratios
    derived from paired ``*_hits_total``/``*_misses_total`` counters.
    """
    metrics = registry.collect()
    groups: Dict[str, List] = {}
    for metric in metrics:
        prefix = metric.name.split("_", 1)[0] if metric.name else "misc"
        groups.setdefault(prefix, []).append(metric)
    lines: List[str] = []
    if title:
        lines.append(f"==== run report: {title} ====")
    if not metrics:
        lines.append("(observability disabled or no metrics recorded)")
        return "\n".join(lines)
    for prefix in sorted(groups):
        lines.append(f"[{prefix}]")
        for metric in groups[prefix]:
            label_text = _label_string(metric.labels)
            if metric.kind == "histogram":
                quantiles = metric.percentiles()
                lines.append(
                    f"  {metric.name}{label_text}: count={metric.count} "
                    f"mean={metric.mean:.6g} sum={metric.sum:.6g} "
                    f"p50={quantiles['p50']:.6g} p95={quantiles['p95']:.6g} "
                    f"p99={quantiles['p99']:.6g}"
                )
            else:
                lines.append(
                    f"  {metric.name}{label_text}: "
                    f"{_format_number(metric.value)}"
                )
    ratios = _derived_hit_ratios(metrics)
    if ratios:
        lines.append("[hit ratios]")
        lines.extend(ratios)
    return "\n".join(lines)
