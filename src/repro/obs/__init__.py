"""repro.obs — the observability subsystem.

Metrics (counters, gauges, fixed-bucket histograms in a
:class:`MetricsRegistry`), span tracing (:class:`Tracer`, :func:`traced`),
exporters (JSON snapshot + delta, Prometheus text exposition,
human-readable run report) and the push-based :class:`EventBus` feeding
the service's SSE streams.  See ``docs/observability.md`` for the full
guide.

The package-level switch :func:`set_enabled` turns all instrumentation
created afterwards into no-ops, so the hot paths cost ~nothing when
observability is off.
"""

from repro.obs.events import Event, EventBus, Subscription
from repro.obs.export import (
    registry_snapshot,
    run_report,
    snapshot_delta,
    snapshot_value,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    is_enabled,
    set_enabled,
)
from repro.obs.tracing import Span, Tracer, default_tracer, format_span_tree, traced

__all__ = [
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Subscription",
    "Tracer",
    "default_registry",
    "default_tracer",
    "format_span_tree",
    "is_enabled",
    "registry_snapshot",
    "run_report",
    "set_enabled",
    "snapshot_delta",
    "snapshot_value",
    "to_json",
    "to_prometheus",
    "traced",
]
