"""In-process event bus — the push half of the observability layer.

The metrics registry answers "what is the state *now*"; this module answers
"what just *happened*".  Components publish structured :class:`Event`
values onto an :class:`EventBus` (the resource governor publishes GC runs
and pressure transitions, the package publishes sanitizer verdicts, the
service worker pool publishes watchdog kills and load shedding, the
session store publishes session lifecycle, and the service layer publishes
per-step session frames) and any number of subscribers consume them — most
prominently the SSE streaming endpoints behind the live operator dashboard
(``docs/dashboard.md``).

Design constraints, in order:

* **A slow subscriber must never block a publisher.**  Each subscription
  owns a bounded ring buffer; when it overflows, the *oldest* queued event
  is dropped (the client can re-sync from the replay history) and the drop
  is counted in ``dd_stream_dropped_total``.
* **Reconnects must be able to resume.**  Events carry process-monotonic
  integer ids; the bus keeps a bounded replay history, and
  :meth:`EventBus.subscribe` accepts ``last_event_id`` to replay everything
  newer that is still remembered (SSE ``Last-Event-ID`` semantics).
* **Shutdown must unblock everyone.**  :meth:`EventBus.close` marks the bus
  closed and wakes every blocked :meth:`Subscription.get`, so streaming
  handlers can drain and say goodbye instead of hanging on SIGTERM.

The bus is transport-free; :meth:`Event.to_sse` renders the standard
``text/event-stream`` framing used by the service layer.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["Event", "EventBus", "Subscription"]


class Event:
    """One published occurrence: a monotonic id, a kind, and a data dict."""

    __slots__ = ("id", "kind", "data", "time")

    def __init__(self, event_id: int, kind: str, data: Dict[str, Any], timestamp: float):
        self.id = event_id
        self.kind = kind
        self.data = data
        self.time = timestamp

    def as_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "kind": self.kind, "time": self.time,
                "data": self.data}

    def to_sse(self) -> str:
        """Render the event as one ``text/event-stream`` message.

        The JSON payload is compact and newline-free, so a single ``data:``
        line always suffices (SSE would otherwise require splitting).
        """
        payload = json.dumps(
            {"time": round(self.time, 6), **self.data},
            separators=(",", ":"), sort_keys=True, default=str,
        )
        return f"id: {self.id}\nevent: {self.kind}\ndata: {payload}\n\n"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event #{self.id} {self.kind} {self.data}>"


class Subscription:
    """One subscriber's bounded view of a bus (drop-oldest on overflow)."""

    def __init__(self, bus: "EventBus", max_queue: int):
        self._bus = bus
        self.max_queue = max(1, int(max_queue))
        self._queue: Deque[Event] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False
        #: Events this subscription had to drop because the consumer lagged.
        self.dropped = 0

    @property
    def closed(self) -> bool:
        """Whether the bus (or this subscription) has been closed.

        Queued events remain retrievable after closing; :meth:`get` drains
        them before reporting the end of the stream.
        """
        return self._closed

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def _offer(self, event: Event) -> None:
        """Enqueue ``event``, dropping the oldest entry when full."""
        with self._lock:
            if self._closed:
                return
            if len(self._queue) >= self.max_queue:
                self._queue.popleft()
                self.dropped += 1
                self._bus._count_drop()
            self._queue.append(event)
            self._ready.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """Next event, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the stream has ended (bus
        closed and queue drained) — check :attr:`closed` to tell the two
        apart.
        """
        with self._lock:
            if not self._queue:
                if self._closed:
                    return None
                self._ready.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    def close(self) -> None:
        """Detach from the bus and wake any blocked :meth:`get`."""
        self._bus._detach(self)
        with self._lock:
            self._closed = True
            self._ready.notify_all()


class EventBus:
    """Publish/subscribe hub with replay history and monotonic event ids.

    ``history`` bounds the replay buffer used for ``last_event_id`` resume;
    ``max_queue`` is the default per-subscription ring-buffer size.  The
    optional registry receives ``dd_stream_events_total`` /
    ``dd_stream_dropped_total`` counters and a ``dd_stream_subscribers``
    gauge.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        history: int = 1024,
        max_queue: int = 256,
    ):
        self._lock = threading.Lock()
        self._subscribers: List[Subscription] = []
        self._history: Deque[Event] = deque(maxlen=max(0, int(history)))
        self._next_id = 1
        self._closed = False
        self.default_max_queue = max(1, int(max_queue))
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._m_events = registry.counter("dd_stream_events_total")
        self._m_dropped = registry.counter("dd_stream_dropped_total")
        self._m_subscribers = registry.gauge("dd_stream_subscribers")

    def _count_drop(self) -> None:
        self._m_dropped.inc()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def last_id(self) -> int:
        """Id of the most recently published event (0 before the first)."""
        with self._lock:
            return self._next_id - 1

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, kind: str, data: Optional[Dict[str, Any]] = None) -> Optional[Event]:
        """Publish one event to every subscriber; returns it (None if closed).

        Publishing never blocks on consumers: a full subscription drops its
        oldest queued event instead.
        """
        with self._lock:
            if self._closed:
                return None
            event = Event(self._next_id, kind, dict(data or {}), time.time())
            self._next_id += 1
            self._history.append(event)
            subscribers = list(self._subscribers)
        self._m_events.inc()
        for subscription in subscribers:
            subscription._offer(event)
        return event

    # ------------------------------------------------------------------
    # subscribing
    # ------------------------------------------------------------------
    def subscribe(
        self,
        last_event_id: Optional[int] = None,
        max_queue: Optional[int] = None,
    ) -> Subscription:
        """Attach a subscriber, optionally replaying from the history.

        ``last_event_id`` requests every remembered event with a larger id
        (pass ``0`` for "everything still in history"); ``None`` starts
        from now.  Subscribing to a closed bus returns an already-closed
        subscription (whose replay still works), so late stream requests
        during shutdown fail soft.
        """
        subscription = Subscription(
            self, max_queue if max_queue is not None else self.default_max_queue
        )
        with self._lock:
            replay = (
                [event for event in self._history if event.id > last_event_id]
                if last_event_id is not None
                else []
            )
            if not self._closed:
                self._subscribers.append(subscription)
            self._m_subscribers.set(len(self._subscribers))
        for event in replay:
            subscription._offer(event)
        if self._closed:
            with subscription._lock:
                subscription._closed = True
        return subscription

    def _detach(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass
            self._m_subscribers.set(len(self._subscribers))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """End the stream: wake all subscribers; further publishes are no-ops.

        Idempotent.  Subscribers still drain their queued events before
        :meth:`Subscription.get` starts returning ``None`` with
        :attr:`Subscription.closed` set.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscribers = list(self._subscribers)
            self._subscribers.clear()
            self._m_subscribers.set(0)
        for subscription in subscribers:
            with subscription._lock:
                subscription._closed = True
                subscription._ready.notify_all()
