"""Metrics primitives — counters, gauges, histograms and their registry.

The paper's whole point is making decision-diagram internals *visible*:
compute-table hit ratios, unique-table occupancy and peak node counts are
the quantities that explain DD performance (paper Sec. III; also the JKQ
tool paper).  This module provides the process-wide plumbing for them,
modelled on the Prometheus data model but dependency-free:

* :class:`Counter` — a monotonically increasing count (hits, misses, ops);
* :class:`Gauge` — a value that can go up and down (occupancy, live node
  count) with a ``set_max`` helper for peak tracking;
* :class:`Histogram` — fixed-bucket distribution (step durations);
* :class:`MetricsRegistry` — get-or-create instruments keyed by
  ``(name, labels)``, plus *collector* callbacks for values that are only
  sampled at export time (table occupancy).

Instrumentation must cost ~nothing when switched off: a disabled registry
hands out shared null instruments whose methods are no-ops, so call sites
never need an ``if``.  The global switch (:func:`set_enabled`) is consulted
by registries created with ``enabled=None`` — i.e. disable observability
*before* creating packages/simulators and they stay dark.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DEFAULT_TIME_BUCKETS",
    "default_registry",
    "is_enabled",
    "set_enabled",
]

#: Default histogram buckets for wall-clock durations in seconds.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Default buckets for node-count distributions.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing counter.

    Usable standalone (``Counter()``) or registered through a
    :class:`MetricsRegistry`.  The hot-path operation is :meth:`inc`;
    everything else is bookkeeping.
    """

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def set_value(self, value: float) -> None:
        """Overwrite the count (kept for legacy ``table.hits = 0`` resets)."""
        self._value = value

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{self.labels or ''}: {self._value}>"


class Gauge:
    """A value that can move both ways, with peak tracking support."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it exceeds the current reading."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    set_value = set

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{self.labels or ''}: {self._value}>"


class Histogram:
    """A fixed-bucket histogram (Prometheus semantics).

    ``bounds`` are the inclusive upper bounds of the finite buckets; one
    implicit ``+Inf`` bucket catches the rest.  :meth:`observe` is O(log b).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_bucket_counts", "_sum", "_count")

    def __init__(
        self,
        name: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._bucket_counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._bucket_counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the fixed buckets.

        Prometheus ``histogram_quantile`` semantics: find the bucket the
        target rank falls into and interpolate linearly inside it (the
        lower edge of the first bucket is 0).  Observations beyond the
        largest finite bound are clamped to that bound — the histogram
        cannot know how far into ``+Inf`` they reach.  Returns 0.0 for an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return _bucket_quantile(self.bounds, self._bucket_counts, self._count, q)

    def percentiles(self) -> Dict[str, float]:
        """The dashboard's standard trio: p50/p95/p99 estimates."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram {self.name}{self.labels or ''}: "
            f"{self._count} observations, sum {self._sum:.6g}>"
        )


def _bucket_quantile(
    bounds: Tuple[float, ...],
    bucket_counts: List[int],
    total: int,
    q: float,
) -> float:
    """Shared quantile interpolation over per-bucket (non-cumulative) counts.

    Module-level so delta-based consumers (the metrics stream diffs two
    snapshots and wants quantiles of just the *new* observations) can reuse
    the exact interpolation the :class:`Histogram` uses.
    """
    if total <= 0:
        return 0.0
    rank = q * total
    running = 0
    for index, count in enumerate(bucket_counts[: len(bounds)]):
        previous = running
        running += count
        if running >= rank and count > 0:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - previous) / count
            return lower + (upper - lower) * fraction
    # Rank lies in the +Inf bucket: clamp to the largest finite bound.
    return bounds[-1]


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    kind = "counter"
    name = ""
    labels: Dict[str, str] = {}
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set_value(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass


class _NullGauge:
    kind = "gauge"
    name = ""
    labels: Dict[str, str] = {}
    value = 0.0

    def set(self, value: float) -> None:
        pass

    set_value = set

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass


class _NullHistogram:
    kind = "histogram"
    name = ""
    labels: Dict[str, str] = {}
    bounds: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def reset(self) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

#: Process-wide observability switch, consulted by registries/tracers
#: created with ``enabled=None`` (the default).
_GLOBAL_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Globally switch observability on or off.

    Affects registries and tracers created with ``enabled=None`` — call it
    *before* constructing packages/simulators; instruments already handed
    out by a registry keep their nature.
    """
    global _GLOBAL_ENABLED
    _GLOBAL_ENABLED = bool(flag)


def is_enabled() -> bool:
    """Whether observability is globally enabled."""
    return _GLOBAL_ENABLED


class MetricsRegistry:
    """Get-or-create home for metric instruments.

    Instruments are keyed by ``(name, sorted labels)``: asking twice for the
    same key returns the same object, so independent components can share
    one registry without coordination.  ``enabled=None`` (the default)
    defers to the global :func:`set_enabled` switch at instrument-creation
    time; a disabled registry hands out shared null instruments and exports
    nothing.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self._enabled = enabled
        self._metrics: Dict[Tuple[str, _LabelKey], object] = {}
        self._collectors: List[Callable[[], None]] = []

    @property
    def enabled(self) -> bool:
        if self._enabled is None:
            return _GLOBAL_ENABLED
        return self._enabled

    # ------------------------------------------------------------------
    # instrument creation
    # ------------------------------------------------------------------
    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        return self._instrument(Histogram, name, labels, buckets=buckets)

    _NULLS = {Counter: NULL_COUNTER, Gauge: NULL_GAUGE, Histogram: NULL_HISTOGRAM}

    def _instrument(self, cls, name: str, labels, **kwargs):
        if not self.enabled:
            return self._NULLS[cls]
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    # ------------------------------------------------------------------
    # collection / export
    # ------------------------------------------------------------------
    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run before every :meth:`collect`.

        Collectors sample values that only make sense at export time (e.g.
        table occupancy) into gauges.  Exceptions are swallowed so a dead
        weak reference inside a collector cannot break exporting.
        """
        if self.enabled:
            self._collectors.append(collector)

    def collect(self) -> List[object]:
        """All instruments, sorted by (name, labels), collectors run first."""
        for collector in list(self._collectors):
            try:
                collector()
            except Exception:  # pragma: no cover - defensive
                pass
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, labels: Optional[Dict[str, str]] = None):
        """Look up an existing instrument or return ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def reset(self) -> None:
        """Drop every instrument and collector."""
        self._metrics.clear()
        self._collectors.clear()

    def __len__(self) -> int:
        return len(self._metrics)


#: The process-wide default registry (used by the default tracer and any
#: component not handed an explicit registry).
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY
