"""Noise models and noisy circuit simulation.

A :class:`NoiseModel` maps gates to the channels applied after them: a
default single-qubit channel, a (typically stronger) channel for every
line of a multi-qubit gate, and an optional channel applied to the
measured qubit before each measurement.  :class:`NoisySimulator` runs a
circuit under such a model — an exact density-matrix simulation, so the
reported fidelities and distributions carry no sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dd import density
from repro.dd.package import DDPackage
from repro.noise.channels import KrausChannel, apply_channel
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import GateOp
from repro.simulation.density_simulator import Branch, DensityMatrixSimulator


@dataclass(frozen=True)
class NoiseModel:
    """Which channel follows which operation.

    Attributes
    ----------
    single_qubit:
        Channel applied to the target of every single-qubit gate.
    two_qubit:
        Channel applied to *every* line (targets and controls) of every
        multi-qubit gate.
    measurement:
        Channel applied to the measured qubit right before a measurement
        (models readout error as a pre-measurement flip).
    per_gate:
        Overrides by gate name (e.g. ``{"t": weaker_channel}``).
    """

    single_qubit: Optional[KrausChannel] = None
    two_qubit: Optional[KrausChannel] = None
    measurement: Optional[KrausChannel] = None
    per_gate: Dict[str, KrausChannel] = field(default_factory=dict)

    def channel_for(self, operation: GateOp) -> Optional[KrausChannel]:
        override = self.per_gate.get(operation.gate)
        if override is not None:
            return override
        if len(operation.qubits) > 1:
            return self.two_qubit
        return self.single_qubit


class NoisySimulator(DensityMatrixSimulator):
    """Exact density-matrix simulation under a :class:`NoiseModel`.

    Channels are applied after each gate (to every line the gate touches)
    and before each measurement (to the measured qubit).
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel,
        package: Optional[DDPackage] = None,
        prune_threshold: float = 1e-12,
    ):
        super().__init__(circuit, package=package, prune_threshold=prune_threshold)
        self.noise_model = noise_model

    def _apply_gate(self, operation: GateOp) -> None:
        super()._apply_gate(operation)
        channel = self.noise_model.channel_for(operation)
        if channel is None or channel.is_identity:
            return
        self._apply_channel_to_branches(channel, operation.qubits)

    def _measure(self, qubit: int, clbit: int) -> None:
        if self.noise_model.measurement is not None:
            self._apply_channel_to_branches(self.noise_model.measurement, (qubit,))
        super()._measure(qubit, clbit)

    def _apply_channel_to_branches(
        self, channel: KrausChannel, qubits: Tuple[int, ...]
    ) -> None:
        updated = []
        for branch in self._branches:
            rho = branch.rho
            for qubit in qubits:
                rho = apply_channel(self.package, rho, channel, qubit)
            updated.append(Branch(branch.probability, branch.classical_bits, rho))
        self._branches = updated

    def fidelity_with_ideal(self) -> float:
        """``<psi_ideal| rho |psi_ideal>`` against the noiseless run.

        Only defined for unitary circuits (no measurements/resets).
        """
        from repro.qc.dd_builder import apply_gate as apply_unitary_gate
        from repro.qc.operations import BarrierOp

        ideal = self.package.zero_state(self.circuit.num_qubits)
        for operation in self.circuit:
            if isinstance(operation, BarrierOp):
                continue
            if not isinstance(operation, GateOp) or not operation.is_unitary:
                raise ValueError(
                    "fidelity_with_ideal requires a unitary circuit"
                )
            ideal = apply_unitary_gate(
                self.package, ideal, operation, self.circuit.num_qubits
            )
        return density.fidelity_with_state(self.package, self.state(), ideal)
