"""Single-qubit Kraus channels applied to density-matrix DDs.

A channel is a set of Kraus operators ``{K_i}`` with
``sum_i K_i^t K_i = I``; its action is ``rho -> sum_i K_i rho K_i^t``.
Each operator is embedded into the full system as a (generally
non-unitary) matrix DD, so one channel application costs ``2 |K|``
DD multiplications and ``|K| - 1`` additions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dd.edge import Edge, ZERO_EDGE
from repro.dd.package import DDPackage
from repro.errors import DDError


@dataclass(frozen=True)
class KrausChannel:
    """A single-qubit channel given by its Kraus operators."""

    name: str
    operators: Tuple[np.ndarray, ...]

    def __post_init__(self):
        total = np.zeros((2, 2), dtype=complex)
        kept = []
        for operator in self.operators:
            matrix = np.asarray(operator, dtype=complex)
            if matrix.shape != (2, 2):
                raise DDError(
                    f"channel {self.name!r}: Kraus operators must be 2x2"
                )
            total += matrix.conj().T @ matrix
            if not np.allclose(matrix, 0.0, atol=1e-15):
                kept.append(matrix)
        if not np.allclose(total, np.eye(2), atol=1e-9):
            raise DDError(
                f"channel {self.name!r} is not trace preserving: "
                f"sum K^t K = {total.round(6)}"
            )
        # Drop all-zero operators (they contribute nothing), e.g. the
        # p = 0 limit of the standard channels.
        object.__setattr__(self, "operators", tuple(kept))

    @property
    def is_identity(self) -> bool:
        return len(self.operators) == 1 and np.allclose(
            self.operators[0], np.eye(2)
        )


def _probability(name: str, p: float, upper: float = 1.0) -> float:
    if not 0.0 <= p <= upper:
        raise DDError(f"{name} probability {p} outside [0, {upper}]")
    return float(p)


def bit_flip(p: float) -> KrausChannel:
    """Apply X with probability ``p``."""
    p = _probability("bit-flip", p)
    return KrausChannel(
        f"bit-flip({p})",
        (
            math.sqrt(1.0 - p) * np.eye(2, dtype=complex),
            math.sqrt(p) * np.array([[0, 1], [1, 0]], dtype=complex),
        ),
    )


def phase_flip(p: float) -> KrausChannel:
    """Apply Z with probability ``p``."""
    p = _probability("phase-flip", p)
    return KrausChannel(
        f"phase-flip({p})",
        (
            math.sqrt(1.0 - p) * np.eye(2, dtype=complex),
            math.sqrt(p) * np.diag([1.0, -1.0]).astype(complex),
        ),
    )


def depolarizing(p: float) -> KrausChannel:
    """Replace the qubit by the maximally mixed state with probability
    ``p`` (Pauli twirl form: X/Y/Z each with probability p/4... precisely,
    ``rho -> (1 - p) rho + p/2 I`` via the four-operator Kraus form)."""
    p = _probability("depolarizing", p)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    z = np.diag([1.0, -1.0]).astype(complex)
    return KrausChannel(
        f"depolarizing({p})",
        (
            math.sqrt(1.0 - 3.0 * p / 4.0) * np.eye(2, dtype=complex),
            math.sqrt(p / 4.0) * x,
            math.sqrt(p / 4.0) * y,
            math.sqrt(p / 4.0) * z,
        ),
    )


def amplitude_damping(gamma: float) -> KrausChannel:
    """Energy relaxation towards |0> with decay probability ``gamma``."""
    gamma = _probability("amplitude-damping", gamma)
    return KrausChannel(
        f"amplitude-damping({gamma})",
        (
            np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex),
            np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex),
        ),
    )


def phase_damping(lam: float) -> KrausChannel:
    """Pure dephasing with probability ``lam``."""
    lam = _probability("phase-damping", lam)
    return KrausChannel(
        f"phase-damping({lam})",
        (
            np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex),
            np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex),
        ),
    )


def apply_channel(
    package: DDPackage,
    rho: Edge,
    channel: KrausChannel,
    qubit: int,
) -> Edge:
    """Apply a single-qubit channel to ``qubit`` of density DD ``rho``."""
    if rho.is_zero:
        return ZERO_EDGE
    if channel.is_identity:
        return rho
    num_qubits = package.num_qubits(rho)
    result = ZERO_EDGE
    for operator in channel.operators:
        kraus_dd = package.single_qubit_gate(num_qubits, operator, qubit)
        term = package.multiply(
            package.multiply(kraus_dd, rho), package.adjoint(kraus_dd)
        )
        result = package.add(result, term)
    return result
