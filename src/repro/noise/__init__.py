"""Noise channels on decision diagrams.

Real devices are noisy; the DD toolchain the paper introduces was later
extended to noise-aware simulation.  This subpackage provides that
capability on top of :mod:`repro.dd.density`: single-qubit Kraus channels
(bit/phase flip, depolarizing, amplitude/phase damping), per-gate noise
models, and a noisy ensemble simulator.
"""

from repro.noise.channels import (
    KrausChannel,
    amplitude_damping,
    apply_channel,
    bit_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)
from repro.noise.model import NoiseModel, NoisySimulator

__all__ = [
    "KrausChannel",
    "NoiseModel",
    "NoisySimulator",
    "amplitude_damping",
    "apply_channel",
    "bit_flip",
    "depolarizing",
    "phase_damping",
    "phase_flip",
]
