"""Structural-invariant checking for decision-diagram packages.

The paper's claims are *structural*: the unique table holds exactly one node
per ``(var, successors, weights)`` signature, edge weights are normalized
representatives from the complex table, and the node counts of the examples
(Ex. 12: peak 9 instead of 21) follow from that canonicity.  Nothing in a
hash-consed package re-checks those invariants after construction, so a
silent break — a mutated edge tuple, an aliased table entry, a swept-away
weight representative — corrupts every downstream figure while the test
suite stays green.

:class:`DDSanitizer` walks one :class:`~repro.dd.package.DDPackage` and
verifies the invariant families below; each check is cheap (one pass over
the live tables) so the sanitizer can run on demand
(:meth:`DDPackage.sanitize`, ``qdd-tool sanitize``), at operation
boundaries (``DDPackage(sanitize_every=N)`` or ``REPRO_SANITIZE_EVERY``)
and after garbage collection in the resource governor.

Invariant families
------------------

``unique-*``
    Hash-consing canonicity: no two live nodes share a structural
    signature, every stored table key matches its node's recomputed
    signature, successor levels strictly decrease, and node arity matches
    its kind (2 successors for vector nodes, 4 for matrix nodes).

``weight-*``
    Edge-weight hygiene on live nodes: weights are finite, zero weights
    use the canonical zero stub (terminal successor), no weight sits
    unclamped in ``(0, tolerance)``, and every weight is an exact
    canonical representative of the complex table.

``norm-*``
    Per-scheme normalization: L2 vector nodes have subtree norm 1 with a
    real non-negative first weight; max-magnitude nodes carry an exact
    ``1`` pivot with no magnitude above 1.

``complex-*``
    Complex-table integrity: representatives are finite, bucketed under
    the right grid key, have no component in ``(0, tolerance)``, and are
    pairwise at least ``tolerance`` apart (one representative per
    tolerance ball).

``root-*``
    Refcount/GC-root consistency with :mod:`repro.dd.governance`: every
    registered root has a positive count, and a live root's weight still
    has its exact representative in the complex table (a sweep that
    purged it would let a later lookup mint a *different* representative).

``order-map``
    Dynamic-reordering integrity: the package's level-to-qubit map is a
    valid permutation of ``0..n-1`` (a corrupted map silently permutes
    every amplitude/sample/serialization query).

``skip-level-*``
    Identity-skipping consistency (both backends): in a dense package no
    matrix edge may skip a level (``skip-level-dense``), and in a
    skipping package no explicit identity node ``(e, 0, 0, e)`` may
    survive construction (``skip-level-unreduced``) — the reduction rule
    must have fired.

``pool-*``
    Pooled-storage index integrity (``storage="pooled"`` only): every live
    node's successor indices point at live pool slots (never into the
    free-list), every weight index points at a live weight-pool entry,
    the free-list holds exactly the freed slots with no duplicates, and
    every live node is reachable through its own unique-table probe chain
    (open addressing never strands a live entry).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Tuple

from repro.dd.complex_table import ComplexTable
from repro.dd.node import Node, VectorNode
from repro.dd.normalization import NormalizationScheme
from repro.dd.unique_table import _signature
from repro.errors import SanitizerError

__all__ = ["DDSanitizer", "SanitizeReport", "Violation", "NORM_SLACK_FACTOR"]

#: Normalization checks allow this many tolerances of slack: canonical
#: representatives are each within one tolerance of the exact value, so a
#: recomputed norm can drift a few tolerances without any invariant being
#: broken.  Planted faults perturb weights by ~1e-3 — orders of magnitude
#: above the slack — so detection is unaffected.
NORM_SLACK_FACTOR = 64.0


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    check: str
    message: str
    location: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {
            "check": self.check,
            "message": self.message,
            "location": self.location,
        }

    def __str__(self) -> str:
        prefix = f"[{self.check}]"
        if self.location:
            prefix += f" {self.location}:"
        return f"{prefix} {self.message}"


@dataclass
class SanitizeReport:
    """Result of one sanitizer run over a package."""

    violations: List[Violation] = field(default_factory=list)
    nodes_checked: int = 0
    complex_entries_checked: int = 0
    roots_checked: int = 0
    duration_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def checks_failed(self) -> Tuple[str, ...]:
        """Distinct check identifiers that fired, in first-seen order."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.check not in seen:
                seen.append(violation.check)
        return tuple(seen)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "nodes_checked": self.nodes_checked,
            "complex_entries_checked": self.complex_entries_checked,
            "roots_checked": self.roots_checked,
            "duration_seconds": self.duration_seconds,
            "violations": [v.as_dict() for v in self.violations],
        }

    def summary(self) -> str:
        if self.ok:
            return (
                f"sanitize: OK ({self.nodes_checked} nodes, "
                f"{self.complex_entries_checked} complex entries, "
                f"{self.roots_checked} roots checked)"
            )
        head = ", ".join(self.checks_failed)
        return (
            f"sanitize: {len(self.violations)} violation(s) [{head}] over "
            f"{self.nodes_checked} nodes / "
            f"{self.complex_entries_checked} complex entries"
        )

    def raise_if_violations(self) -> None:
        if not self.ok:
            raise SanitizerError(self.summary(), report=self)


class DDSanitizer:
    """Walks one package's tables and verifies structural invariants.

    The sanitizer only *reads* the tables; it never mutates package state
    and never allocates nodes or weights, so it is safe to run between any
    two operations (the same contract as garbage collection).
    """

    def __init__(self, package):
        self.package = package

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> SanitizeReport:
        start = perf_counter()
        report = SanitizeReport()
        self._check_unique_table(
            self.package._vector_unique, "vector", report
        )
        self._check_unique_table(
            self.package._matrix_unique, "matrix", report
        )
        self._check_complex_table(report)
        self._check_roots(report)
        self._check_pools(report)
        self._check_order_map(report)
        report.duration_seconds = perf_counter() - start
        return report

    # ------------------------------------------------------------------
    # unique tables: canonicity, weight hygiene, normalization
    # ------------------------------------------------------------------
    def _check_unique_table(self, table, kind: str, report: SanitizeReport) -> None:
        entries = table.audit_entries()
        report.nodes_checked += len(entries)
        by_signature: Dict[tuple, Node] = {}
        expected_arity = 2 if kind == "vector" else 4
        if kind == "vector":
            scheme = self.package.vector_scheme
        else:
            scheme = NormalizationScheme.MAX_MAGNITUDE
        for stored_key, node in entries:
            location = f"{kind} node #{node.uid} (q{node.var})"
            if len(node.edges) != expected_arity:
                report.violations.append(Violation(
                    "unique-arity",
                    f"{len(node.edges)} successors (expected {expected_arity})",
                    location,
                ))
                continue
            signature = _signature(node.var, node.edges)
            if signature != stored_key:
                report.violations.append(Violation(
                    "unique-key",
                    "stored table key does not match the node's recomputed "
                    "signature (node mutated after hash consing)",
                    location,
                ))
            previous = by_signature.get(signature)
            if previous is not None and previous is not node:
                report.violations.append(Violation(
                    "unique-duplicate",
                    f"aliases node #{previous.uid}: two live nodes share "
                    "signature (var, successors, weights)",
                    location,
                ))
            else:
                by_signature[signature] = node
            self._check_node_edges(node, location, report)
            self._check_normalization(node, scheme, location, report)
            if kind == "matrix":
                self._check_level_skips(node, location, report)

    def _check_node_edges(
        self, node: Node, location: str, report: SanitizeReport
    ) -> None:
        tolerance = self.package.complex_table.tolerance
        find = self.package.complex_table._find
        for index, edge in enumerate(node.edges):
            weight = edge.weight
            where = f"{location} edge {index}"
            if not (math.isfinite(weight.real) and math.isfinite(weight.imag)):
                report.violations.append(Violation(
                    "weight-nonfinite", f"weight {weight!r}", where
                ))
                continue
            if not edge.node.is_terminal and edge.node.var >= node.var:
                report.violations.append(Violation(
                    "successor-order",
                    f"successor level q{edge.node.var} not below q{node.var}",
                    where,
                ))
            if weight == ComplexTable.ZERO:
                if not edge.node.is_terminal:
                    report.violations.append(Violation(
                        "zero-edge-form",
                        "zero-weight edge keeps a live successor instead of "
                        "the canonical zero stub",
                        where,
                    ))
                continue
            if abs(weight) < tolerance:
                report.violations.append(Violation(
                    "weight-near-zero",
                    f"unclamped near-zero weight {weight!r} "
                    f"(|w| < tolerance {tolerance:g})",
                    where,
                ))
                continue
            if find(weight) != weight:
                report.violations.append(Violation(
                    "weight-noncanonical",
                    f"weight {weight!r} is not an exact canonical "
                    "representative of the complex table",
                    where,
                ))

    def _check_normalization(
        self,
        node: Node,
        scheme: NormalizationScheme,
        location: str,
        report: SanitizeReport,
    ) -> None:
        weights = [edge.weight for edge in node.edges]
        if any(
            not (math.isfinite(w.real) and math.isfinite(w.imag))
            for w in weights
        ):
            return  # already reported as weight-nonfinite
        slack = NORM_SLACK_FACTOR * self.package.complex_table.tolerance
        nonzero = [w for w in weights if w != ComplexTable.ZERO]
        if not nonzero:
            report.violations.append(Violation(
                "norm-all-zero",
                "all successors are zero (the node itself should have "
                "collapsed to the zero stub)",
                location,
            ))
            return
        if scheme is NormalizationScheme.L2 and isinstance(node, VectorNode):
            norm_sq = sum(abs(w) ** 2 for w in weights)
            if abs(norm_sq - 1.0) > slack:
                report.violations.append(Violation(
                    "norm-l2",
                    f"successor weights have squared norm {norm_sq!r} "
                    "(expected 1)",
                    location,
                ))
            first = nonzero[0]
            if abs(first.imag) > slack or first.real < -slack:
                report.violations.append(Violation(
                    "norm-l2-phase",
                    f"first non-zero weight {first!r} is not real "
                    "non-negative",
                    location,
                ))
        else:
            # MAX_MAGNITUDE (all matrix nodes; vector nodes under the
            # ablation scheme): the pivot carries an exact canonical 1 and
            # nothing exceeds magnitude 1.
            if not any(w == ComplexTable.ONE for w in nonzero):
                report.violations.append(Violation(
                    "norm-max-pivot",
                    "no successor carries the exact canonical weight 1",
                    location,
                ))
            peak = max(abs(w) for w in nonzero)
            if peak > 1.0 + slack:
                report.violations.append(Violation(
                    "norm-max-magnitude",
                    f"successor magnitude {peak!r} exceeds 1",
                    location,
                ))

    def _check_level_skips(
        self, node: Node, location: str, report: SanitizeReport
    ) -> None:
        """Matrix-DD level-skip consistency (dense vs identity skipping)."""
        if not getattr(self.package, "identity_skipping", False):
            for index, edge in enumerate(node.edges):
                if edge.weight == ComplexTable.ZERO:
                    continue
                child_var = -1 if edge.node.is_terminal else edge.node.var
                if child_var != node.var - 1:
                    report.violations.append(Violation(
                        "skip-level-dense",
                        f"successor at level q{child_var} skips level "
                        f"q{node.var - 1} in a dense (non-skipping) package",
                        f"{location} edge {index}",
                    ))
            return
        e0, e1, e2, e3 = node.edges
        if (
            e1.weight == ComplexTable.ZERO
            and e2.weight == ComplexTable.ZERO
            and e0.weight != ComplexTable.ZERO
            and e0 == e3
        ):
            report.violations.append(Violation(
                "skip-level-unreduced",
                "matrix node is an identity over its level (e1=e2=0, "
                "e0=e3) and should have been removed by the skipping "
                "reduction rule",
                location,
            ))

    # ------------------------------------------------------------------
    # dynamic variable order
    # ------------------------------------------------------------------
    def _check_order_map(self, report: SanitizeReport) -> None:
        order = list(getattr(self.package, "_order", ()))
        if sorted(order) != list(range(len(order))):
            report.violations.append(Violation(
                "order-map",
                f"level-to-qubit map {order} is not a permutation of "
                f"0..{len(order) - 1}",
                "package order map",
            ))

    # ------------------------------------------------------------------
    # complex table: representative uniqueness within tolerance
    # ------------------------------------------------------------------
    def _check_complex_table(self, report: SanitizeReport) -> None:
        table = self.package.complex_table
        tolerance = table.tolerance
        entries = table.entries()
        report.complex_entries_checked += len(entries)
        buckets = table._buckets
        reported_pairs = set()
        for stored_key, value in entries:
            where = f"complex entry {value!r}"
            if not (math.isfinite(value.real) and math.isfinite(value.imag)):
                report.violations.append(Violation(
                    "complex-nonfinite", f"stored value {value!r}", where
                ))
                continue
            expected_key = table._key(value)
            if expected_key != stored_key:
                report.violations.append(Violation(
                    "complex-bucket-key",
                    f"stored under bucket {stored_key} but belongs in "
                    f"{expected_key}",
                    where,
                ))
            for component, name in ((value.real, "real"), (value.imag, "imag")):
                if component != 0.0 and abs(component) < tolerance:
                    report.violations.append(Violation(
                        "complex-near-zero",
                        f"{name} component {component!r} sits unclamped in "
                        f"(0, tolerance)",
                        where,
                    ))
            # Representative uniqueness: no *other* stored value within the
            # tolerance ball.  The 3x3 bucket neighbourhood is exhaustive
            # for Chebyshev distance < tolerance (the lookup guarantee).
            key_r, key_i = expected_key
            for off_r in (-1, 0, 1):
                for off_i in (-1, 0, 1):
                    bucket = buckets.get((key_r + off_r, key_i + off_i))
                    if not bucket:
                        continue
                    for other in bucket:
                        if other is value:
                            continue
                        dist = max(
                            abs(other.real - value.real),
                            abs(other.imag - value.imag),
                        )
                        if dist < tolerance:
                            pair = frozenset((id(value), id(other)))
                            if pair in reported_pairs:
                                continue
                            reported_pairs.add(pair)
                            report.violations.append(Violation(
                                "complex-duplicate",
                                f"representatives {value!r} and {other!r} "
                                f"are within tolerance {tolerance:g} of "
                                "each other",
                                where,
                            ))

    # ------------------------------------------------------------------
    # governance roots
    # ------------------------------------------------------------------
    def _check_roots(self, report: SanitizeReport) -> None:
        governor = self.package.governor
        find = self.package.complex_table._find
        for (uid, weight), entry in list(governor._roots.items()):
            ref, count = entry[0], entry[1]
            report.roots_checked += 1
            where = f"root (node #{uid}, weight {weight!r})"
            if count <= 0:
                report.violations.append(Violation(
                    "root-count",
                    f"registered root has non-positive refcount {count} "
                    "(decref should have removed the entry)",
                    where,
                ))
            if ref() is None:
                continue  # dead root: purged lazily by the next GC mark
            if not (math.isfinite(weight.real) and math.isfinite(weight.imag)):
                report.violations.append(Violation(
                    "root-weight-nonfinite", f"weight {weight!r}", where
                ))
                continue
            if weight != ComplexTable.ZERO and find(weight) != weight:
                report.violations.append(Violation(
                    "root-weight-missing",
                    "live root's weight has no exact representative in the "
                    "complex table (swept while still referenced)",
                    where,
                ))


    # ------------------------------------------------------------------
    # pooled storage: index integrity
    # ------------------------------------------------------------------
    def _check_pools(self, report: SanitizeReport) -> None:
        engine = getattr(self.package, "_pooled", None)
        if engine is None:
            return
        from repro.dd.pool import FREED_VAR, TERMINAL_INDEX

        weights = engine.weights
        for kind, pool, unique in (
            ("vector", engine.vpool, engine._vunique),
            ("matrix", engine.mpool, engine._munique),
        ):
            free = set(pool.free_list)
            if len(free) != len(pool.free_list):
                report.violations.append(Violation(
                    "pool-free-list",
                    "free-list contains duplicate slot indices",
                    f"{kind} pool",
                ))
            for index in pool.free_list:
                if not 0 <= index < pool.slot_count:
                    report.violations.append(Violation(
                        "pool-free-list",
                        f"free-list index {index} out of range "
                        f"(0..{pool.slot_count - 1})",
                        f"{kind} pool",
                    ))
                elif pool.var[index] != FREED_VAR:
                    report.violations.append(Violation(
                        "pool-free-list",
                        f"free-list slot @{index} aliases a live node "
                        f"(q{pool.var[index]})",
                        f"{kind} pool",
                    ))
            for index in range(pool.slot_count):
                freed_mark = pool.var[index] == FREED_VAR
                if freed_mark or index in free:
                    if freed_mark != (index in free):
                        report.violations.append(Violation(
                            "pool-free-list",
                            f"slot @{index} freed-marker/free-list mismatch",
                            f"{kind} pool",
                        ))
                    continue
                location = f"{kind} pool node @{index} (q{pool.var[index]})"
                pool_edges = list(pool.edges_of(index))
                if kind == "matrix":
                    self._check_pool_level_skips(
                        pool, index, pool_edges, TERMINAL_INDEX,
                        location, report,
                    )
                for offset, (succ, wsucc) in enumerate(pool_edges):
                    where = f"{location} edge {offset}"
                    if succ != TERMINAL_INDEX and not pool.is_live(succ):
                        report.violations.append(Violation(
                            "pool-dangling-successor",
                            f"successor index {succ} points at a freed or "
                            "out-of-range pool slot",
                            where,
                        ))
                    if not weights.index_is_live(wsucc):
                        report.violations.append(Violation(
                            "pool-stale-weight",
                            f"weight index {wsucc} points at a freed or "
                            "out-of-range weight-pool entry",
                            where,
                        ))
                kind_bit = 0 if kind == "vector" else 1
                if engine.is_retired(kind_bit, index):
                    # Retired by a reorder: intentionally withdrawn from
                    # the consing table while stale edges keep it alive.
                    continue
                if not unique.contains_index(index):
                    report.violations.append(Violation(
                        "pool-probe-chain",
                        "live node is not reachable through its own "
                        "unique-table probe chain",
                        location,
                    ))

    def _check_pool_level_skips(
        self, pool, index, edges, terminal_index, location, report
    ) -> None:
        """Pooled mirror of :meth:`_check_level_skips` (weight index 0 is
        the canonical zero)."""
        var = pool.var[index]
        if not getattr(self.package, "identity_skipping", False):
            for offset, (succ, wsucc) in enumerate(edges):
                if wsucc == 0:
                    continue
                if succ != terminal_index and not pool.is_live(succ):
                    continue  # already reported as pool-dangling-successor
                child_var = -1 if succ == terminal_index else pool.var[succ]
                if child_var != var - 1:
                    report.violations.append(Violation(
                        "skip-level-dense",
                        f"successor at level q{child_var} skips level "
                        f"q{var - 1} in a dense (non-skipping) package",
                        f"{location} edge {offset}",
                    ))
            return
        (n0, w0), (n1, w1), (n2, w2), (n3, w3) = edges
        if w1 == 0 and w2 == 0 and w0 != 0 and (n0, w0) == (n3, w3):
            report.violations.append(Violation(
                "skip-level-unreduced",
                "matrix node is an identity over its level (e1=e2=0, "
                "e0=e3) and should have been removed by the skipping "
                "reduction rule",
                location,
            ))


def sanitize_package(
    package, raise_on_violation: bool = False
) -> SanitizeReport:
    """Run one sanitizer pass over ``package`` (functional convenience)."""
    report = DDSanitizer(package).run()
    if raise_on_violation:
        report.raise_if_violations()
    return report
