"""Runtime verification for the DD engine: sanitizer, faults, fuzzing.

- :mod:`repro.sanitizer.core` — :class:`DDSanitizer` walks a package and
  verifies structural invariants (unique-table canonicity, normalization,
  complex-table representative uniqueness, refcount/GC-root consistency).
- :mod:`repro.sanitizer.faults` — seeded fault injection that plants
  corruptions the sanitizer must detect (and the service must survive).
- :mod:`repro.sanitizer.metamorphic` — metamorphic fuzzer applying
  equivalence-preserving circuit rewrites with shrinking counterexamples.
"""

from repro.sanitizer.core import (
    DDSanitizer,
    SanitizeReport,
    Violation,
    sanitize_package,
)

__all__ = [
    "DDSanitizer",
    "SanitizeReport",
    "Violation",
    "sanitize_package",
]
