"""Metamorphic fuzzing of the DD engine via equivalence-preserving rewrites.

Differential testing needs an oracle; metamorphic testing manufactures one
from an invariant instead: a seeded random circuit ``G`` and a rewrite
``R`` that provably preserves its unitary must satisfy ``G == R(G)`` under
the package's own alternating equivalence checker (paper Sec. III-C) *and*
produce identical sampling distributions.  Any disagreement is a bug in
the engine (or in the rewrite — which is exactly what the deliberately
broken ``broken-sign-flip`` rewrite demonstrates end to end).

Rewrites
--------

``insert-inverse-pair``
    Insert ``g . g^-1`` at a random position (identity insertion).
``commute-disjoint``
    Swap one adjacent pair of gates acting on disjoint qubit sets.
``decompose-multicontrol``
    Replace one multi-controlled / non-primitive gate with its exact
    ancilla-free decomposition (:mod:`repro.qc.transforms`).
``reorder-under-pressure``
    Identity on the gate list; instead the *transformed* leg executes
    under a package with ``reorder="pressure"`` and a deliberately tiny
    node budget, so the governor sifts the variable order mid-circuit.
    The oracle is trivial (``G == G``) — any disagreement isolates the
    dynamic-reordering machinery (swap rebuild, root remap, order-aware
    readout) rather than a circuit transformation.
``broken-sign-flip`` (intentionally wrong)
    Inserts ``g(theta) . g(theta)`` where the inverse required
    ``g(-theta)`` — the classic forgotten sign flip.  Exists to prove the
    harness catches a real bug and shrinks it to a minimal counterexample.

Failing cases are shrunk with a greedy delta-debugging loop over the
original circuit's operations (the rewrite is re-applied deterministically
to every candidate) and written to ``tests/data/metamorphic_corpus/`` in
the ``qdd-metamorphic-v1`` JSON format, so every historical counterexample
is replayed by the test suite forever after.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import GateOp

__all__ = [
    "CORPUS_FORMAT",
    "REWRITES",
    "BROKEN_REWRITES",
    "ENVIRONMENT_OPTIONS",
    "CaseResult",
    "random_program",
    "apply_rewrite",
    "check_pair",
    "run_case",
    "fuzz",
    "shrink_case",
    "counterexample_record",
    "save_counterexample",
    "load_corpus",
]

CORPUS_FORMAT = "qdd-metamorphic-v1"

_PLAIN_SINGLES = ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
_PARAM_SINGLES = ("rx", "ry", "rz", "p")


# ----------------------------------------------------------------------
# seeded circuit generation
# ----------------------------------------------------------------------

def random_program(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    """A seeded random unitary circuit exercising the whole rewrite surface.

    Unlike :func:`repro.qc.library.random_circuit` this mixes in Toffoli
    gates (so the multi-control decomposition rewrite has work to do) and
    keeps every emitted gate QASM-exportable (corpus entries store QASM).
    """
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"metamorphic-{seed}")
    for _ in range(depth):
        roll = rng.random()
        if roll < 0.15 and num_qubits >= 3:
            lines = rng.sample(range(num_qubits), 3)
            circuit.gate("x", (lines[0],), controls=tuple(lines[1:]))
        elif roll < 0.40 and num_qubits >= 2:
            a, b = rng.sample(range(num_qubits), 2)
            kind = rng.choice(("cx", "cz", "cp", "swap"))
            if kind == "cx":
                circuit.gate("x", (b,), controls=(a,))
            elif kind == "cz":
                circuit.gate("z", (b,), controls=(a,))
            elif kind == "cp":
                circuit.gate(
                    "p", (b,), params=(rng.uniform(0.3, 2.8),), controls=(a,)
                )
            else:
                circuit.gate("swap", (max(a, b), min(a, b)))
        elif roll < 0.70:
            gate = rng.choice(_PARAM_SINGLES)
            circuit.gate(
                gate,
                (rng.randrange(num_qubits),),
                params=(rng.uniform(0.3, 2.8),),
            )
        else:
            circuit.gate(rng.choice(_PLAIN_SINGLES), (rng.randrange(num_qubits),))
    return circuit


# ----------------------------------------------------------------------
# rewrites
# ----------------------------------------------------------------------

def _rebuild(circuit: QuantumCircuit, operations: Sequence, name: str) -> QuantumCircuit:
    result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, name)
    for operation in operations:
        result.append(operation)
    return result


def _random_gate_and_inverse(rng: random.Random, num_qubits: int) -> Tuple[GateOp, GateOp]:
    roll = rng.random()
    if roll < 0.4:
        gate = GateOp(gate=rng.choice(_PLAIN_SINGLES), targets=(rng.randrange(num_qubits),))
    elif roll < 0.8:
        gate = GateOp(
            gate=rng.choice(_PARAM_SINGLES),
            params=(rng.uniform(0.3, 2.8),),
            targets=(rng.randrange(num_qubits),),
        )
    elif num_qubits >= 2:
        a, b = rng.sample(range(num_qubits), 2)
        gate = GateOp(gate="x", targets=(b,), controls=(a,))
    else:
        gate = GateOp(gate="h", targets=(0,))
    return gate, gate.inverse()


def _rw_insert_inverse_pair(circuit: QuantumCircuit, rng: random.Random) -> QuantumCircuit:
    operations = list(circuit)
    position = rng.randrange(len(operations) + 1)
    gate, inverse = _random_gate_and_inverse(rng, circuit.num_qubits)
    operations[position:position] = [gate, inverse]
    return _rebuild(circuit, operations, f"{circuit.name}+gginv")


def _rw_commute_disjoint(circuit: QuantumCircuit, rng: random.Random) -> QuantumCircuit:
    operations = list(circuit)
    candidates = [
        index
        for index in range(len(operations) - 1)
        if isinstance(operations[index], GateOp)
        and isinstance(operations[index + 1], GateOp)
        and not (set(operations[index].qubits) & set(operations[index + 1].qubits))
    ]
    if candidates:
        index = rng.choice(candidates)
        operations[index], operations[index + 1] = (
            operations[index + 1],
            operations[index],
        )
    return _rebuild(circuit, operations, f"{circuit.name}+commute")


def _rw_decompose_multicontrol(circuit: QuantumCircuit, rng: random.Random) -> QuantumCircuit:
    from repro.qc import transforms

    operations = list(circuit)
    candidates = [
        index
        for index, operation in enumerate(operations)
        if isinstance(operation, GateOp)
        and not operation.negative_controls
        and (
            (operation.gate == "x" and len(operation.controls) >= 2)
            or (operation.gate == "p" and len(operation.controls) >= 1)
        )
    ]
    if not candidates:
        return _rebuild(circuit, operations, f"{circuit.name}+decompose")
    index = rng.choice(candidates)
    operation = operations[index]
    expansion = QuantumCircuit(circuit.num_qubits, name="expansion")
    if operation.gate == "x":
        transforms.emit_mcx(expansion, operation.controls, operation.targets[0])
    else:
        transforms.emit_mcp(
            expansion, operation.params[0], operation.controls, operation.targets[0]
        )
    operations[index : index + 1] = list(expansion)
    return _rebuild(circuit, operations, f"{circuit.name}+decompose")


def _rw_broken_sign_flip(circuit: QuantumCircuit, rng: random.Random) -> QuantumCircuit:
    """Intentionally buggy identity insertion: ``g(t) . g(t)``, not ``g(-t)``."""
    operations = list(circuit)
    position = rng.randrange(len(operations) + 1)
    gate = GateOp(
        gate=rng.choice(_PARAM_SINGLES),
        params=(rng.uniform(0.4, 2.5),),
        targets=(rng.randrange(circuit.num_qubits),),
    )
    operations[position:position] = [gate, gate]  # BUG: second should be gate.inverse()
    return _rebuild(circuit, operations, f"{circuit.name}+broken")


def _rw_reorder_under_pressure(
    circuit: QuantumCircuit, rng: random.Random
) -> QuantumCircuit:
    """Identity rewrite: the equivalence perturbation is environmental.

    ``ENVIRONMENT_OPTIONS`` makes :func:`check_pair` run the transformed
    leg under a pressure-reordering package; the gate list itself must
    stay untouched so the oracle is exact.
    """
    return _rebuild(circuit, list(circuit), f"{circuit.name}+reorder")


#: Correct (equivalence-preserving) rewrites.
REWRITES: Dict[str, Callable[[QuantumCircuit, random.Random], QuantumCircuit]] = {
    "insert-inverse-pair": _rw_insert_inverse_pair,
    "commute-disjoint": _rw_commute_disjoint,
    "decompose-multicontrol": _rw_decompose_multicontrol,
    "reorder-under-pressure": _rw_reorder_under_pressure,
}

#: Rewrites whose transformed leg runs under a non-default package.  The
#: options mirror the campaign spec's package block (storage-agnostic).
ENVIRONMENT_OPTIONS: Dict[str, Dict[str, object]] = {
    "reorder-under-pressure": {"reorder": "pressure", "budget_nodes": 24},
}

#: Deliberately wrong rewrites (harness self-tests).
BROKEN_REWRITES: Dict[str, Callable[[QuantumCircuit, random.Random], QuantumCircuit]] = {
    "broken-sign-flip": _rw_broken_sign_flip,
}


def apply_rewrite(circuit: QuantumCircuit, rewrite: str, seed: int) -> QuantumCircuit:
    """Apply ``rewrite`` to ``circuit`` deterministically under ``seed``."""
    table = REWRITES.get(rewrite) or BROKEN_REWRITES.get(rewrite)
    if table is None:
        valid = ", ".join(sorted((*REWRITES, *BROKEN_REWRITES)))
        raise ValueError(f"unknown rewrite {rewrite!r} (expected one of: {valid})")
    return table(circuit, random.Random(f"{rewrite}:{seed}"))


# ----------------------------------------------------------------------
# the metamorphic check
# ----------------------------------------------------------------------

def _leg_package(sanitize_every: int, options: Optional[Dict[str, object]] = None):
    from repro.dd.governance import MemoryBudget
    from repro.dd.package import DDPackage

    kwargs: Dict[str, object] = {"sanitize_every": sanitize_every}
    if options:
        if options.get("reorder"):
            kwargs["reorder"] = options["reorder"]
        if options.get("identity_skipping"):
            kwargs["identity_skipping"] = True
        if options.get("budget_nodes"):
            kwargs["budget"] = MemoryBudget(
                max_nodes=int(options["budget_nodes"]), check_interval=1
            )
    return DDPackage(**kwargs)


def check_pair(
    original: QuantumCircuit,
    transformed: QuantumCircuit,
    shots: int = 128,
    sample_seed: int = 2024,
    sanitize_every: int = 0,
    rewrite: Optional[str] = None,
) -> Tuple[bool, str]:
    """Whether the pair is equivalent by checker *and* by sampling.

    Returns ``(ok, reason)``; ``reason`` names the first disagreement.
    Global phase is accepted (the rewrites may introduce one through
    decompositions), *relative* phase is not.

    ``rewrite`` selects per-rewrite environment options: entries in
    :data:`ENVIRONMENT_OPTIONS` run the transformed leg under a modified
    package.  Such legs are compared amplitude-by-amplitude instead of by
    shared-seed counts — sampling draws bits in *level* order, which a
    reorder permutes, so exact count equality would spuriously fail even
    for a perfect engine (the statevector check is strictly stronger).
    """
    import numpy as np

    from repro.simulation.simulator import DDSimulator
    from repro.verification import check_equivalence_alternating

    environment = ENVIRONMENT_OPTIONS.get(rewrite or "")
    package = _leg_package(sanitize_every, environment)
    result = check_equivalence_alternating(original, transformed, package=package)
    if not (result.equivalent or result.equivalent_up_to_global_phase):
        return False, "alternating checker: circuits are not equivalent"

    counts = []
    vectors = []
    for circuit, options in ((original, None), (transformed, environment)):
        simulator = DDSimulator(
            circuit, package=_leg_package(sanitize_every, options)
        )
        try:
            simulator.run_all()
            counts.append(simulator.sample_counts(shots, seed=sample_seed))
            if environment is not None:
                vectors.append(simulator.statevector())
        finally:
            simulator.close()
    if environment is not None:
        deviation = float(np.abs(vectors[0] - vectors[1]).max())
        if deviation > 1e-10:
            return False, (
                f"environment leg deviates from the reference by {deviation:g}"
            )
        return True, ""
    if counts[0] != counts[1]:
        return False, (
            f"sampling distributions differ under shared seed {sample_seed}: "
            f"{counts[0]} != {counts[1]}"
        )
    return True, ""


@dataclass
class CaseResult:
    """Outcome of one metamorphic case (possibly after shrinking)."""

    seed: int
    rewrite: str
    ok: bool
    reason: str = ""
    original: Optional[QuantumCircuit] = None
    transformed: Optional[QuantumCircuit] = None
    shrunk: Optional[QuantumCircuit] = None

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL ({self.reason})"
        return f"metamorphic case seed={self.seed} rewrite={self.rewrite}: {status}"


def run_case(
    seed: int,
    rewrite: str,
    num_qubits: Optional[int] = None,
    depth: Optional[int] = None,
    shots: int = 128,
    sanitize_every: int = 0,
) -> CaseResult:
    """Generate, rewrite and check one seeded case (no shrinking)."""
    rng = random.Random(seed)
    num_qubits = num_qubits or rng.randint(2, 4)
    depth = depth or rng.randint(4, 14)
    original = random_program(num_qubits, depth, seed)
    transformed = apply_rewrite(original, rewrite, seed)
    ok, reason = check_pair(
        original,
        transformed,
        shots=shots,
        sanitize_every=sanitize_every,
        rewrite=rewrite,
    )
    return CaseResult(
        seed=seed,
        rewrite=rewrite,
        ok=ok,
        reason=reason,
        original=original,
        transformed=transformed,
    )


def fuzz(
    num_cases: int,
    seed: int = 0,
    rewrites: Sequence[str] = tuple(REWRITES),
    shots: int = 128,
    shrink: bool = True,
    sanitize_every: int = 0,
) -> List[CaseResult]:
    """Run ``num_cases`` seeded cases; return the (shrunk) failures.

    Case ``i`` uses seed ``seed + i`` and the rewrite ``rewrites[i % ...]``
    — the failing seed is embedded in every :class:`CaseResult`, so a CI
    failure message pinpoints the exact reproducer.
    """
    failures: List[CaseResult] = []
    for index in range(num_cases):
        case_seed = seed + index
        rewrite = rewrites[index % len(rewrites)]
        result = run_case(
            case_seed, rewrite, shots=shots, sanitize_every=sanitize_every
        )
        if not result.ok:
            if shrink:
                result = shrink_case(result, shots=shots)
            failures.append(result)
    return failures


# ----------------------------------------------------------------------
# shrinking (greedy delta debugging over the original operations)
# ----------------------------------------------------------------------

def shrink_case(result: CaseResult, shots: int = 128) -> CaseResult:
    """Minimize a failing case to the smallest still-failing original.

    Greedy ddmin over the original circuit's operation list: repeatedly try
    dropping chunks (halving the chunk size down to single operations); a
    candidate "fails" when re-applying the *same* rewrite under the *same*
    seed still produces a non-equivalent pair.  The transformed circuit is
    recomputed per candidate, so the minimal counterexample is genuinely
    self-contained: ``(original ops, rewrite, seed)``.
    """
    if result.ok or result.original is None:
        return result

    base = result.original

    def still_fails(operations: Sequence) -> bool:
        candidate = _rebuild(base, operations, f"{base.name}-shrunk")
        try:
            transformed = apply_rewrite(candidate, result.rewrite, result.seed)
            ok, _reason = check_pair(
                candidate, transformed, shots=shots, rewrite=result.rewrite
            )
        except Exception:
            # A candidate that breaks the pipeline outright is not a
            # *smaller* version of this equivalence failure — skip it.
            return False
        return not ok

    operations = list(base)
    chunk = max(1, len(operations) // 2)
    while chunk >= 1:
        index = 0
        shrunk_this_pass = False
        while index < len(operations):
            candidate = operations[:index] + operations[index + chunk :]
            if still_fails(candidate):
                operations = candidate
                shrunk_this_pass = True
            else:
                index += chunk
        if chunk == 1 and not shrunk_this_pass:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if shrunk_this_pass else 0)

    shrunk = _rebuild(base, operations, f"{base.name}-shrunk")
    transformed = apply_rewrite(shrunk, result.rewrite, result.seed)
    ok, reason = check_pair(
        shrunk, transformed, shots=shots, rewrite=result.rewrite
    )
    return CaseResult(
        seed=result.seed,
        rewrite=result.rewrite,
        ok=ok,
        reason=reason or result.reason,
        original=result.original,
        transformed=transformed,
        shrunk=shrunk,
    )


# ----------------------------------------------------------------------
# counterexample corpus
# ----------------------------------------------------------------------

def counterexample_record(result: CaseResult) -> Dict[str, object]:
    """Serializable corpus entry for a (shrunk) failing case."""
    circuit = result.shrunk if result.shrunk is not None else result.original
    if circuit is None:
        raise ValueError("cannot serialize a case without a circuit")
    record = {
        "format": CORPUS_FORMAT,
        "rewrite": result.rewrite,
        "seed": result.seed,
        "num_qubits": circuit.num_qubits,
        "gates": len(circuit),
        "reason": result.reason,
        "qasm": circuit.to_qasm(),
    }
    if result.transformed is not None:
        record["transformed_gates"] = len(result.transformed)
    return record


def save_counterexample(directory, result: CaseResult) -> Path:
    """Write a corpus entry; the filename is stable under re-runs."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = counterexample_record(result)
    path = directory / f"{result.rewrite}-seed{result.seed}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory) -> List[Dict[str, object]]:
    """Load every ``qdd-metamorphic-v1`` entry under ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    records = []
    for path in sorted(directory.glob("*.json")):
        record = json.loads(path.read_text())
        if record.get("format") != CORPUS_FORMAT:
            raise ValueError(
                f"{path}: unknown corpus format {record.get('format')!r}"
            )
        record["path"] = str(path)
        records.append(record)
    return records


def replay_record(record: Dict[str, object], shots: int = 128) -> CaseResult:
    """Re-check one corpus entry (parse its QASM, re-apply its rewrite)."""
    from repro.qc.qasm.parser import parse_qasm

    circuit = parse_qasm(str(record["qasm"]))
    rewrite = str(record["rewrite"])
    seed = int(record["seed"])  # type: ignore[arg-type]
    transformed = apply_rewrite(circuit, rewrite, seed)
    ok, reason = check_pair(circuit, transformed, shots=shots, rewrite=rewrite)
    return CaseResult(
        seed=seed,
        rewrite=rewrite,
        ok=ok,
        reason=reason,
        original=circuit,
        transformed=transformed,
    )
