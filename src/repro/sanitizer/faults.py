"""Seeded fault injection against the DD engine and the service layer.

The sanitizer (:mod:`repro.sanitizer.core`) is only trustworthy if it is
*demonstrated* to catch real corruption.  :class:`FaultInjector` plants
seeded, deterministic faults — each modelled on a realistic failure mode of
a hash-consed DD package — directly into a package's tables;
``tests/test_fault_injection.py`` asserts that every fault class is
detected by its expected check and that a clean package stays clean.

Fault classes and the check expected to fire:

=============================  ===========================================
fault                          detected by
=============================  ===========================================
``perturb-weight``             ``unique-key`` (node mutated after consing)
``alias-unique-entry``         ``unique-duplicate`` (two nodes, one
                               signature)
``skew-refcount``              ``root-count`` (refcount drops to zero
                               early)
``orphan-root-weight``         ``root-weight-missing`` (rep swept while
                               live)
``unclamp-near-zero``          ``weight-near-zero`` (sub-tolerance weight)
``poison-nonfinite``           ``weight-nonfinite`` (NaN amplitude)
``duplicate-complex-rep``      ``complex-duplicate`` (two reps in one
                               ball)
``pooled-dangling-successor``  ``pool-dangling-successor`` (edge index
                               into the free-list; pooled storage only)
``pooled-stale-weight``        ``pool-stale-weight`` (weight slot freed
                               under a live edge; pooled storage only)
``corrupt-order-map``          ``order-map`` (level-to-qubit permutation
                               with a duplicated entry)
``skip-across-level``          ``skip-level-dense`` (identity-skip edge
                               planted across a non-identity level of a
                               dense package)
=============================  ===========================================

The module also provides worker-pool *fault jobs* (crash, hang, corrupt)
used to verify that the service degrades gracefully: crashes surface as
``503`` (worker respawned), hangs as ``504`` (watchdog kill) and detected
corruption as ``503`` plus a degraded ``/healthz``.  The jobs are only
installed into the worker dispatch table when the
``REPRO_ENABLE_FAULT_JOBS`` environment variable is set — a production
deployment cannot be asked to crash itself.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge
from repro.dd.node import Node
from repro.dd.unique_table import _signature
from repro.errors import DDError

__all__ = [
    "FAULT_CLASSES",
    "EXPECTED_CHECKS",
    "FaultInjector",
    "inject_fault",
    "install_service_faults",
]

#: Fault-class name -> :class:`FaultInjector` method name.
FAULT_CLASSES: Dict[str, str] = {
    "perturb-weight": "perturb_weight",
    "alias-unique-entry": "alias_unique_entry",
    "skew-refcount": "skew_refcount",
    "orphan-root-weight": "orphan_root_weight",
    "unclamp-near-zero": "unclamp_near_zero",
    "poison-nonfinite": "poison_nonfinite",
    "duplicate-complex-rep": "duplicate_complex_rep",
    "pooled-dangling-successor": "pooled_dangling_successor",
    "pooled-stale-weight": "pooled_stale_weight",
    "corrupt-order-map": "corrupt_order_map",
    "skip-across-level": "skip_across_level",
}

#: Fault-class name -> sanitizer check id that must fire.
EXPECTED_CHECKS: Dict[str, str] = {
    "perturb-weight": "unique-key",
    "alias-unique-entry": "unique-duplicate",
    "skew-refcount": "root-count",
    "orphan-root-weight": "root-weight-missing",
    "unclamp-near-zero": "weight-near-zero",
    "poison-nonfinite": "weight-nonfinite",
    "duplicate-complex-rep": "complex-duplicate",
    "pooled-dangling-successor": "pool-dangling-successor",
    "pooled-stale-weight": "pool-stale-weight",
    "corrupt-order-map": "order-map",
    "skip-across-level": "skip-level-dense",
}


class FaultInjector:
    """Plants deterministic corruptions into one package's tables.

    All randomness flows through one :class:`random.Random` seeded at
    construction, and candidate nodes/roots/representatives are sorted
    before sampling, so a given ``(package history, seed)`` always plants
    the same fault — failures reproduce exactly from the reported seed.

    The injector keeps strong references to any objects it plants
    (``_pinned``), so a planted alias cannot be silently garbage-collected
    before the sanitizer gets to see it.
    """

    def __init__(self, package, seed: int = 0):
        self.package = package
        self.seed = seed
        self.rng = random.Random(seed)
        # Pins live on the *package* (not the injector): planted objects
        # must survive the injector going out of scope, or the weak unique
        # table silently drops the corruption before the sanitizer runs.
        if not hasattr(package, "_fault_pins"):
            package._fault_pins = []
        self._pinned: List[Any] = package._fault_pins

    # ------------------------------------------------------------------
    # candidate selection (deterministic under the seed)
    # ------------------------------------------------------------------
    def _live_entries(self) -> List[Tuple[Any, tuple, Node]]:
        """All live ``(unique table, stored key, node)`` entries, by uid."""
        entries = []
        for table in (self.package._vector_unique, self.package._matrix_unique):
            for key, node in table.audit_entries():
                entries.append((table, key, node))
        entries.sort(key=lambda item: item[2].uid)
        return entries

    def _pick_entry(self) -> Tuple[Any, tuple, Node]:
        entries = self._live_entries()
        if not entries:
            raise DDError("fault injection needs at least one live node")
        return self.rng.choice(entries)

    def _pick_nonzero_edge(self, node: Node) -> int:
        candidates = [
            index
            for index, edge in enumerate(node.edges)
            if edge.weight != ComplexTable.ZERO
        ]
        if not candidates:
            raise DDError("node has no non-zero edge to corrupt")
        return self.rng.choice(candidates)

    def _replace_edge_weight(self, node: Node, index: int, weight: complex) -> None:
        edges = list(node.edges)
        edges[index] = Edge(edges[index].node, weight)
        node.edges = tuple(edges)
        # Pooled views are weakly cached per index: pin the mutated view so
        # the sanitizer sees *this* object (with its edge override) rather
        # than a freshly minted, uncorrupted view of the same pool slot.
        self._pinned.append(node)

    def _live_roots(self) -> List[Tuple[Tuple[int, complex], list]]:
        roots = [
            (key, entry)
            for key, entry in self.package.governor._roots.items()
            if entry[0]() is not None
        ]
        roots.sort(key=lambda item: item[0][0])
        return roots

    # ------------------------------------------------------------------
    # fault classes
    # ------------------------------------------------------------------
    def perturb_weight(self, delta: float = 1e-3) -> Dict[str, Any]:
        """Silently nudge one live edge weight (bit-rot / race corruption)."""
        _table, _key, node = self._pick_entry()
        index = self._pick_nonzero_edge(node)
        old = node.edges[index].weight
        self._replace_edge_weight(node, index, old + complex(delta, 0.0))
        return {
            "fault": "perturb-weight",
            "node": node.uid,
            "edge": index,
            "delta": delta,
        }

    def alias_unique_entry(self) -> Dict[str, Any]:
        """Insert a structural clone of a live node under a second key.

        Hash consing now answers queries with *either* node depending on
        the key used — exactly the aliasing a buggy table resize or rehash
        would produce.  The clone is pinned so the weak table keeps it.
        """
        table, _key, node = self._pick_entry()
        engine = getattr(self.package, "_pooled", None)
        if engine is not None:
            clone_index = engine.clone_node_for_fault(node)
            return {
                "fault": "alias-unique-entry",
                "node": node.uid,
                "clone": clone_index,
            }
        clone = type(node)(node.var, node.edges)
        self._pinned.append(clone)
        alias_key = _signature(node.var, node.edges) + ("alias",)
        table._table[alias_key] = clone
        return {"fault": "alias-unique-entry", "node": node.uid, "clone": clone.uid}

    def skew_refcount(self) -> Dict[str, Any]:
        """Zero a live root's refcount without removing the registration."""
        roots = self._live_roots()
        if not roots:
            raise DDError("fault injection needs at least one registered root")
        key, entry = self.rng.choice(roots)
        entry[1] = 0
        return {"fault": "skew-refcount", "root": key[0]}

    def orphan_root_weight(self) -> Dict[str, Any]:
        """Drop a live root weight's representative from the complex table.

        Models an over-eager sweep: the root edge still carries the weight,
        but the table no longer knows it, so the next lookup of a nearby
        value would mint a *second* representative and break ``==``.
        """
        table = self.package.complex_table
        roots = self._live_roots()
        candidates = []
        for key, _entry in roots:
            weight = key[1]
            bucket = table._buckets.get(table._key(weight))
            if bucket and weight in bucket and abs(weight - ComplexTable.ONE) > table.tolerance:
                candidates.append(key)
        if not candidates:
            raise DDError(
                "fault injection needs a registered root with a non-trivial weight"
            )
        key = self.rng.choice(candidates)
        weight = key[1]
        bucket = table._buckets[table._key(weight)]
        bucket.remove(weight)
        return {"fault": "orphan-root-weight", "root": key[0], "weight": repr(weight)}

    def unclamp_near_zero(self) -> Dict[str, Any]:
        """Set a live edge weight into the open interval (0, tolerance)."""
        _table, _key, node = self._pick_entry()
        index = self._pick_nonzero_edge(node)
        tiny = complex(self.package.complex_table.tolerance * 0.25, 0.0)
        self._replace_edge_weight(node, index, tiny)
        return {"fault": "unclamp-near-zero", "node": node.uid, "edge": index}

    def poison_nonfinite(self) -> Dict[str, Any]:
        """Set a live edge weight to NaN (overflow / uninitialised read)."""
        _table, _key, node = self._pick_entry()
        index = self._pick_nonzero_edge(node)
        self._replace_edge_weight(node, index, complex(float("nan"), 0.0))
        return {"fault": "poison-nonfinite", "node": node.uid, "edge": index}

    def duplicate_complex_rep(self) -> Dict[str, Any]:
        """Insert a second representative inside an existing tolerance ball."""
        table = self.package.complex_table
        values = sorted(
            (value for _key, value in table.entries() if value != ComplexTable.ZERO),
            key=lambda v: (v.real, v.imag),
        )
        if not values:
            raise DDError("complex table has no non-zero representative")
        value = self.rng.choice(values)
        shadow = complex(value.real + table.tolerance * 0.3, value.imag)
        table._insert(shadow)
        return {
            "fault": "duplicate-complex-rep",
            "value": repr(value),
            "shadow": repr(shadow),
        }

    # ------------------------------------------------------------------
    # pooled-storage fault classes
    # ------------------------------------------------------------------
    def _pooled_engine(self):
        engine = getattr(self.package, "_pooled", None)
        if engine is None:
            raise DDError(
                "pooled fault classes require DDPackage(storage='pooled')"
            )
        return engine

    def pooled_dangling_successor(self) -> Dict[str, Any]:
        """Free a pool slot that a live node still points at.

        Models an over-eager mark-and-sweep: the successor's slot lands on
        the free-list (and may be recycled into an unrelated node) while
        parents still hold its index.
        """
        from repro.dd.pooled import MATRIX, VECTOR

        engine = self._pooled_engine()
        candidates = []
        for kind, pool in ((VECTOR, engine.vpool), (MATRIX, engine.mpool)):
            for index in pool.live_indices():
                for offset, (succ, _wsucc) in enumerate(pool.edges_of(index)):
                    if succ >= 0:
                        candidates.append((kind, index, offset, succ))
        if not candidates:
            raise DDError(
                "fault injection needs a live node with a non-terminal successor"
            )
        kind, parent, offset, succ = self.rng.choice(sorted(candidates))
        pool = engine.vpool if kind == VECTOR else engine.mpool
        pool.free(succ)
        return {
            "fault": "pooled-dangling-successor",
            "kind": "vector" if kind == VECTOR else "matrix",
            "parent": parent,
            "edge": offset,
            "freed": succ,
        }

    def pooled_stale_weight(self) -> Dict[str, Any]:
        """Free a weight-pool slot that a live edge still indexes.

        Mirrors exactly what :meth:`WeightPool.sweep_indices` does to a
        genuinely dead weight — exact-dict and bucket removal, value slot
        poisoned, index pushed to the free-list — but against a weight
        that is still referenced, modelling a mark phase that missed it.
        """
        from repro.dd.pooled import MATRIX, VECTOR

        engine = self._pooled_engine()
        weights = engine.weights
        referenced = set()
        for pool in (engine.vpool, engine.mpool):
            for index in pool.live_indices():
                for _succ, wsucc in pool.edges_of(index):
                    if wsucc >= weights._seed_count:
                        referenced.add(wsucc)
        if not referenced:
            raise DDError(
                "fault injection needs a live edge with a non-seed weight"
            )
        target = self.rng.choice(sorted(referenced))
        value = weights._values[target]
        del weights._exact[value]
        bucket = weights._buckets.get(weights._key(value))
        if bucket and value in bucket:
            bucket.remove(value)
        weights._values[target] = None
        weights._re[target] = float("nan")
        weights._im[target] = float("nan")
        weights._free.append(target)
        return {
            "fault": "pooled-stale-weight",
            "weight_index": target,
            "value": repr(value),
        }

    # ------------------------------------------------------------------
    # reordering / identity-skipping fault classes
    # ------------------------------------------------------------------
    def corrupt_order_map(self) -> Dict[str, Any]:
        """Duplicate one entry of the level-to-qubit permutation.

        Models a reorder interrupted halfway through its swap bookkeeping:
        two levels claim the same qubit, so every amplitude, sample and
        serialization query silently reads the wrong axis.
        """
        package = self.package
        package._ensure_order(2)
        order = package._order
        level = self.rng.randrange(len(order) - 1)
        old = order[level]
        order[level] = order[level + 1]
        package._order_is_identity = False
        return {"fault": "corrupt-order-map", "level": level, "old": old}

    def skip_across_level(self) -> Dict[str, Any]:
        """Plant an identity-skip edge across a level of a *dense* package.

        Models reading a skipping-package serialization into a dense
        package (or a constructor that dropped a level): the edge jumps
        straight past ``q(var-1)`` with no identity semantics to justify
        it, so dense traversals misalign every level below.
        """
        from repro.dd.node import TERMINAL, MatrixNode

        if getattr(self.package, "identity_skipping", False):
            raise DDError(
                "skip-across-level targets dense (non-skipping) packages"
            )
        candidates = []
        for _table, _key, node in self._live_entries():
            if isinstance(node, MatrixNode) and node.var > 0:
                for index, edge in enumerate(node.edges):
                    if edge.weight != ComplexTable.ZERO:
                        candidates.append((node, index))
        if not candidates:
            raise DDError(
                "fault injection needs a live matrix node above level 0"
            )
        node, index = self.rng.choice(candidates)
        edges = list(node.edges)
        edges[index] = Edge(TERMINAL, edges[index].weight)
        node.edges = tuple(edges)
        self._pinned.append(node)
        return {"fault": "skip-across-level", "node": node.uid, "edge": index}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def inject(self, fault: str, **kwargs) -> Dict[str, Any]:
        """Plant one fault by class name (see :data:`FAULT_CLASSES`)."""
        try:
            method = FAULT_CLASSES[fault]
        except KeyError:
            valid = ", ".join(sorted(FAULT_CLASSES))
            raise DDError(f"unknown fault class {fault!r} (expected one of: {valid})")
        return getattr(self, method)(**kwargs)


def inject_fault(package, fault: str, seed: int = 0, **kwargs) -> Dict[str, Any]:
    """One-shot convenience: plant ``fault`` into ``package`` under ``seed``."""
    return FaultInjector(package, seed=seed).inject(fault, **kwargs)


# ----------------------------------------------------------------------
# service fault jobs (worker-pool chaos testing)
# ----------------------------------------------------------------------

def fault_crash_job(exit_code: int = 17) -> Dict[str, Any]:
    """Kill the worker process mid-job (simulates a hard crash / OOM kill).

    ``os._exit`` skips all cleanup, so the parent sees the pipe break —
    the pool must respawn the worker and answer 503, not hang or 500.
    Inline pools (no subprocess to sacrifice) refuse instead of killing
    the caller's process.
    """
    import os

    if not os.environ.get("REPRO_WORKER_CHILD"):
        raise DDError("fault-crash is only available in worker processes")
    os._exit(exit_code)


def fault_hang_job(seconds: float = 3600.0) -> Dict[str, Any]:
    """Sleep past any reasonable deadline (simulates a runaway computation).

    The pool's request watchdog must kill the worker and answer 504.
    """
    import time as _time

    _time.sleep(float(seconds))
    return {"slept": seconds}  # pragma: no cover - watchdog kills us first


def fault_corrupt_job(fault: str = "perturb-weight", seed: int = 0) -> Dict[str, Any]:
    """Corrupt the worker's own package, then sanitize.

    Builds a small state (so there is something to corrupt), plants the
    requested fault and runs the sanitizer with ``raise_on_violation`` —
    the resulting :class:`~repro.errors.SanitizerError` is marshalled to
    the parent (503) and the worker's governance report carries the
    violation count, degrading ``/healthz``.
    """
    from repro.service import workers

    package = workers._package()
    state = package.from_state_vector([0.5, 0.5j, -0.5, 0.5])
    package.incref(state)
    try:
        detail = inject_fault(package, fault, seed=seed)
        report = package.sanitize(raise_on_violation=True)
    finally:
        package.decref(state)
    # Unreachable for every known fault class; kept for forward-compat
    # with fault classes the sanitizer intentionally tolerates.
    return {"planted": detail, "ok": report.ok}


#: Fault jobs installed into the worker dispatch table (opt-in).
SERVICE_FAULT_JOBS = {
    "fault-crash": fault_crash_job,
    "fault-hang": fault_hang_job,
    "fault-corrupt": fault_corrupt_job,
}


def install_service_faults() -> None:
    """Register the fault jobs with the worker-pool dispatch table.

    Called by the worker bootstrap when ``REPRO_ENABLE_FAULT_JOBS`` is set
    (and directly by tests for fork-started or inline pools).
    """
    from repro.service import workers

    workers._JOB_FUNCTIONS.update(SERVICE_FAULT_JOBS)
