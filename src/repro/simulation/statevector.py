"""Dense numpy baseline simulator.

The paper motivates decision diagrams by the exponential size of state
vectors and operation matrices (Sec. III).  This module implements exactly
that exponential representation — gates extended to the full system via
tensor products and applied by dense matrix-vector products — serving two
purposes: an independent oracle for testing the DD package, and the baseline
for the scaling benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, ResetOp

_ID2 = np.eye(2, dtype=complex)
_ELEMENTARY = {
    (i, j): np.array(
        [[1.0 if (r, c) == (i, j) else 0.0 for c in (0, 1)] for r in (0, 1)],
        dtype=complex,
    )
    for i in (0, 1)
    for j in (0, 1)
}


def _chain(num_qubits: int, factors: Dict[int, np.ndarray]) -> np.ndarray:
    """Dense tensor-product chain: ``factor(q_{n-1}) ⊗ ... ⊗ factor(q_0)``."""
    result = np.ones((1, 1), dtype=complex)
    for var in range(num_qubits - 1, -1, -1):
        result = np.kron(result, factors.get(var, _ID2))
    return result


def gate_unitary(operation: GateOp, num_qubits: int) -> np.ndarray:
    """Dense ``2^n x 2^n`` unitary of one gate (paper Ex. 3)."""
    matrix = operation.matrix()
    targets = operation.targets
    terms = []
    if matrix.shape == (2, 2):
        blocks = {(0, 0): matrix}
        block_lines: Tuple[int, ...] = (targets[0],)
    else:
        high, low = targets
        blocks = {
            (i, j): matrix[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
            for i in (0, 1)
            for j in (0, 1)
        }
        block_lines = (high, low)
    has_controls = bool(operation.controls or operation.negative_controls)
    control_factors: Dict[int, np.ndarray] = {}
    for control in operation.controls:
        control_factors[control] = _ELEMENTARY[(1, 1)]
    for control in operation.negative_controls:
        control_factors[control] = _ELEMENTARY[(0, 0)]
    if matrix.shape == (2, 2):
        base: Dict[int, np.ndarray] = dict(control_factors)
        base[targets[0]] = matrix - _ID2 if has_controls else matrix
        terms.append(_chain(num_qubits, base))
        if has_controls:
            terms.append(np.eye(1 << num_qubits, dtype=complex))
        return sum(terms)
    # Two-qubit gate: sum over the |i><j| decomposition on the high line.
    high, low = block_lines
    active = matrix - np.eye(4, dtype=complex) if has_controls else matrix
    for i in (0, 1):
        for j in (0, 1):
            block = active[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
            if np.allclose(block, 0.0):
                continue
            factors: Dict[int, np.ndarray] = dict(control_factors)
            factors[high] = _ELEMENTARY[(i, j)]
            factors[low] = block
            terms.append(_chain(num_qubits, factors))
    total = sum(terms) if terms else np.zeros((1 << num_qubits,) * 2, dtype=complex)
    if has_controls:
        total = total + np.eye(1 << num_qubits, dtype=complex)
    return total


def build_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense functionality ``U = U_{m-1} ... U_0`` of a unitary circuit."""
    if circuit.has_nonunitary_operations:
        raise SimulationError("only unitary circuits have a functionality matrix")
    result = np.eye(1 << circuit.num_qubits, dtype=complex)
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            continue
        result = gate_unitary(operation, circuit.num_qubits) @ result
    return result


class StatevectorSimulator:
    """Dense state-vector simulation with the same semantics as DDSimulator.

    Measurements and resets draw from ``rng`` (or use a forced outcome);
    classically-controlled gates consult the classical register.
    """

    def __init__(self, circuit: QuantumCircuit, seed: Optional[int] = None):
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)
        self.state = np.zeros(1 << circuit.num_qubits, dtype=complex)
        self.state[0] = 1.0
        self.classical_bits = [0] * circuit.num_clbits
        self._position = 0

    @property
    def at_end(self) -> bool:
        return self._position >= len(self.circuit)

    def step(self, outcome: Optional[int] = None) -> None:
        """Execute the next operation."""
        if self.at_end:
            raise SimulationError("already at the end of the circuit")
        operation = self.circuit[self._position]
        if isinstance(operation, BarrierOp):
            pass
        elif isinstance(operation, MeasureOp):
            observed = self._collapse(operation.qubit, outcome)
            self.classical_bits[operation.clbit] = observed
        elif isinstance(operation, ResetOp):
            observed = self._collapse(operation.qubit, outcome)
            if observed == 1:
                self._apply(gate_unitary(
                    GateOp(gate="x", targets=(operation.qubit,)),
                    self.circuit.num_qubits,
                ))
        elif isinstance(operation, GateOp):
            if operation.condition is None or self._condition_met(operation):
                self._apply(gate_unitary(operation, self.circuit.num_qubits))
        self._position += 1

    def run(self) -> np.ndarray:
        """Execute every remaining operation; returns the final state."""
        while not self.at_end:
            self.step()
        return self.state

    def probabilities(self, qubit: int) -> Tuple[float, float]:
        """Measurement probabilities ``(p0, p1)`` for ``qubit``."""
        mask = 1 << qubit
        ones = (np.arange(self.state.size) & mask) != 0
        p1 = float(np.sum(np.abs(self.state[ones]) ** 2))
        total = float(np.sum(np.abs(self.state) ** 2))
        p1 /= total
        return 1.0 - p1, p1

    def _apply(self, unitary: np.ndarray) -> None:
        self.state = unitary @ self.state

    def _collapse(self, qubit: int, outcome: Optional[int]) -> int:
        p0, p1 = self.probabilities(qubit)
        if outcome is None:
            outcome = 0 if self._rng.random() < p0 else 1
        probability = p0 if outcome == 0 else p1
        if probability <= 0.0:
            raise SimulationError(
                f"outcome {outcome} on qubit {qubit} has probability zero"
            )
        mask = 1 << qubit
        indices = np.arange(self.state.size)
        keep = (indices & mask != 0) == bool(outcome)
        self.state = np.where(keep, self.state, 0.0) / np.sqrt(probability)
        return outcome

    def _condition_met(self, operation: GateOp) -> bool:
        clbits, value = operation.condition
        actual = 0
        for position, clbit in enumerate(clbits):
            actual |= self.classical_bits[clbit] << position
        return actual == value
