"""Exact density-matrix simulation with classical branching.

Where :class:`~repro.simulation.simulator.DDSimulator` follows *one*
measurement trajectory (mirroring the tool's pop-up dialogs), this
simulator tracks the full ensemble: each measurement splits the state into
classical branches weighted by their probabilities, resets apply the exact
channel, and classically-controlled gates act per branch.  The result is
the exact distribution over classical registers and the exact (generally
mixed) final quantum state — no sampling noise, no dialogs.

Branch count grows with the number of measurements (at most doubling per
measurement), which is fine for the protocol-sized circuits the paper's
tool targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dd import density
from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import SimulationError
from repro.qc.circuit import QuantumCircuit
from repro.qc.dd_builder import gate_to_dd
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, ResetOp


@dataclass(frozen=True)
class Branch:
    """One classical branch of the ensemble."""

    probability: float
    classical_bits: Tuple[int, ...]
    rho: Edge


class DensityMatrixSimulator:
    """Exact simulation of a circuit with measurements and resets."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        package: Optional[DDPackage] = None,
        initial_state: Optional[Edge] = None,
        prune_threshold: float = 1e-12,
    ):
        self.circuit = circuit
        self.package = package if package is not None else DDPackage()
        self.prune_threshold = prune_threshold
        if initial_state is None:
            initial_state = self.package.zero_state(circuit.num_qubits)
        rho = density.density_from_state(self.package, initial_state)
        self._branches: List[Branch] = [
            Branch(1.0, (0,) * circuit.num_clbits, rho)
        ]
        self._position = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def at_end(self) -> bool:
        return self._position >= len(self.circuit)

    @property
    def position(self) -> int:
        return self._position

    @property
    def branches(self) -> Tuple[Branch, ...]:
        return tuple(self._branches)

    def step(self) -> None:
        """Execute the next operation on every branch."""
        if self.at_end:
            raise SimulationError("already at the end of the circuit")
        operation = self.circuit[self._position]
        if isinstance(operation, BarrierOp):
            pass
        elif isinstance(operation, MeasureOp):
            self._measure(operation.qubit, operation.clbit)
        elif isinstance(operation, ResetOp):
            self._branches = [
                Branch(
                    branch.probability,
                    branch.classical_bits,
                    density.reset(self.package, branch.rho, operation.qubit),
                )
                for branch in self._branches
            ]
        elif isinstance(operation, GateOp):
            self._apply_gate(operation)
        else:  # pragma: no cover - the IR has no other operation kinds
            raise SimulationError(f"unsupported operation {operation!r}")
        self._position += 1

    def run(self) -> Tuple[Branch, ...]:
        """Execute all remaining operations; returns the final branches."""
        while not self.at_end:
            self.step()
        return self.branches

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def classical_distribution(self) -> Dict[str, float]:
        """Exact probability of each classical-register value (big-endian:
        the highest classical index is the leftmost character)."""
        distribution: Dict[str, float] = {}
        for branch in self._branches:
            key = "".join(
                str(bit) for bit in reversed(branch.classical_bits)
            )
            distribution[key] = distribution.get(key, 0.0) + branch.probability
        return distribution

    def state(self) -> Edge:
        """The ensemble-averaged density matrix ``sum_b p_b rho_b``."""
        total = None
        for branch in self._branches:
            weighted = branch.rho.scaled(
                self.package.complex_table.lookup(branch.probability),
                self.package.complex_table,
            )
            total = weighted if total is None else self.package.add(total, weighted)
        return total

    def density_matrix(self) -> np.ndarray:
        """Dense ensemble density matrix (small systems)."""
        return self.package.to_matrix(self.state(), self.circuit.num_qubits)

    def probabilities(self, qubit: int) -> Tuple[float, float]:
        """Exact measurement probabilities for ``qubit``."""
        return density.measure_probabilities(self.package, self.state(), qubit)

    def purity(self) -> float:
        """``Tr(rho^2)`` of the ensemble state."""
        return density.purity(self.package, self.state())

    def reduced_density_matrix(self, keep_qubits) -> np.ndarray:
        """Dense reduced state over ``keep_qubits`` (order preserved)."""
        keep = sorted(int(q) for q in keep_qubits)
        traced = [
            qubit
            for qubit in range(self.circuit.num_qubits)
            if qubit not in keep
        ]
        reduced = density.partial_trace(self.package, self.state(), traced)
        return self.package.to_matrix(reduced, len(keep))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _apply_gate(self, operation: GateOp) -> None:
        unitary = gate_to_dd(self.package, operation, self.circuit.num_qubits)
        updated: List[Branch] = []
        for branch in self._branches:
            if operation.condition is not None and not self._condition_met(
                operation, branch.classical_bits
            ):
                updated.append(branch)
                continue
            updated.append(
                Branch(
                    branch.probability,
                    branch.classical_bits,
                    density.apply_unitary(self.package, branch.rho, unitary),
                )
            )
        self._branches = updated

    def _measure(self, qubit: int, clbit: int) -> None:
        updated: List[Branch] = []
        for branch in self._branches:
            p0, p1 = density.measure_probabilities(
                self.package, branch.rho, qubit
            )
            for outcome, probability in ((0, p0), (1, p1)):
                weight = branch.probability * probability
                if weight <= self.prune_threshold:
                    continue
                __, collapsed = density.collapse(
                    self.package, branch.rho, qubit, outcome
                )
                bits = list(branch.classical_bits)
                bits[clbit] = outcome
                updated.append(Branch(weight, tuple(bits), collapsed))
        self._branches = self._merge(updated)

    def _merge(self, branches: List[Branch]) -> List[Branch]:
        """Merge branches with identical classical bits and states."""
        merged: Dict[Tuple[Tuple[int, ...], int, complex], Branch] = {}
        for branch in branches:
            key = (branch.classical_bits, branch.rho.node.uid, branch.rho.weight)
            existing = merged.get(key)
            if existing is None:
                merged[key] = branch
            else:
                merged[key] = Branch(
                    existing.probability + branch.probability,
                    branch.classical_bits,
                    branch.rho,
                )
        return list(merged.values())

    @staticmethod
    def _condition_met(operation: GateOp, classical) -> bool:
        clbits, value = operation.condition
        actual = 0
        for index, clbit in enumerate(clbits):
            actual |= classical[clbit] << index
        return actual == value
