"""Circuit simulation.

:class:`~repro.simulation.simulator.DDSimulator` performs the consecutive
matrix-vector products of paper Sec. III-B on decision diagrams and offers
the step-through controls the visualization tool exposes (forward, backward,
run to the next breakpoint, measurement dialogs for measure/reset).

:class:`~repro.simulation.statevector.StatevectorSimulator` is the dense
numpy baseline — the "techniques purely based on matrices" the paper
contrasts decision diagrams with — used for cross-checking and benchmarks.
"""

from repro.simulation.density_simulator import Branch, DensityMatrixSimulator
from repro.simulation.simulator import DDSimulator, StepKind, StepRecord
from repro.simulation.statevector import StatevectorSimulator, build_unitary

__all__ = [
    "Branch",
    "DDSimulator",
    "DensityMatrixSimulator",
    "StatevectorSimulator",
    "StepKind",
    "StepRecord",
    "build_unitary",
]
