"""Decision-diagram circuit simulator with step-through controls.

Executing a circuit for an initial state is "simulation when conducted on a
classical computer" (paper Ex. 4): each gate multiplies the current state DD
by the gate's matrix DD.  On top of that, this simulator implements the
interaction model of the visualization tool (paper Sec. IV-B):

* ``step_forward`` / ``step_backward`` — move one operation at a time (the
  tool's right/left arrows); the entire state history is kept, which is
  cheap because the diagrams share structure;
* ``run`` — go straight to the end or the next *special operation*
  (the tool's fast-forward): barriers, measurements and resets act as
  breakpoints;
* measurements and resets consult an *outcome chooser* — the programmatic
  stand-in for the tool's pop-up dialog showing the |0>/|1> probabilities —
  and collapse the state irreversibly (going backward restores the
  pre-measurement state from the history);
* classically-controlled gates check the classical register first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dd import sampling
from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import SimulationError
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer, default_tracer
from repro.qc.circuit import QuantumCircuit
from repro.qc.dd_builder import apply_gate
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, Operation, ResetOp

#: Decides a measurement outcome given ``(p0, p1)``; returns 0 or 1.
OutcomeChooser = Callable[[float, float], int]


class StepKind(enum.Enum):
    """What happened during one simulation step."""

    GATE = "gate"
    GATE_SKIPPED = "gate-skipped"  # classical condition not met
    BARRIER = "barrier"
    MEASUREMENT = "measurement"
    RESET = "reset"


@dataclass(frozen=True)
class StepRecord:
    """Outcome of one :meth:`DDSimulator.step_forward` call."""

    index: int
    operation: Operation
    kind: StepKind
    outcome: Optional[int] = None
    probability: Optional[float] = None
    node_count: int = 0

    @property
    def is_breakpoint(self) -> bool:
        """Whether the fast-forward control stops after this step."""
        return self.kind in (StepKind.BARRIER, StepKind.MEASUREMENT, StepKind.RESET)


class DDSimulator:
    """Step-through decision-diagram simulation of one circuit."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        package: Optional[DDPackage] = None,
        initial_state: Optional[Edge] = None,
        seed: Optional[int] = None,
        outcome_chooser: Optional[OutcomeChooser] = None,
        approximation_threshold: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        use_apply_kernels: Optional[bool] = None,
        storage: Optional[str] = None,
    ):
        self.circuit = circuit
        if package is None:
            package = DDPackage(registry=registry, storage=storage)
        elif storage is not None and package.storage != storage:
            raise ValueError(
                f"explicit package uses storage {package.storage!r}, "
                f"cannot honour storage={storage!r}"
            )
        self.package = package
        # Per-run override of the package's gate-application path: True
        # forces the direct kernels, False the legacy matrix path; None
        # keeps whatever the package was configured with.
        if use_apply_kernels is not None:
            self.package.use_apply_kernels = use_apply_kernels
        self._rng = np.random.default_rng(seed)
        self._chooser = outcome_chooser
        #: optional per-step branch pruning (approximate simulation):
        #: after every gate, branches with probability mass below this
        #: threshold are dropped and the state renormalized; the running
        #: fidelity estimate is tracked in :attr:`approximation_fidelity`.
        self.approximation_threshold = approximation_threshold
        if initial_state is None:
            initial_state = self.package.zero_state(circuit.num_qubits)
        #: history of (state, classical bits) *before* each executed step.
        #: Every state in the history is a governor-registered root: the
        #: package's GC must never sweep the weight of a state the user can
        #: still step back to.
        self._states: List[Edge] = [self.package.incref(initial_state)]
        self._classical: List[Tuple[int, ...]] = [(0,) * circuit.num_clbits]
        self._records: List[StepRecord] = []
        self._fidelities: List[float] = [1.0]
        # Observability: per-step metrics go to the package's registry by
        # default (one registry per run) unless another one is passed in;
        # spans go to the given tracer or the process-wide default.
        self.registry = registry if registry is not None else self.package.registry
        self.tracer = tracer if tracer is not None else default_tracer()
        self._obs_on = self.registry.enabled
        self._m_steps = self.registry.counter("sim_steps_total")
        self._m_steps_back = self.registry.counter("sim_steps_back_total")
        self._m_breakpoints = self.registry.counter("sim_breakpoints_total")
        self._m_step_seconds = self.registry.histogram(
            "sim_step_seconds", DEFAULT_TIME_BUCKETS
        )
        self._m_nodes = self.registry.gauge("sim_nodes")
        self._m_peak_nodes = self.registry.gauge("sim_peak_nodes")
        #: Peak state-DD size seen so far (terminal excluded, as everywhere).
        self.peak_node_count = self.package.node_count(initial_state)
        self._m_nodes.set(self.peak_node_count)
        self._m_peak_nodes.set_max(self.peak_node_count)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> Edge:
        """The current state DD."""
        return self._states[-1]

    @property
    def classical_bits(self) -> Tuple[int, ...]:
        """The current classical register contents (index 0 first)."""
        return self._classical[-1]

    @property
    def position(self) -> int:
        """Number of operations executed so far."""
        return len(self._states) - 1

    @property
    def at_start(self) -> bool:
        return self.position == 0

    @property
    def at_end(self) -> bool:
        return self.position >= len(self.circuit)

    @property
    def records(self) -> Tuple[StepRecord, ...]:
        """Records of all executed steps, oldest first."""
        return tuple(self._records)

    def node_count(self) -> int:
        """Size of the current state DD (terminal excluded, as in the paper)."""
        return self.package.node_count(self.state)

    def statevector(self) -> np.ndarray:
        """Dense representation of the current state (small systems)."""
        return self.package.to_vector(self.state, self.circuit.num_qubits)

    def probabilities(self, qubit: int) -> Tuple[float, float]:
        """Measurement probabilities ``(p0, p1)`` for ``qubit``."""
        return sampling.qubit_probabilities(self.package, self.state, qubit)

    def sample_counts(self, shots: int, seed: Optional[int] = None) -> dict:
        """Non-destructive sampling from the current state (paper Sec. III-B)."""
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        return sampling.sample_counts(self.package, self.state, shots, rng)

    # ------------------------------------------------------------------
    # navigation (the tool's control buttons, paper Sec. IV-B)
    # ------------------------------------------------------------------
    def step_forward(self, outcome: Optional[int] = None) -> StepRecord:
        """Execute the next operation (the tool's right arrow).

        ``outcome`` forces the result of a pending measurement or reset,
        standing in for the user's choice in the pop-up dialog.
        """
        if not self._obs_on and not self.tracer.enabled:
            record = self._execute_step(outcome)
            if record.node_count > self.peak_node_count:
                self.peak_node_count = record.node_count
            return record
        with self.tracer.span("sim.step", index=self.position) as span:
            start = perf_counter()
            record = self._execute_step(outcome)
            elapsed = perf_counter() - start
            span.set_attribute("op", self._operation_label(record.operation))
            span.set_attribute("kind", record.kind.value)
            if record.outcome is not None:
                span.set_attribute("outcome", record.outcome)
            span.set_attribute("nodes", record.node_count)
        if record.node_count > self.peak_node_count:
            self.peak_node_count = record.node_count
        self._m_steps.inc()
        self._m_step_seconds.observe(elapsed)
        self._m_nodes.set(record.node_count)
        self._m_peak_nodes.set_max(record.node_count)
        if record.is_breakpoint:
            self._m_breakpoints.inc()
        return record

    @staticmethod
    def _operation_label(operation: Operation) -> str:
        if isinstance(operation, GateOp):
            return f"{operation.label()} {list(operation.qubits)}"
        if isinstance(operation, MeasureOp):
            return f"measure q{operation.qubit}"
        if isinstance(operation, ResetOp):
            return f"reset q{operation.qubit}"
        return "barrier"

    def _execute_step(self, outcome: Optional[int] = None) -> StepRecord:
        if self.at_end:
            raise SimulationError("already at the end of the circuit")
        operation = self.circuit[self.position]
        state = self.state
        classical = self.classical_bits
        self._pending_fidelity = self._fidelities[-1]
        if isinstance(operation, BarrierOp):
            record = self._record(operation, StepKind.BARRIER, state)
        elif isinstance(operation, MeasureOp):
            chosen, probability, state = self._measure(
                state, operation.qubit, outcome
            )
            bits = list(classical)
            bits[operation.clbit] = chosen
            classical = tuple(bits)
            record = self._record(
                operation, StepKind.MEASUREMENT, state, chosen, probability
            )
        elif isinstance(operation, ResetOp):
            chosen, probability, state = self._reset(state, operation.qubit, outcome)
            record = self._record(
                operation, StepKind.RESET, state, chosen, probability
            )
        elif isinstance(operation, GateOp):
            if operation.condition is not None and not self._condition_met(
                operation, classical
            ):
                record = self._record(operation, StepKind.GATE_SKIPPED, state)
            else:
                state = apply_gate(
                    self.package, state, operation, self.circuit.num_qubits
                )
                if self.approximation_threshold:
                    state = self._approximate(state)
                record = self._record(operation, StepKind.GATE, state)
        else:  # pragma: no cover - the IR has no other operation kinds
            raise SimulationError(f"unsupported operation {operation!r}")
        self._states.append(self.package.incref(state))
        self._classical.append(classical)
        self._records.append(record)
        self._fidelities.append(self._pending_fidelity)
        return record

    def step_backward(self) -> Operation:
        """Undo the most recent step (the tool's left arrow).

        Restores the previous state from the history, which also undoes
        measurements and resets (possible classically, paper Sec. III-B).
        """
        if self.at_start:
            raise SimulationError("already at the beginning of the circuit")
        self.package.decref(self._states.pop())
        self._classical.pop()
        self._fidelities.pop()
        record = self._records.pop()
        if self._obs_on:
            self._m_steps_back.inc()
            self._m_nodes.set(self.package.node_count(self.state))
        return record.operation

    def run(self, stop_at_breakpoints: bool = True) -> List[StepRecord]:
        """Run forward (the tool's fast-forward).

        Stops at the end of the circuit or — if ``stop_at_breakpoints`` —
        right after the next special operation (barrier, measurement or
        reset; paper Sec. IV-B).  Returns the records of the executed steps.
        """
        executed: List[StepRecord] = []
        with self.tracer.span(
            "sim.run",
            circuit=self.circuit.name,
            qubits=self.circuit.num_qubits,
        ) as span:
            while not self.at_end:
                record = self.step_forward()
                executed.append(record)
                if stop_at_breakpoints and record.is_breakpoint:
                    break
            if self.tracer.enabled:
                span.set_attribute("steps", len(executed))
                span.set_attribute("nodes", self.package.node_count(self.state))
        return executed

    def rewind(self) -> None:
        """Go back to the initial state (the tool's fast-backward)."""
        while not self.at_start:
            self.step_backward()

    def close(self) -> None:
        """Release the governor root registrations for the state history.

        Idempotent.  After closing, the simulator must not be stepped; the
        service session store calls this on eviction/expiry so the worker
        package's GC can reclaim the session's diagrams.
        """
        for state in self._states:
            self.package.decref(state)
        self._states = self._states[:1] if self._states else []

    def run_all(self) -> List[StepRecord]:
        """Execute every remaining operation, ignoring breakpoints."""
        return self.run(stop_at_breakpoints=False)

    def slideshow(self):
        """Iterate over the remaining steps one by one (the play button).

        Yields ``(record, state)`` pairs; the consumer controls the pace.
        """
        while not self.at_end:
            record = self.step_forward()
            yield record, self.state

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _record(
        self,
        operation: Operation,
        kind: StepKind,
        state: Edge,
        outcome: Optional[int] = None,
        probability: Optional[float] = None,
    ) -> StepRecord:
        return StepRecord(
            index=self.position,
            operation=operation,
            kind=kind,
            outcome=outcome,
            probability=probability,
            node_count=self.package.node_count(state),
        )

    def _choose(self, p0: float, p1: float) -> int:
        if self._chooser is not None:
            choice = self._chooser(p0, p1)
            if choice not in (0, 1):
                raise SimulationError(
                    f"outcome chooser returned {choice!r}, expected 0 or 1"
                )
            return choice
        return 0 if self._rng.random() < p0 else 1

    def _measure(
        self, state: Edge, qubit: int, outcome: Optional[int]
    ) -> Tuple[int, float, Edge]:
        p0, p1 = sampling.qubit_probabilities(self.package, state, qubit)
        if outcome is None:
            # Deterministic qubits need no dialog (paper: the dialog appears
            # only for qubits in superposition).
            if p1 == 0.0:
                outcome = 0
            elif p0 == 0.0:
                outcome = 1
            else:
                outcome = self._choose(p0, p1)
        return sampling.measure_qubit(self.package, state, qubit, outcome)

    def _reset(
        self, state: Edge, qubit: int, outcome: Optional[int]
    ) -> Tuple[int, float, Edge]:
        p0, p1 = sampling.qubit_probabilities(self.package, state, qubit)
        if outcome is None:
            if p1 == 0.0:
                outcome = 0
            elif p0 == 0.0:
                outcome = 1
            else:
                outcome = self._choose(p0, p1)
        return sampling.reset_qubit(self.package, state, qubit, outcome)

    @property
    def approximation_fidelity(self) -> float:
        """Running product of per-step pruning fidelities (1.0 when exact).

        Rolls back correctly when stepping backward through the history.
        """
        return self._fidelities[-1]

    def _approximate(self, state: Edge) -> Edge:
        from repro.dd.approximation import prune_small_branches

        result = prune_small_branches(
            self.package, state, self.approximation_threshold
        )
        self._pending_fidelity = self._fidelities[-1] * result.fidelity
        return result.state

    @staticmethod
    def _condition_met(operation: GateOp, classical: Sequence[int]) -> bool:
        clbits, value = operation.condition
        actual = 0
        for position, clbit in enumerate(clbits):
            actual |= classical[clbit] << position
        return actual == value
