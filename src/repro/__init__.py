"""repro — decision diagrams for quantum computing, with visualization.

A from-scratch Python reproduction of R. Wille, L. Burgholzer, M. Artner,
*Visualizing Decision Diagrams for Quantum Computing* (DATE 2021):

* :mod:`repro.dd` — the decision-diagram package (canonical complex
  weights, hash-consed vector/matrix nodes, normalization schemes,
  add / multiply / tensor / adjoint, measurement, sampling, reset);
* :mod:`repro.qc` — circuits, the standard gate library, OpenQASM 2.0 and
  RevLib ``.real`` frontends, and well-known circuit generators;
* :mod:`repro.simulation` — the step-through DD simulator and the dense
  numpy baseline;
* :mod:`repro.verification` — construction-based and alternating
  ``G (G')^-1`` equivalence checking;
* :mod:`repro.vis` — classic / colored / modern DD rendering (DOT, SVG,
  ASCII, interactive HTML) plus run-timeline charts;
* :mod:`repro.obs` — observability: metrics registry, span tracing and
  JSON / Prometheus / run-report exporters;
* :mod:`repro.tool` — simulation and verification sessions mirroring the
  paper's web tool, plus the ``qdd-tool`` CLI.

Quickstart::

    from repro import DDPackage, SimulationSession, library

    session = SimulationSession(library.bell_pair(), seed=0)
    session.to_end(stop_at_breakpoints=False)
    print(session.current_text())
"""

from repro import obs
from repro.dd import DDPackage, Edge, NormalizationScheme
from repro.errors import ReproError
from repro.obs import MetricsRegistry, Tracer, traced
from repro.qc import QuantumCircuit, library
from repro.qc.qasm import circuit_to_qasm, parse_qasm, parse_qasm_file
from repro.qc.real_format import parse_real, parse_real_file
from repro.simulation import DDSimulator, DensityMatrixSimulator, StatevectorSimulator
from repro.tool import SimulationSession, VerificationSession, load_circuit
from repro.synthesis import prepare_state, synthesize_state_preparation
from repro.verification import (
    ApplicationStrategy,
    check_equivalence_alternating,
    check_equivalence_ancillary,
    check_equivalence_construct,
    check_equivalence_stimuli,
)
from repro.vis import DDStyle, dd_to_dot, dd_to_svg, dd_to_text

__version__ = "1.0.0"

__all__ = [
    "ApplicationStrategy",
    "DDPackage",
    "DDSimulator",
    "DDStyle",
    "DensityMatrixSimulator",
    "Edge",
    "MetricsRegistry",
    "NormalizationScheme",
    "QuantumCircuit",
    "ReproError",
    "SimulationSession",
    "StatevectorSimulator",
    "Tracer",
    "VerificationSession",
    "__version__",
    "check_equivalence_alternating",
    "check_equivalence_ancillary",
    "check_equivalence_construct",
    "check_equivalence_stimuli",
    "circuit_to_qasm",
    "dd_to_dot",
    "dd_to_svg",
    "dd_to_text",
    "library",
    "load_circuit",
    "obs",
    "parse_qasm",
    "parse_qasm_file",
    "parse_real",
    "parse_real_file",
    "prepare_state",
    "synthesize_state_preparation",
    "traced",
]
