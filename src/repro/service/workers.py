"""Watchdog-supervised worker processes for one-shot simulate/verify jobs.

:class:`DDPackage` instances are not thread-safe, and a busy batch endpoint
must not serialize all clients behind one package.  The pool therefore runs
jobs in dedicated worker *processes*, each owning exactly one long-lived,
memory-governed package that is reused across jobs.

Unlike a ``multiprocessing.Pool`` (whose ``get(timeout)`` abandons the
result but leaves the worker churning on the stuck job forever), every
worker here is supervised by a *request watchdog*: the parent waits on the
worker's pipe with a per-request wall-clock deadline and, on overrun,
**kills** the worker process and respawns a fresh one — the runaway
computation is actually stopped, not merely ignored.  Kills are counted in
``service_watchdog_kills_total``.

Workers also participate in memory governance: after every job the worker
runs its package's garbage collector if the configured
:class:`~repro.dd.governance.MemoryBudget` shows pressure, and reports the
post-GC pressure back alongside the result.  If a worker remains at HARD
pressure even after collecting (live data alone exceeds the budget), the
pool sheds load for a cooldown period: ``submit`` raises
:class:`~repro.errors.TablePressureError`, which the HTTP layer maps to
``503`` with a ``Retry-After`` header — bounded memory instead of
fast-until-OOM.

Job functions are module-level so they pickle, take only plain-data
arguments (QASM text, ints, strings) and return plain dicts — the JSON the
endpoint will serve.

``workers=0`` selects *inline* mode: jobs run in the calling thread behind
a lock.  That keeps unit tests and single-user deployments free of
subprocess machinery while exercising the exact same job functions (the
watchdog cannot kill the calling thread, so deadlines are not enforced
inline; pressure shedding still works).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import queue
import threading
import time
from time import perf_counter
from typing import Any, Callable, Dict, Optional, Tuple

from repro import errors as _errors
from repro.errors import (
    BadRequestError,
    JobTimeoutError,
    ServiceError,
    ServiceUnavailableError,
    TablePressureError,
)
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = ["WorkerPool", "simulate_job", "verify_job"]

#: The per-process decision-diagram package (one per worker, reused).
_WORKER_PACKAGE = None
#: Budget applied to worker packages, set by the worker bootstrap.
_WORKER_BUDGET: Tuple[int, int] = (0, 0)  # (max_nodes, max_bytes); 0 = off


def _package():
    global _WORKER_PACKAGE
    if _WORKER_PACKAGE is None:
        from repro.dd.governance import MemoryBudget
        from repro.dd.package import DDPackage
        from repro.obs.metrics import MetricsRegistry as _Registry

        max_nodes, max_bytes = _WORKER_BUDGET
        budget = MemoryBudget(
            max_nodes=max_nodes or None,
            max_bytes=max_bytes or None,
        )
        # Workers keep their own dark registry: service-level metrics are
        # recorded in the parent, and a disabled registry keeps the
        # simulation hot path free of instrumentation cost.
        _WORKER_PACKAGE = DDPackage(
            registry=_Registry(enabled=False), budget=budget
        )
    return _WORKER_PACKAGE


def _set_budget(max_nodes: int, max_bytes: int) -> None:
    global _WORKER_BUDGET
    _WORKER_BUDGET = (int(max_nodes), int(max_bytes))


def _reset_package() -> None:
    """Drop the process-wide package so the next job rebuilds it.

    Needed when an *inline* pool (workers=0) configures a budget after a
    previous pool in the same process already built an unbudgeted package.
    """
    global _WORKER_PACKAGE
    _WORKER_PACKAGE = None


def simulate_job(
    qasm: str,
    shots: int = 0,
    seed: Optional[int] = 0,
    matrix_path: bool = False,
) -> Dict[str, Any]:
    """Parse, simulate to the end, optionally sample; return a JSON dict.

    ``matrix_path`` forces the legacy matrix-DD gate pipeline instead of
    the direct apply kernels (the differential-testing oracle).
    """
    from repro.dd import sampling
    from repro.qc.qasm.parser import parse_qasm
    from repro.simulation.simulator import DDSimulator

    circuit = parse_qasm(qasm)
    package = _package()
    simulator = None
    original_kernels = package.use_apply_kernels
    try:
        simulator = DDSimulator(
            circuit,
            package=package,
            seed=seed,
            use_apply_kernels=not matrix_path,
        )
        simulator.run_all()
        counts = None
        if shots:
            import numpy as np

            rng = np.random.default_rng(seed)
            counts = sampling.sample_counts(package, simulator.state, shots, rng)
        return {
            "circuit": circuit.name,
            "num_qubits": circuit.num_qubits,
            "operations": len(circuit),
            "nodes": simulator.node_count(),
            "peak_nodes": simulator.peak_node_count,
            "classical_bits": list(simulator.classical_bits),
            "counts": counts,
        }
    finally:
        if simulator is not None:
            simulator.close()  # release the history's governor roots
        package.use_apply_kernels = original_kernels
        package.clear_caches()


def verify_job(left_qasm: str, right_qasm: str, strategy: str = "proportional") -> Dict[str, Any]:
    """Equivalence-check two QASM circuits; return a JSON dict."""
    from repro.qc.qasm.parser import parse_qasm
    from repro.verification import (
        ApplicationStrategy,
        check_equivalence_alternating,
        check_equivalence_construct,
    )

    left = parse_qasm(left_qasm, name="G")
    right = parse_qasm(right_qasm, name="G'")
    package = _package()
    try:
        if strategy == "construct":
            result = check_equivalence_construct(left, right, package=package)
        else:
            try:
                parsed = ApplicationStrategy(strategy)
            except ValueError:
                valid = ", ".join(
                    ["construct"] + [s.value for s in ApplicationStrategy]
                )
                raise BadRequestError(
                    f"unknown strategy {strategy!r} (expected one of: {valid})"
                )
            result = check_equivalence_alternating(
                left, right, strategy=parsed, package=package
            )
        return {
            "equivalent": result.equivalent,
            "equivalent_up_to_global_phase": result.equivalent_up_to_global_phase,
            "method": result.method,
            "peak_nodes": result.max_nodes,
        }
    finally:
        package.clear_caches()


#: Job dispatch by name — the pipe carries names, not pickled callables.
_JOB_FUNCTIONS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "simulate": simulate_job,
    "verify": verify_job,
}


def register_job(kind: str, fn: Callable[..., Dict[str, Any]]) -> None:
    """Add (or replace) a named job in the dispatch table.

    Registration in the parent covers inline pools and fork-started
    workers; spawn-started workers re-register in their own bootstrap
    (see ``_worker_main``), so callers register at both ends.
    """
    _JOB_FUNCTIONS[kind] = fn


def _governance_report() -> Dict[str, Any]:
    """Post-job governance snapshot; collects if the budget shows pressure."""
    from repro.dd.governance import PressureLevel

    package = _package()
    governor = package.governor
    if governor.pressure() is not PressureLevel.OK:
        governor.collect()
    return {
        "pressure": int(governor.pressure()),
        "table_bytes": governor.table_bytes(),
        "nodes": governor.node_count(),
        "gc_runs": governor.runs,
        "gc_nodes_reclaimed": governor.nodes_reclaimed_total,
        "gc_complex_reclaimed": governor.complex_reclaimed_total,
        "sanitize_runs": package.sanitize_runs,
        "sanitize_violations": package.sanitize_violations,
    }


def _worker_main(conn, max_nodes: int, max_bytes: int) -> None:  # pragma: no cover - child process
    """Worker loop: recv (job, args), run, send (status, payload, report)."""
    import os

    # Mark this process as a sacrificial worker child and (only when the
    # operator opted in) expose the chaos-testing fault jobs.
    os.environ["REPRO_WORKER_CHILD"] = "1"
    if os.environ.get("REPRO_ENABLE_FAULT_JOBS"):
        from repro.sanitizer.faults import install_service_faults

        install_service_faults()
    # Campaign cells are a first-class job kind: install unconditionally so
    # spawn-started children (which do not inherit parent registrations)
    # can serve `qdd-tool campaign` work.
    from repro.campaign.jobs import install_campaign_jobs

    install_campaign_jobs()
    _set_budget(max_nodes, max_bytes)
    _package()  # warm up before signalling readiness
    conn.send(("ready", None, None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message is None:
            break
        job, args = message
        try:
            result = _JOB_FUNCTIONS[job](*args)
            conn.send(("ok", result, _governance_report()))
        except BaseException as error:  # noqa: BLE001 - marshalled to parent
            try:
                report = _governance_report()
            except Exception:  # noqa: BLE001 - reporting must not mask the job error
                report = None
            conn.send(("err", (type(error).__name__, str(error)), report))
    conn.close()


def _rebuild_error(name: str, message: str) -> Exception:
    """Map a worker-side exception back onto the :mod:`repro.errors` tree."""
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        try:
            return cls(message)
        except TypeError:  # pragma: no cover - exotic constructor signature
            pass
    return ServiceError(f"{name}: {message}")


class _Worker:
    """One supervised worker process and its duplex pipe."""

    def __init__(self, context, max_nodes: int, max_bytes: int):
        self.conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, max_nodes, max_bytes),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def wait_ready(self, timeout: float = 30.0) -> None:
        if not self.conn.poll(timeout):  # pragma: no cover - slow machine
            raise ServiceError("worker failed to start in time")
        self.conn.recv()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)


class WorkerPool:
    """A fixed pool of watchdog-supervised workers (or an inline fallback).

    ``request_deadline`` is the per-request wall-clock limit enforced by
    the watchdog (0 falls back to ``job_timeout``).  ``budget_nodes`` /
    ``budget_bytes`` configure each worker package's
    :class:`~repro.dd.governance.MemoryBudget` (0 disables a limit).
    """

    #: Seconds of load shedding after a worker stays at HARD pressure.
    PRESSURE_COOLDOWN = 2.0

    def __init__(
        self,
        workers: int = 2,
        job_timeout: float = 120.0,
        registry: Optional[MetricsRegistry] = None,
        request_deadline: float = 0.0,
        budget_nodes: int = 0,
        budget_bytes: int = 0,
        event_bus=None,
    ):
        self.workers = max(0, int(workers))
        self.job_timeout = job_timeout
        self.request_deadline = request_deadline if request_deadline > 0 else job_timeout
        self.budget_nodes = int(budget_nodes)
        self.budget_bytes = int(budget_bytes)
        self.event_bus = event_bus
        self._last_published_pressure = 0
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._registry = registry
        # Per-kind metrics are created lazily in `_job_metrics`: the job
        # table is open (chaos-testing fault jobs register extra kinds).
        self._m_jobs = {
            kind: registry.counter("service_jobs_total", {"kind": kind})
            for kind in ("simulate", "verify")
        }
        self._m_seconds = {
            kind: registry.histogram(
                "service_job_seconds", DEFAULT_TIME_BUCKETS, {"kind": kind}
            )
            for kind in ("simulate", "verify")
        }
        self._m_sanitize = registry.counter("dd_sanitize_violations_total")
        self.sanitize_violations_seen = 0
        self._m_timeouts = registry.counter("service_job_timeouts_total")
        self._m_kills = registry.counter("service_watchdog_kills_total")
        self._m_shed = registry.counter("service_pressure_rejections_total")
        self._m_pressure = registry.gauge("service_worker_pressure")
        self._m_table_bytes = registry.gauge("dd_worker_table_bytes")
        self._m_gc_runs = registry.counter("dd_gc_runs_total")
        self._m_gc_nodes = registry.counter("dd_gc_nodes_reclaimed_total")
        self._inline_lock = threading.Lock()
        self.watchdog_kills = 0
        self.last_report: Optional[Dict[str, Any]] = None
        self._reject_until = 0.0
        self._reject_lock = threading.Lock()
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._closed = False
        self._context = None
        if not self.workers and (self.budget_nodes or self.budget_bytes):
            # Inline jobs share this process's package: install the budget
            # and rebuild so it actually takes effect.
            _set_budget(self.budget_nodes, self.budget_bytes)
            _reset_package()
        if self.workers:
            # Prefer fork (cheap, instant warm-up); the pool is created
            # before the server starts accepting, so no threads exist yet.
            methods = multiprocessing.get_all_start_methods()
            self._context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            spawned = [self._spawn() for _ in range(self.workers)]
            for worker in spawned:
                worker.wait_ready()
                self._idle.put(worker)

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        return _Worker(self._context, self.budget_nodes, self.budget_bytes)

    def _respawn_after_kill(self, worker: _Worker, reason: str) -> None:
        worker.kill()
        self.watchdog_kills += 1
        self._m_kills.inc()
        self._publish("worker.kill", {
            "reason": reason, "kills_total": self.watchdog_kills,
        })
        replacement = self._spawn()
        try:
            replacement.wait_ready()
        except ServiceError:  # pragma: no cover - respawn failure
            replacement.kill()
            raise
        self._idle.put(replacement)

    def _publish(self, kind: str, data: Dict[str, Any]) -> None:
        if self.event_bus is not None:
            self.event_bus.publish(kind, data)

    def _absorb_report(self, report: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's post-job governance report into pool state."""
        if not report:
            return
        from repro.dd.governance import PressureLevel

        self.last_report = report
        pressure = int(report.get("pressure", 0) or 0)
        self._m_pressure.set(pressure)
        self._m_table_bytes.set(report.get("table_bytes", 0))
        self._m_gc_runs.set_value(report.get("gc_runs", 0))
        self._m_gc_nodes.set_value(report.get("gc_nodes_reclaimed", 0))
        if pressure != self._last_published_pressure:
            self._publish("pool.pressure", {
                "level": pressure,
                "previous": self._last_published_pressure,
                "table_bytes": report.get("table_bytes", 0),
                "nodes": report.get("nodes", 0),
            })
            self._last_published_pressure = pressure
        violations = int(report.get("sanitize_violations", 0) or 0)
        if violations > self.sanitize_violations_seen:
            # Sticky by design: detected table corruption is not something
            # a later clean job un-detects.  `/healthz` degrades until the
            # operator restarts (or replaces) the service.
            self.sanitize_violations_seen = violations
            self._m_sanitize.set_value(violations)
            self._publish("pool.sanitize", {
                "violations_total": violations, "sticky": True,
            })
        if pressure >= int(PressureLevel.HARD):
            # The worker is still over budget *after* collecting: its live
            # data alone exceeds the budget.  Shed load briefly so clients
            # back off instead of piling more work onto a saturated table.
            with self._reject_lock:
                self._reject_until = time.monotonic() + self.PRESSURE_COOLDOWN

    def _check_pressure_gate(self) -> None:
        with self._reject_lock:
            remaining = self._reject_until - time.monotonic()
        if remaining > 0:
            self._m_shed.inc()
            self._publish("pool.shed", {"retry_after": max(0.1, round(remaining, 1))})
            raise TablePressureError(
                "worker decision-diagram tables are at their memory budget; "
                "retry shortly",
                retry_after=max(0.1, round(remaining, 1)),
            )

    @property
    def pressure_level(self) -> int:
        """Last reported post-GC worker pressure (0 = OK)."""
        report = self.last_report
        return int(report.get("pressure", 0)) if report else 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, kind: str, fn: Callable[..., Dict[str, Any]], *args) -> Dict[str, Any]:
        """Run ``fn(*args)`` on a worker and block for the result.

        Raises :class:`JobTimeoutError` if the request deadline elapses
        (the runaway worker is killed and replaced), and
        :class:`TablePressureError` while the pool is shedding load.
        """
        if self._closed:
            raise ServiceError("the worker pool is closed")
        self._check_pressure_gate()
        start = perf_counter()
        try:
            if not self.workers:
                with self._inline_lock:
                    try:
                        return fn(*args)
                    finally:
                        self._absorb_report(_governance_report())
            return self._submit_to_worker(kind, args)
        finally:
            counter, histogram = self._job_metrics(kind)
            counter.inc()
            histogram.observe(perf_counter() - start)

    def _job_metrics(self, kind: str):
        if kind not in self._m_jobs:
            self._m_jobs[kind] = self._registry.counter(
                "service_jobs_total", {"kind": kind}
            )
            self._m_seconds[kind] = self._registry.histogram(
                "service_job_seconds", DEFAULT_TIME_BUCKETS, {"kind": kind}
            )
        return self._m_jobs[kind], self._m_seconds[kind]

    def _submit_to_worker(self, kind: str, args: tuple) -> Dict[str, Any]:
        # Checkout blocks until a worker frees up — same queueing semantics
        # as a shared Pool, but each job owns its worker for its duration.
        worker = self._idle.get()
        try:
            worker.conn.send((kind, args))
        except (BrokenPipeError, OSError):
            self._respawn_after_kill(worker, "send failed")
            raise ServiceUnavailableError("worker was unavailable; please retry")
        deadline = time.monotonic() + self.request_deadline
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._m_timeouts.inc()
                self._respawn_after_kill(worker, "deadline overrun")
                raise JobTimeoutError(
                    f"{kind} job exceeded the {self.request_deadline:.0f}s "
                    "request deadline (worker was killed and replaced)"
                )
            try:
                if not worker.conn.poll(min(remaining, 0.2)):
                    continue
                status, payload, report = worker.conn.recv()
            except (EOFError, OSError):
                self._respawn_after_kill(worker, "worker died")
                raise ServiceUnavailableError(
                    f"worker died while running a {kind} job; it has been "
                    "replaced — please retry"
                )
            break
        self._idle.put(worker)
        self._absorb_report(report)
        if status == "err":
            name, message = payload
            raise _rebuild_error(name, message)
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting jobs and reap the workers."""
        if self._closed:
            return
        self._closed = True
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                break
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.process.join(timeout=2.0)
            worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
