"""Watchdog-supervised worker shards for one-shot simulate/verify jobs.

:class:`DDPackage` instances are not thread-safe, and a busy batch endpoint
must not serialize all clients behind one package.  The pool therefore runs
jobs in dedicated worker *processes*, each owning exactly one long-lived,
memory-governed package that is reused across jobs.

Workers are **shards with stable identities** on a consistent-hash ring:
``submit(..., shard_key=digest)`` routes every job for the same circuit
digest to the same worker, so repeated circuits hit that shard's warm
unique/compute/apply tables instead of rebuilding them elsewhere.  Keyless
jobs take any free shard (round-robin).  A killed worker is respawned *in
place* under the same shard id — its warm tables are lost, but the ring
(and therefore every other key's placement) is unchanged.  Placement is
observable: ``service_shard_jobs_total{shard=...,affinity=...}`` counts
jobs per shard, and :attr:`WorkerPool.shard_jobs` snapshots the counters
for tests.

Unlike a ``multiprocessing.Pool`` (whose ``get(timeout)`` abandons the
result but leaves the worker churning on the stuck job forever), every
worker here is supervised by a *request watchdog*: the parent waits on the
worker's pipe with a per-request wall-clock deadline and, on overrun,
**kills** the worker process and respawns a fresh one — the runaway
computation is actually stopped, not merely ignored.  Kills are counted in
``service_watchdog_kills_total``.

Workers also participate in memory governance: after every job the worker
runs its package's garbage collector if the configured
:class:`~repro.dd.governance.MemoryBudget` shows pressure, and reports the
post-GC pressure back alongside the result.  If a worker remains at HARD
pressure even after collecting (live data alone exceeds the budget), the
pool sheds load for a cooldown period: ``submit`` raises
:class:`~repro.errors.TablePressureError`, which the HTTP layer maps to
``503`` with a ``Retry-After`` header — bounded memory instead of
fast-until-OOM.

Job functions are module-level so they pickle, take only plain-data
arguments (QASM text, ints, strings) and return plain dicts — the JSON the
endpoint will serve.

``workers=0`` selects *inline* mode: jobs run in the calling thread behind
a lock.  That keeps unit tests and single-user deployments free of
subprocess machinery while exercising the exact same job functions (the
watchdog cannot kill the calling thread, so deadlines are not enforced
inline; pressure shedding still works).
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import multiprocessing.connection
import threading
import time
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import errors as _errors
from repro.errors import (
    BadRequestError,
    JobTimeoutError,
    ServiceError,
    ServiceUnavailableError,
    TablePressureError,
)
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = ["WorkerPool", "simulate_job", "verify_job"]

#: The per-process decision-diagram package (one per worker, reused).
_WORKER_PACKAGE = None
#: Budget applied to worker packages, set by the worker bootstrap.
_WORKER_BUDGET: Tuple[int, int] = (0, 0)  # (max_nodes, max_bytes); 0 = off


def _package():
    global _WORKER_PACKAGE
    if _WORKER_PACKAGE is None:
        from repro.dd.governance import MemoryBudget
        from repro.dd.package import DDPackage
        from repro.obs.metrics import MetricsRegistry as _Registry

        max_nodes, max_bytes = _WORKER_BUDGET
        budget = MemoryBudget(
            max_nodes=max_nodes or None,
            max_bytes=max_bytes or None,
        )
        # Workers keep their own dark registry: service-level metrics are
        # recorded in the parent, and a disabled registry keeps the
        # simulation hot path free of instrumentation cost.
        _WORKER_PACKAGE = DDPackage(
            registry=_Registry(enabled=False), budget=budget
        )
    return _WORKER_PACKAGE


def _set_budget(max_nodes: int, max_bytes: int) -> None:
    global _WORKER_BUDGET
    _WORKER_BUDGET = (int(max_nodes), int(max_bytes))


def _reset_package() -> None:
    """Drop the process-wide package so the next job rebuilds it.

    Needed when an *inline* pool (workers=0) configures a budget after a
    previous pool in the same process already built an unbudgeted package.
    """
    global _WORKER_PACKAGE
    _WORKER_PACKAGE = None


def simulate_job(
    qasm: str,
    shots: int = 0,
    seed: Optional[int] = 0,
    matrix_path: bool = False,
) -> Dict[str, Any]:
    """Parse, simulate to the end, optionally sample; return a JSON dict.

    ``matrix_path`` forces the legacy matrix-DD gate pipeline instead of
    the direct apply kernels (the differential-testing oracle).
    """
    from repro.dd import sampling
    from repro.qc.qasm.parser import parse_qasm
    from repro.simulation.simulator import DDSimulator

    circuit = parse_qasm(qasm)
    package = _package()
    simulator = None
    original_kernels = package.use_apply_kernels
    try:
        simulator = DDSimulator(
            circuit,
            package=package,
            seed=seed,
            use_apply_kernels=not matrix_path,
        )
        simulator.run_all()
        counts = None
        if shots:
            import numpy as np

            rng = np.random.default_rng(seed)
            counts = sampling.sample_counts(package, simulator.state, shots, rng)
        return {
            "circuit": circuit.name,
            "num_qubits": circuit.num_qubits,
            "operations": len(circuit),
            "nodes": simulator.node_count(),
            "peak_nodes": simulator.peak_node_count,
            "classical_bits": list(simulator.classical_bits),
            "counts": counts,
        }
    finally:
        if simulator is not None:
            simulator.close()  # release the history's governor roots
        package.use_apply_kernels = original_kernels
        package.clear_caches()


def verify_job(left_qasm: str, right_qasm: str, strategy: str = "proportional") -> Dict[str, Any]:
    """Equivalence-check two QASM circuits; return a JSON dict."""
    from repro.qc.qasm.parser import parse_qasm
    from repro.verification import (
        ApplicationStrategy,
        check_equivalence_alternating,
        check_equivalence_construct,
    )

    left = parse_qasm(left_qasm, name="G")
    right = parse_qasm(right_qasm, name="G'")
    package = _package()
    try:
        if strategy == "construct":
            result = check_equivalence_construct(left, right, package=package)
        else:
            try:
                parsed = ApplicationStrategy(strategy)
            except ValueError:
                valid = ", ".join(
                    ["construct"] + [s.value for s in ApplicationStrategy]
                )
                raise BadRequestError(
                    f"unknown strategy {strategy!r} (expected one of: {valid})"
                )
            result = check_equivalence_alternating(
                left, right, strategy=parsed, package=package
            )
        return {
            "equivalent": result.equivalent,
            "equivalent_up_to_global_phase": result.equivalent_up_to_global_phase,
            "method": result.method,
            "peak_nodes": result.max_nodes,
        }
    finally:
        package.clear_caches()


#: Job dispatch by name — the pipe carries names, not pickled callables.
_JOB_FUNCTIONS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "simulate": simulate_job,
    "verify": verify_job,
}


def register_job(kind: str, fn: Callable[..., Dict[str, Any]]) -> None:
    """Add (or replace) a named job in the dispatch table.

    Registration in the parent covers inline pools and fork-started
    workers; spawn-started workers re-register in their own bootstrap
    (see ``_worker_main``), so callers register at both ends.
    """
    _JOB_FUNCTIONS[kind] = fn


def _governance_report() -> Dict[str, Any]:
    """Post-job governance snapshot; collects if the budget shows pressure."""
    from repro.dd.governance import PressureLevel

    package = _package()
    governor = package.governor
    if governor.pressure() is not PressureLevel.OK:
        governor.collect()
    return {
        "pressure": int(governor.pressure()),
        "table_bytes": governor.table_bytes(),
        "nodes": governor.node_count(),
        "gc_runs": governor.runs,
        "gc_nodes_reclaimed": governor.nodes_reclaimed_total,
        "gc_complex_reclaimed": governor.complex_reclaimed_total,
        "sanitize_runs": package.sanitize_runs,
        "sanitize_violations": package.sanitize_violations,
    }


def _worker_main(conn, max_nodes: int, max_bytes: int) -> None:  # pragma: no cover - child process
    """Worker loop: recv (job, args), run, send (status, payload, report)."""
    import os

    # Mark this process as a sacrificial worker child and (only when the
    # operator opted in) expose the chaos-testing fault jobs.
    os.environ["REPRO_WORKER_CHILD"] = "1"
    if os.environ.get("REPRO_ENABLE_FAULT_JOBS"):
        from repro.sanitizer.faults import install_service_faults

        install_service_faults()
    # Campaign cells are a first-class job kind: install unconditionally so
    # spawn-started children (which do not inherit parent registrations)
    # can serve `qdd-tool campaign` work.
    from repro.campaign.jobs import install_campaign_jobs

    install_campaign_jobs()
    _set_budget(max_nodes, max_bytes)
    _package()  # warm up before signalling readiness
    conn.send(("ready", None, None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message is None:
            break
        job, args = message
        try:
            result = _JOB_FUNCTIONS[job](*args)
            conn.send(("ok", result, _governance_report()))
        except BaseException as error:  # noqa: BLE001 - marshalled to parent
            try:
                report = _governance_report()
            except Exception:  # noqa: BLE001 - reporting must not mask the job error
                report = None
            conn.send(("err", (type(error).__name__, str(error)), report))
    conn.close()


def _rebuild_error(name: str, message: str) -> Exception:
    """Map a worker-side exception back onto the :mod:`repro.errors` tree."""
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        try:
            return cls(message)
        except TypeError:  # pragma: no cover - exotic constructor signature
            pass
    return ServiceError(f"{name}: {message}")


class _Worker:
    """One supervised worker process and its duplex pipe."""

    def __init__(self, context, max_nodes: int, max_bytes: int):
        self.conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, max_nodes, max_bytes),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def wait_ready(self, timeout: float = 30.0) -> None:
        if not self.conn.poll(timeout):  # pragma: no cover - slow machine
            raise ServiceError("worker failed to start in time")
        self.conn.recv()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)


class _Shard:
    """One worker slot with a stable identity on the consistent-hash ring.

    The lock serializes jobs onto the shard's single worker process; the
    worker behind it may be killed and respawned, but the shard id (and
    with it every key's ring placement) never changes.
    """

    __slots__ = ("index", "worker", "lock", "jobs_total", "keyed_jobs")

    def __init__(self, index: int, worker: Optional[_Worker]):
        self.index = index
        self.worker = worker
        self.lock = threading.Lock()
        self.jobs_total = 0
        self.keyed_jobs = 0


#: Virtual points per shard on the consistent-hash ring.  More points
#: smooth the key distribution across shards; 64 keeps the ring tiny.
_RING_REPLICAS = 64


def _hash_point(data: str) -> int:
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


def _build_ring(shard_count: int) -> List[Tuple[int, int]]:
    """``[(point, shard_index), ...]`` sorted by point."""
    ring = [
        (_hash_point(f"shard-{shard}:{replica}"), shard)
        for shard in range(shard_count)
        for replica in range(_RING_REPLICAS)
    ]
    ring.sort()
    return ring


class WorkerPool:
    """A fixed pool of watchdog-supervised worker shards (or inline).

    ``request_deadline`` is the per-request wall-clock limit enforced by
    the watchdog (0 falls back to ``job_timeout``).  ``budget_nodes`` /
    ``budget_bytes`` configure each worker package's
    :class:`~repro.dd.governance.MemoryBudget` (0 disables a limit).
    """

    #: Seconds of load shedding after a worker stays at HARD pressure.
    PRESSURE_COOLDOWN = 2.0

    def __init__(
        self,
        workers: int = 2,
        job_timeout: float = 120.0,
        registry: Optional[MetricsRegistry] = None,
        request_deadline: float = 0.0,
        budget_nodes: int = 0,
        budget_bytes: int = 0,
        event_bus=None,
    ):
        self.workers = max(0, int(workers))
        self.job_timeout = job_timeout
        self.request_deadline = request_deadline if request_deadline > 0 else job_timeout
        self.budget_nodes = int(budget_nodes)
        self.budget_bytes = int(budget_bytes)
        self.event_bus = event_bus
        self._last_published_pressure = 0
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._registry = registry
        # Per-kind metrics are created lazily in `_job_metrics`: the job
        # table is open (chaos-testing fault jobs register extra kinds).
        self._m_jobs = {
            kind: registry.counter("service_jobs_total", {"kind": kind})
            for kind in ("simulate", "verify")
        }
        self._m_seconds = {
            kind: registry.histogram(
                "service_job_seconds", DEFAULT_TIME_BUCKETS, {"kind": kind}
            )
            for kind in ("simulate", "verify")
        }
        self._m_sanitize = registry.counter("dd_sanitize_violations_total")
        self.sanitize_violations_seen = 0
        self._m_timeouts = registry.counter("service_job_timeouts_total")
        self._m_kills = registry.counter("service_watchdog_kills_total")
        self._m_shed = registry.counter("service_pressure_rejections_total")
        self._m_pressure = registry.gauge("service_worker_pressure")
        self._m_table_bytes = registry.gauge("dd_worker_table_bytes")
        self._m_gc_runs = registry.counter("dd_gc_runs_total")
        self._m_gc_nodes = registry.counter("dd_gc_nodes_reclaimed_total")
        self._inline_lock = threading.Lock()
        self.watchdog_kills = 0
        self.last_report: Optional[Dict[str, Any]] = None
        self._reject_until = 0.0
        self._reject_lock = threading.Lock()
        self._closed = False
        self._context = None
        self._rr = 0  # round-robin cursor for keyless jobs
        self._rr_lock = threading.Lock()
        # One pseudo-shard in inline mode keeps the affinity counters and
        # the consistent-hash ring meaningful even without processes.
        self._shards: List[_Shard] = [
            _Shard(index, None) for index in range(max(1, self.workers))
        ]
        self._ring = _build_ring(len(self._shards))
        if not self.workers and (self.budget_nodes or self.budget_bytes):
            # Inline jobs share this process's package: install the budget
            # and rebuild so it actually takes effect.
            _set_budget(self.budget_nodes, self.budget_bytes)
            _reset_package()
        if self.workers:
            # Prefer fork (cheap, instant warm-up); the pool is created
            # before the server starts accepting, so no threads exist yet.
            methods = multiprocessing.get_all_start_methods()
            self._context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            for shard in self._shards:
                shard.worker = self._spawn()
            for shard in self._shards:
                shard.worker.wait_ready()

    # ------------------------------------------------------------------
    # shard routing
    # ------------------------------------------------------------------
    def shard_for(self, shard_key: str) -> int:
        """The shard index a key lands on (consistent hashing)."""
        point = _hash_point(str(shard_key))
        index = bisect.bisect_right(self._ring, (point, len(self._shards)))
        return self._ring[index % len(self._ring)][1]

    @property
    def shard_jobs(self) -> List[Dict[str, int]]:
        """Per-shard job counters, for tests and the benchmarks."""
        return [
            {"shard": shard.index, "jobs_total": shard.jobs_total,
             "keyed_jobs": shard.keyed_jobs}
            for shard in self._shards
        ]

    def _count_shard_job(self, shard: _Shard, keyed: bool) -> None:
        shard.jobs_total += 1
        if keyed:
            shard.keyed_jobs += 1
        self._registry.counter(
            "service_shard_jobs_total",
            {"shard": str(shard.index), "affinity": "keyed" if keyed else "any"},
        ).inc()

    def _acquire_any(self) -> _Shard:
        """Lock a free shard, preferring round-robin order; block if none."""
        with self._rr_lock:
            start = self._rr
            self._rr = (self._rr + 1) % len(self._shards)
        for offset in range(len(self._shards)):
            shard = self._shards[(start + offset) % len(self._shards)]
            if shard.lock.acquire(blocking=False):
                return shard
        shard = self._shards[start]
        shard.lock.acquire()
        return shard

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        return _Worker(self._context, self.budget_nodes, self.budget_bytes)

    def _respawn_shard(self, shard: _Shard, reason: str) -> None:
        """Kill a shard's worker and respawn in place (same shard id)."""
        if shard.worker is not None:
            shard.worker.kill()
        self.watchdog_kills += 1
        self._m_kills.inc()
        self._publish("worker.kill", {
            "reason": reason, "shard": shard.index,
            "kills_total": self.watchdog_kills,
        })
        if self._closed:
            shard.worker = None
            return
        replacement = self._spawn()
        try:
            replacement.wait_ready()
        except ServiceError:  # pragma: no cover - respawn failure
            replacement.kill()
            raise
        shard.worker = replacement

    def _publish(self, kind: str, data: Dict[str, Any]) -> None:
        if self.event_bus is not None:
            self.event_bus.publish(kind, data)

    def _absorb_report(self, report: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's post-job governance report into pool state."""
        if not report:
            return
        from repro.dd.governance import PressureLevel

        self.last_report = report
        pressure = int(report.get("pressure", 0) or 0)
        self._m_pressure.set(pressure)
        self._m_table_bytes.set(report.get("table_bytes", 0))
        self._m_gc_runs.set_value(report.get("gc_runs", 0))
        self._m_gc_nodes.set_value(report.get("gc_nodes_reclaimed", 0))
        if pressure != self._last_published_pressure:
            self._publish("pool.pressure", {
                "level": pressure,
                "previous": self._last_published_pressure,
                "table_bytes": report.get("table_bytes", 0),
                "nodes": report.get("nodes", 0),
            })
            self._last_published_pressure = pressure
        violations = int(report.get("sanitize_violations", 0) or 0)
        if violations > self.sanitize_violations_seen:
            # Sticky by design: detected table corruption is not something
            # a later clean job un-detects.  `/healthz` degrades until the
            # operator restarts (or replaces) the service.
            self.sanitize_violations_seen = violations
            self._m_sanitize.set_value(violations)
            self._publish("pool.sanitize", {
                "violations_total": violations, "sticky": True,
            })
        if pressure >= int(PressureLevel.HARD):
            # The worker is still over budget *after* collecting: its live
            # data alone exceeds the budget.  Shed load briefly so clients
            # back off instead of piling more work onto a saturated table.
            with self._reject_lock:
                self._reject_until = time.monotonic() + self.PRESSURE_COOLDOWN

    def _check_pressure_gate(self) -> None:
        with self._reject_lock:
            remaining = self._reject_until - time.monotonic()
        if remaining > 0:
            self._m_shed.inc()
            self._publish("pool.shed", {"retry_after": max(0.1, round(remaining, 1))})
            raise TablePressureError(
                "worker decision-diagram tables are at their memory budget; "
                "retry shortly",
                retry_after=max(0.1, round(remaining, 1)),
            )

    @property
    def pressure_level(self) -> int:
        """Last reported post-GC worker pressure (0 = OK)."""
        report = self.last_report
        return int(report.get("pressure", 0)) if report else 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        fn: Callable[..., Dict[str, Any]],
        *args,
        shard_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Run ``fn(*args)`` on a worker shard and block for the result.

        With ``shard_key`` the job is routed by consistent hashing, so
        repeated submissions of the same key (e.g. a circuit digest) hit
        the same shard's warm compute/apply tables; without it, any free
        shard takes the job.  Raises :class:`JobTimeoutError` if the
        request deadline elapses (the runaway worker is killed and
        replaced in place) and :class:`TablePressureError` while the pool
        is shedding load.
        """
        if self._closed:
            raise ServiceError("the worker pool is closed")
        self._check_pressure_gate()
        start = perf_counter()
        try:
            if not self.workers:
                with self._inline_lock:
                    self._count_shard_job(self._shards[0], shard_key is not None)
                    try:
                        return fn(*args)
                    finally:
                        self._absorb_report(_governance_report())
            if shard_key is not None:
                shard = self._shards[self.shard_for(shard_key)]
                shard.lock.acquire()
                keyed = True
            else:
                shard = self._acquire_any()
                keyed = False
            try:
                self._count_shard_job(shard, keyed)
                return self._run_on_shard(shard, kind, args)
            finally:
                shard.lock.release()
        finally:
            counter, histogram = self._job_metrics(kind)
            counter.inc()
            histogram.observe(perf_counter() - start)

    def _job_metrics(self, kind: str):
        if kind not in self._m_jobs:
            self._m_jobs[kind] = self._registry.counter(
                "service_jobs_total", {"kind": kind}
            )
            self._m_seconds[kind] = self._registry.histogram(
                "service_job_seconds", DEFAULT_TIME_BUCKETS, {"kind": kind}
            )
        return self._m_jobs[kind], self._m_seconds[kind]

    def _run_on_shard(self, shard: _Shard, kind: str, args: tuple) -> Dict[str, Any]:
        """Run one job on a locked shard, supervising with the watchdog."""
        worker = shard.worker
        try:
            worker.conn.send((kind, args))
        except (BrokenPipeError, OSError):
            self._respawn_shard(shard, "send failed")
            raise ServiceUnavailableError("worker was unavailable; please retry")
        deadline = time.monotonic() + self.request_deadline
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._m_timeouts.inc()
                self._respawn_shard(shard, "deadline overrun")
                raise JobTimeoutError(
                    f"{kind} job exceeded the {self.request_deadline:.0f}s "
                    "request deadline (worker was killed and replaced)"
                )
            try:
                if not worker.conn.poll(min(remaining, 0.2)):
                    continue
                status, payload, report = worker.conn.recv()
            except (EOFError, OSError):
                self._respawn_shard(shard, "worker died")
                raise ServiceUnavailableError(
                    f"worker died while running a {kind} job; it has been "
                    "replaced — please retry"
                )
            break
        self._absorb_report(report)
        if status == "err":
            name, message = payload
            raise _rebuild_error(name, message)
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting jobs and reap the worker shards."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            worker = shard.worker
            if worker is None:
                continue
            # Best-effort polite stop; a shard still mid-job is killed.
            acquired = shard.lock.acquire(timeout=2.0)
            try:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                worker.process.join(timeout=2.0)
                worker.kill()
                shard.worker = None
            finally:
                if acquired:
                    shard.lock.release()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
