"""Process-pool execution of one-shot simulate/verify jobs.

:class:`DDPackage` instances are not thread-safe, and a busy batch endpoint
must not serialize all clients behind one package.  The pool therefore runs
jobs in worker *processes*, each owning exactly one long-lived package that
is reused across jobs (its unique tables hold nodes via weak references, so
finished jobs release their memory; the memoization tables are cleared
between jobs to bound growth).

Job functions are module-level so they pickle, take only plain-data
arguments (QASM text, ints, strings) and return plain dicts — the JSON the
endpoint will serve.

``workers=0`` selects *inline* mode: jobs run in the calling thread behind
a lock.  That keeps unit tests and single-user deployments free of
subprocess machinery while exercising the exact same job functions.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import threading
from time import perf_counter
from typing import Any, Callable, Dict, Optional

from repro.errors import BadRequestError, JobTimeoutError
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = ["WorkerPool", "simulate_job", "verify_job"]

#: The per-process decision-diagram package (one per worker, reused).
_WORKER_PACKAGE = None


def _package():
    global _WORKER_PACKAGE
    if _WORKER_PACKAGE is None:
        from repro.dd.package import DDPackage
        from repro.obs.metrics import MetricsRegistry as _Registry

        # Workers keep their own dark registry: service-level metrics are
        # recorded in the parent, and a disabled registry keeps the
        # simulation hot path free of instrumentation cost.
        _WORKER_PACKAGE = DDPackage(registry=_Registry(enabled=False))
    return _WORKER_PACKAGE


def _init_worker() -> None:  # pragma: no cover - runs in the child process
    _package()


def simulate_job(qasm: str, shots: int = 0, seed: Optional[int] = 0) -> Dict[str, Any]:
    """Parse, simulate to the end, optionally sample; return a JSON dict."""
    from repro.dd import sampling
    from repro.qc.qasm.parser import parse_qasm
    from repro.simulation.simulator import DDSimulator

    circuit = parse_qasm(qasm)
    package = _package()
    try:
        simulator = DDSimulator(circuit, package=package, seed=seed)
        simulator.run_all()
        counts = None
        if shots:
            import numpy as np

            rng = np.random.default_rng(seed)
            counts = sampling.sample_counts(package, simulator.state, shots, rng)
        return {
            "circuit": circuit.name,
            "num_qubits": circuit.num_qubits,
            "operations": len(circuit),
            "nodes": simulator.node_count(),
            "peak_nodes": simulator.peak_node_count,
            "classical_bits": list(simulator.classical_bits),
            "counts": counts,
        }
    finally:
        package.clear_caches()


def verify_job(left_qasm: str, right_qasm: str, strategy: str = "proportional") -> Dict[str, Any]:
    """Equivalence-check two QASM circuits; return a JSON dict."""
    from repro.qc.qasm.parser import parse_qasm
    from repro.verification import (
        ApplicationStrategy,
        check_equivalence_alternating,
        check_equivalence_construct,
    )

    left = parse_qasm(left_qasm, name="G")
    right = parse_qasm(right_qasm, name="G'")
    package = _package()
    try:
        if strategy == "construct":
            result = check_equivalence_construct(left, right, package=package)
        else:
            try:
                parsed = ApplicationStrategy(strategy)
            except ValueError:
                valid = ", ".join(
                    ["construct"] + [s.value for s in ApplicationStrategy]
                )
                raise BadRequestError(
                    f"unknown strategy {strategy!r} (expected one of: {valid})"
                )
            result = check_equivalence_alternating(
                left, right, strategy=parsed, package=package
            )
        return {
            "equivalent": result.equivalent,
            "equivalent_up_to_global_phase": result.equivalent_up_to_global_phase,
            "method": result.method,
            "peak_nodes": result.max_nodes,
        }
    finally:
        package.clear_caches()


class WorkerPool:
    """A fixed pool of worker processes (or an inline fallback)."""

    def __init__(
        self,
        workers: int = 2,
        job_timeout: float = 120.0,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.workers = max(0, int(workers))
        self.job_timeout = job_timeout
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._m_jobs = {
            kind: registry.counter("service_jobs_total", {"kind": kind})
            for kind in ("simulate", "verify")
        }
        self._m_seconds = {
            kind: registry.histogram(
                "service_job_seconds", DEFAULT_TIME_BUCKETS, {"kind": kind}
            )
            for kind in ("simulate", "verify")
        }
        self._m_timeouts = registry.counter("service_job_timeouts_total")
        self._inline_lock = threading.Lock()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        if self.workers:
            # Prefer fork (cheap, instant warm-up); the pool is created
            # before the server starts accepting, so no threads exist yet.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = context.Pool(self.workers, initializer=_init_worker)

    def submit(self, kind: str, fn: Callable[..., Dict[str, Any]], *args) -> Dict[str, Any]:
        """Run ``fn(*args)`` on a worker and block for the result."""
        start = perf_counter()
        try:
            if self._pool is None:
                with self._inline_lock:
                    return fn(*args)
            try:
                return self._pool.apply_async(fn, args).get(self.job_timeout)
            except multiprocessing.TimeoutError:
                self._m_timeouts.inc()
                raise JobTimeoutError(
                    f"{kind} job exceeded the {self.job_timeout:.0f}s limit"
                )
        finally:
            self._m_jobs[kind].inc()
            self._m_seconds[kind].observe(perf_counter() - start)

    def close(self) -> None:
        """Stop accepting jobs and reap the workers."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
