"""The service application: routing, handlers, metrics, error mapping.

This module is deliberately transport-free: :class:`ServiceApp` maps a
plain :class:`Request` value to a :class:`Response` value, so the whole API
is unit-testable without opening a socket.  ``server.py`` adapts it to
``http.server``; a WSGI/ASGI adapter would be a dozen lines.

Routes (all JSON unless noted):

====== =============================== =====================================
POST   ``/sessions``                   open a simulation/verification session
GET    ``/sessions``                   list live sessions
GET    ``/sessions/{id}``              session status (incl. pending dialog)
DELETE ``/sessions/{id}``              close a session
POST   ``/sessions/{id}/step``         navigate (forward/backward/…)
GET    ``/sessions/{id}/svg``          current DD as SVG (image/svg+xml)
GET    ``/sessions/{id}/text``         current DD as terminal art (text/plain)
GET    ``/sessions/{id}/counts``       sampled shot histogram
POST   ``/simulate``                   one-shot batch simulation (cached)
POST   ``/simulate/batch``             array of jobs, NDJSON streamed as done
POST   ``/verify``                     one-shot equivalence check (cached)
GET    ``/sessions/{id}/stream``       live step frames (text/event-stream)
GET    ``/stream/metrics``             metric deltas + state (text/event-stream)
GET    ``/dashboard``                  self-contained live dashboard (HTML)
GET    ``/metrics``                    Prometheus text exposition
GET    ``/report``                     human-readable run report (text/plain)
GET    ``/healthz``                    liveness probe
====== =============================== =====================================

Streaming endpoints return a :class:`StreamingResponse` — a lazily
produced sequence of Server-Sent-Event chunks — instead of a buffered
:class:`Response`; the HTTP adapter writes them with chunked transfer
encoding, and the whole SSE machinery stays unit-testable by iterating
the chunks directly.

Error responses are structured and reuse the :mod:`repro.errors` hierarchy:
``{"error": {"type": "ParseError", "message": "...", "status": 400}}``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import (
    BadRequestError,
    JobTimeoutError,
    NotFoundError,
    RateLimitedError,
    ReproError,
    RequestTooLargeError,
    SanitizerError,
    ServiceError,
    ServiceUnavailableError,
    SessionLimitError,
    SimulationError,
    VerificationError,
)
from repro.obs.events import EventBus, Subscription
from repro.obs.export import registry_snapshot, run_report, snapshot_delta, to_prometheus
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.qc.qasm.parser import parse_qasm
from repro.service.cache import ResultCache
from repro.service.sessions import SessionHandle, SessionStore
from repro.service.workers import WorkerPool, simulate_job, verify_job
from repro.tool.session import SimulationSession, VerificationSession
from repro.vis.style import DDStyle

__all__ = ["Request", "Response", "ServiceApp", "ServiceConfig", "StreamingResponse"]

_JSON = "application/json"
_STATUS_BY_ERROR: Tuple[Tuple[type, int], ...] = (
    (NotFoundError, 404),
    (SessionLimitError, 503),
    (ServiceUnavailableError, 503),  # includes TablePressureError
    (RequestTooLargeError, 413),
    (RateLimitedError, 429),
    (JobTimeoutError, 504),
    (BadRequestError, 400),
    (SimulationError, 409),
    (VerificationError, 409),
    # Detected DD-table corruption: the request cannot be served safely,
    # but the condition is server-side — 503, not a client error.
    (SanitizerError, 503),
    (ServiceError, 400),
    (ReproError, 400),
)


@dataclass
class ServiceConfig:
    """Tunables of one service instance (see ``qdd-tool serve --help``)."""

    host: str = "127.0.0.1"
    port: int = 8137
    #: HTTP transport: the non-blocking ``selectors`` reactor
    #: (``"eventloop"``, default) or one thread per connection
    #: (``"threaded"``, the legacy front end).
    frontend: str = "eventloop"
    #: Handler threads behind the event loop (0 = sized from ``workers``).
    #: Irrelevant for the threaded front end.
    handler_threads: int = 0
    workers: int = 2
    max_sessions: int = 64
    session_ttl: float = 600.0
    cache_capacity: int = 256
    max_body_bytes: int = 1 << 20
    rate_limit: float = 0.0  # requests/second; 0 disables the limiter
    rate_burst: int = 32
    job_timeout: float = 120.0
    drain_timeout: float = 10.0
    #: Per-request wall-clock deadline enforced by the worker watchdog
    #: (overrunning workers are killed and respawned); 0 falls back to
    #: ``job_timeout``.
    request_deadline: float = 0.0
    #: Worker-package memory budget: max unique-table nodes (0 = no limit).
    budget_nodes: int = 0
    #: Worker-package memory budget: max estimated table bytes (0 = no limit).
    budget_bytes: int = 0
    #: Per-subscriber SSE queue depth; a slow consumer beyond it loses the
    #: *oldest* queued events (counted in ``dd_stream_dropped_total``).
    stream_queue: int = 256
    #: Hard cap on concurrently open SSE connections (503 beyond it).
    max_streams: int = 64
    #: Events kept per bus for ``Last-Event-ID`` replay after reconnects.
    stream_history: int = 1024
    #: Seconds of stream silence before a ``: heartbeat`` comment is sent.
    heartbeat_interval: float = 10.0
    #: Seconds between metric-delta emissions on ``/stream/metrics``.
    metrics_interval: float = 2.0
    #: Largest accepted ``/simulate/batch`` job array.
    batch_max_jobs: int = 256


@dataclass
class Request:
    """A transport-independent request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    client: str = ""
    #: Request headers with lower-cased names (``last-event-id`` is the
    #: only one the app reads; transports may omit the rest).
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class Response:
    status: int
    content_type: str
    body: bytes
    #: extra HTTP headers (e.g. ``Retry-After`` on 503), emitted verbatim
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        return cls(
            status,
            _JSON,
            (json.dumps(payload, indent=2) + "\n").encode(),
            headers=headers or {},
        )

    @classmethod
    def text(cls, text: str, status: int = 200, content_type: str = "text/plain") -> "Response":
        return cls(status, f"{content_type}; charset=utf-8", text.encode())


def _sse_chunk(kind: str, data: Any) -> bytes:
    """One anonymous (id-less) SSE event — snapshots, deltas, shutdown.

    Bus events carry their own ids via :meth:`Event.to_sse`; per-connection
    synthetic events must *not*, or a reconnecting client's
    ``Last-Event-ID`` would point at an id the bus never issued.
    """
    return (
        f"event: {kind}\ndata: {json.dumps(data, separators=(',', ':'))}\n\n"
    ).encode()


@dataclass
class StreamingResponse:
    """A response whose body is produced lazily, chunk by chunk.

    The HTTP adapter writes each chunk with chunked transfer encoding and
    calls :meth:`close` when the stream ends (normally or because the
    client vanished); ``close`` is idempotent and safe to call even if the
    chunk iterator was never started.
    """

    status: int
    content_type: str
    chunks: Iterator[bytes]
    headers: Dict[str, str] = field(default_factory=dict)
    on_close: Optional[Callable[[], None]] = None

    def close(self) -> None:
        callback, self.on_close = self.on_close, None
        if callback is not None:
            callback()


class _RateLimiter:
    """A token bucket shared by all clients (coarse overload protection)."""

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = max(1, burst)
        self._tokens = float(self.burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def admit(self) -> bool:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True


class ServiceApp:
    """Routes requests to handlers; owns store, cache, pool and metrics."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry(enabled=True)
        #: App-level bus: session lifecycle, pool pressure/watchdog and
        #: sanitizer transitions — what ``/stream/metrics`` forwards live.
        self.events = EventBus(
            registry=self.registry,
            history=self.config.stream_history,
            max_queue=self.config.stream_queue,
        )
        self.store = SessionStore(
            max_sessions=self.config.max_sessions,
            ttl=self.config.session_ttl,
            registry=self.registry,
            event_bus=self.events,
            stream_history=self.config.stream_history,
        )
        self.cache = ResultCache(
            capacity=self.config.cache_capacity, registry=self.registry
        )
        self.pool = WorkerPool(
            workers=self.config.workers,
            job_timeout=self.config.job_timeout,
            registry=self.registry,
            request_deadline=self.config.request_deadline,
            budget_nodes=self.config.budget_nodes,
            budget_bytes=self.config.budget_bytes,
            event_bus=self.events,
        )
        self._limiter = (
            _RateLimiter(self.config.rate_limit, self.config.rate_burst)
            if self.config.rate_limit > 0
            else None
        )
        self._started = time.time()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._m_inflight = self.registry.gauge("service_inflight_requests")
        self._streams = 0
        self._streams_lock = threading.Lock()
        self._m_streams = self.registry.gauge("service_streams_open")
        self._shutting_down = threading.Event()
        # (endpoint, method, status) counters are created on demand; the
        # latency histograms per endpoint too.  Touch the cache counters so
        # they are visible at /metrics from the first scrape.
        self.cache.get(("__warm__",))

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        start = perf_counter()
        with self._inflight_lock:
            self._inflight += 1
            self._m_inflight.set(self._inflight)
        endpoint = "unmatched"
        try:
            handler, endpoint, session_id = self._route(request.method, request.path)
            # Probes, scrapes and operator views stay reachable under
            # overload — they are how an operator *sees* the overload.
            if self._limiter is not None and endpoint not in (
                "/healthz", "/metrics", "/report"
            ):
                if not self._limiter.admit():
                    raise RateLimitedError("request rate limit exceeded")
            if len(request.body) > self.config.max_body_bytes:
                raise RequestTooLargeError(
                    f"request body of {len(request.body)} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit"
                )
            response = handler(request, session_id)
        except ReproError as error:
            response = self._error_response(error)
        except Exception as error:  # noqa: BLE001 - last-resort 500
            response = Response.json(
                {"error": {"type": type(error).__name__,
                           "message": str(error), "status": 500}},
                status=500,
            )
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                self._m_inflight.set(self._inflight)
        self.registry.counter(
            "service_requests_total",
            {"endpoint": endpoint, "method": request.method,
             "status": str(response.status)},
        ).inc()
        self.registry.histogram(
            "service_request_seconds", DEFAULT_TIME_BUCKETS,
            {"endpoint": endpoint},
        ).observe(perf_counter() - start)
        return response

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    @property
    def active_streams(self) -> int:
        """How many SSE connections are currently open."""
        with self._streams_lock:
            return self._streams

    def begin_shutdown(self) -> None:
        """Wake every open SSE stream so connections can drain.

        Publishes a final ``service.shutdown`` event, then closes the
        app-level bus and every session's frame bus: blocked subscribers
        wake, the stream generators emit their shutdown notice and end,
        and :meth:`active_streams` falls to zero.  Idempotent.
        """
        if self._shutting_down.is_set():
            return
        self._shutting_down.set()
        self.events.publish("service.shutdown", {"reason": "sigterm"})
        self.events.close()
        self.store.close_streams()

    def close(self) -> None:
        self.begin_shutdown()
        self.pool.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(
        self, method: str, path: str
    ) -> Tuple[Callable[[Request, Optional[str]], Response], str, Optional[str]]:
        if method == "HEAD":
            # HEAD answers with GET's headers and no body (the transports
            # suppress the body); load balancers probe /healthz this way.
            try:
                return self._route("GET", path)
            except NotFoundError:
                raise NotFoundError(f"no route for HEAD {path}")
        parts = [part for part in path.split("/") if part]
        flat = {
            ("GET", "healthz"): (self._get_healthz, "/healthz"),
            ("GET", "metrics"): (self._get_metrics, "/metrics"),
            ("GET", "report"): (self._get_report, "/report"),
            ("GET", "dashboard"): (self._get_dashboard, "/dashboard"),
            ("POST", "sessions"): (self._post_sessions, "/sessions"),
            ("GET", "sessions"): (self._get_sessions, "/sessions"),
            ("POST", "simulate"): (self._post_simulate, "/simulate"),
            ("POST", "verify"): (self._post_verify, "/verify"),
        }
        if len(parts) == 1:
            entry = flat.get((method, parts[0]))
            if entry:
                return entry[0], entry[1], None
        if len(parts) == 2 and parts[0] == "stream" and parts[1] == "metrics":
            if method == "GET":
                return self._get_metrics_stream, "/stream/metrics", None
        if len(parts) == 2 and parts[0] == "simulate" and parts[1] == "batch":
            if method == "POST":
                return self._post_simulate_batch, "/simulate/batch", None
        if len(parts) == 2 and parts[0] == "sessions":
            if method == "GET":
                return self._get_session, "/sessions/{id}", parts[1]
            if method == "DELETE":
                return self._delete_session, "/sessions/{id}", parts[1]
        if len(parts) == 3 and parts[0] == "sessions":
            sub = {
                ("POST", "step"): (self._post_step, "/sessions/{id}/step"),
                ("GET", "svg"): (self._get_svg, "/sessions/{id}/svg"),
                ("GET", "text"): (self._get_text, "/sessions/{id}/text"),
                ("GET", "counts"): (self._get_counts, "/sessions/{id}/counts"),
                ("GET", "stream"): (self._get_session_stream, "/sessions/{id}/stream"),
            }
            entry = sub.get((method, parts[2]))
            if entry:
                return entry[0], entry[1], parts[1]
        raise NotFoundError(f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # request parsing helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _json_body(request: Request) -> Dict[str, Any]:
        if not request.body:
            return {}
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequestError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return payload

    @staticmethod
    def _require(payload: Dict[str, Any], key: str) -> str:
        if key not in payload:
            raise BadRequestError(f"missing required field {key!r}")
        value = payload[key]
        if not isinstance(value, str):
            raise BadRequestError(f"field {key!r} must be a string")
        return value

    @staticmethod
    def _int_field(value: Any, name: str, default: int = 0) -> int:
        if value is None:
            return default
        try:
            return int(value)
        except (TypeError, ValueError):
            raise BadRequestError(f"field {name!r} must be an integer")

    def _error_response(self, error: ReproError) -> Response:
        status = 400
        for cls, code in _STATUS_BY_ERROR:
            if isinstance(error, cls):
                status = code
                break
        headers = {}
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            # RFC 7231 allows only integer seconds; round up so a client
            # honouring the header never retries before the window closes.
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        return Response.json(
            {"error": {"type": type(error).__name__,
                       "message": str(error), "status": status}},
            status=status,
            headers=headers,
        )

    # ------------------------------------------------------------------
    # infrastructure endpoints
    # ------------------------------------------------------------------
    def _get_healthz(self, request: Request, _sid: Optional[str]) -> Response:
        report = self.pool.last_report or {}
        pressure = self.pool.pressure_level
        sanitize_violations = self.pool.sanitize_violations_seen
        # Degraded (not down) while workers sit at their memory budget or a
        # sanitizer run detected table corruption: the process still serves,
        # it just sheds batch load / warns the operator.
        healthy = pressure < 2 and sanitize_violations == 0
        # Load balancers act on the status code, not the body: a degraded
        # instance answers 503 so traffic drains away from it.
        return Response.json(status=200 if healthy else 503, payload={
            "status": "ok" if healthy else "degraded",
            "uptime_seconds": round(time.time() - self._started, 3),
            "sessions": len(self.store),
            "workers": self.pool.workers,
            "governance": {
                "pressure": pressure,
                "table_bytes": report.get("table_bytes", 0),
                "nodes": report.get("nodes", 0),
                "gc_runs": report.get("gc_runs", 0),
                "gc_nodes_reclaimed": report.get("gc_nodes_reclaimed", 0),
                "watchdog_kills": self.pool.watchdog_kills,
                "sanitize_violations": sanitize_violations,
            },
        })

    def _get_metrics(self, request: Request, _sid: Optional[str]) -> Response:
        return Response.text(to_prometheus(self.registry))

    def _get_report(self, request: Request, _sid: Optional[str]) -> Response:
        return Response.text(run_report(self.registry, title="qdd-service"))

    # ------------------------------------------------------------------
    # streaming endpoints (SSE)
    # ------------------------------------------------------------------
    @staticmethod
    def _last_event_id(request: Request) -> Optional[int]:
        raw = request.headers.get("last-event-id")
        if raw is None:
            # EventSource cannot set headers on the *first* connect, so a
            # query parameter doubles as the resume cursor for tests and
            # curl-style clients.
            raw = request.query.get("last_event_id")
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise BadRequestError("Last-Event-ID must be an integer")

    def _count_stream(
        self, endpoint: str, cleanup: Optional[Callable[[], None]] = None
    ) -> Callable[[], None]:
        """Count a streaming response in (503 at the cap); return a releaser.

        ``cleanup`` runs on rejection *and* on release — it is how SSE
        subscriptions get closed.  NDJSON batch streams count against the
        same ``max_streams`` cap as SSE: every open stream is a long-lived
        connection the drain path has to wait for.
        """
        if self._shutting_down.is_set():
            if cleanup is not None:
                cleanup()
            raise ServiceUnavailableError("the service is shutting down")
        with self._streams_lock:
            if self._streams >= self.config.max_streams:
                if cleanup is not None:
                    cleanup()
                raise ServiceUnavailableError(
                    f"too many open streams (limit {self.config.max_streams}); "
                    "retry later",
                    retry_after=1.0,
                )
            self._streams += 1
            self._m_streams.set(self._streams)
        self.registry.counter(
            "service_stream_connections_total", {"endpoint": endpoint}
        ).inc()
        released = threading.Event()

        def release() -> None:
            if released.is_set():
                return
            released.set()
            if cleanup is not None:
                cleanup()
            with self._streams_lock:
                self._streams -= 1
                self._m_streams.set(self._streams)

        return release

    def _open_stream(self, endpoint: str, subscription: Subscription) -> Callable[[], None]:
        """Count an SSE stream in, closing its subscription on release."""
        return self._count_stream(endpoint, cleanup=subscription.close)

    @staticmethod
    def _sse_headers() -> Dict[str, str]:
        return {"Cache-Control": "no-cache", "X-Accel-Buffering": "no"}

    def _get_session_stream(self, request: Request, session_id: str) -> StreamingResponse:
        handle = self.store.get(session_id)
        last_id = self._last_event_id(request)
        # A fresh subscriber replays the full frame history (id 0 = "from
        # the beginning"); a reconnecting one resumes after its cursor.
        subscription = handle.events.subscribe(
            last_event_id=0 if last_id is None else last_id,
            max_queue=self.config.stream_queue,
        )
        release = self._open_stream("/sessions/{id}/stream", subscription)
        return StreamingResponse(
            200, "text/event-stream",
            self._session_stream_chunks(subscription, release),
            headers=self._sse_headers(), on_close=release,
        )

    def _session_stream_chunks(
        self, subscription: Subscription, release: Callable[[], None]
    ) -> Iterator[bytes]:
        heartbeat = max(0.05, self.config.heartbeat_interval)
        try:
            yield b"retry: 2000\n\n"
            while True:
                event = subscription.get(timeout=heartbeat)
                if event is None:
                    if subscription.closed:
                        break
                    yield b": heartbeat\n\n"
                    continue
                yield event.to_sse().encode()
                if event.kind == "closed":
                    break
        finally:
            release()

    def _get_metrics_stream(self, request: Request, _sid: Optional[str]) -> StreamingResponse:
        # Deltas are relative to the snapshot sent on *this* connection, so
        # a reconnect starts from a fresh full snapshot; Last-Event-ID only
        # resumes the forwarded state events (lifecycle/pressure/sanitize).
        subscription = self.events.subscribe(
            last_event_id=self._last_event_id(request),
            max_queue=self.config.stream_queue,
        )
        release = self._open_stream("/stream/metrics", subscription)
        return StreamingResponse(
            200, "text/event-stream",
            self._metrics_stream_chunks(subscription, release),
            headers=self._sse_headers(), on_close=release,
        )

    def _metrics_stream_chunks(
        self, subscription: Subscription, release: Callable[[], None]
    ) -> Iterator[bytes]:
        interval = max(0.05, self.config.metrics_interval)
        heartbeat = max(interval, self.config.heartbeat_interval)
        try:
            yield b"retry: 2000\n\n"
            reference = registry_snapshot(self.registry)
            yield _sse_chunk("snapshot", reference)
            last_delta = last_write = time.monotonic()
            while True:
                event = subscription.get(timeout=interval)
                now = time.monotonic()
                if event is not None:
                    yield event.to_sse().encode()
                    last_write = now
                elif subscription.closed:
                    yield _sse_chunk("shutdown", {"reason": "server stopping"})
                    break
                if now - last_delta >= interval:
                    current = registry_snapshot(self.registry)
                    delta = snapshot_delta(reference, current)
                    if delta["metrics"]:
                        yield _sse_chunk("delta", delta)
                        reference = current
                        last_write = now
                    last_delta = now
                if now - last_write >= heartbeat:
                    yield b": heartbeat\n\n"
                    last_write = now
        finally:
            release()

    def _get_dashboard(self, request: Request, _sid: Optional[str]) -> Response:
        from repro.vis.dashboard import dashboard_html

        return Response.text(
            dashboard_html(title="qdd-service dashboard"),
            content_type="text/html",
        )

    def _publish_frames(self, handle: SessionHandle) -> None:
        """Publish any session frames not yet on the handle's bus.

        Called with ``handle.lock`` held.  Backward navigation pops
        frames; the stream is append-only, so a shrunk list just rewinds
        the cursor and re-publishes once the session moves forward again.
        """
        frames = getattr(handle.session, "frames", None)
        if frames is None:
            return
        if len(frames) < handle.frames_streamed:
            handle.frames_streamed = len(frames)
        for index in range(handle.frames_streamed, len(frames)):
            frame = frames[index]
            handle.events.publish("frame", {
                "session_id": handle.session_id,
                "index": index,
                "title": frame.title,
                "description": frame.description,
                "svg": frame.svg,
                "text": frame.text,
                "node_count": frame.node_count,
                "position": frame.position,
            })
        handle.frames_streamed = len(frames)

    # ------------------------------------------------------------------
    # session endpoints
    # ------------------------------------------------------------------
    def _post_sessions(self, request: Request, _sid: Optional[str]) -> Response:
        payload = self._json_body(request)
        kind = payload.get("kind", "simulation")
        style_name = payload.get("style", "classic")
        styles = {"classic": DDStyle.classic, "colored": DDStyle.colored,
                  "modern": DDStyle.modern}
        if style_name not in styles:
            raise BadRequestError(
                f"unknown style {style_name!r} (expected one of: "
                f"{', '.join(sorted(styles))})"
            )
        style = styles[style_name]()
        if kind == "simulation":
            qasm = self._require(payload, "qasm")
            seed = self._int_field(payload.get("seed"), "seed", 0)
            circuit = parse_qasm(qasm)  # parse errors become 400 here

            def factory() -> SimulationSession:
                return SimulationSession(circuit, style=style, seed=seed)

        elif kind == "verification":
            left = parse_qasm(self._require(payload, "left"), name="G")
            right = parse_qasm(self._require(payload, "right"), name="G'")

            def factory() -> VerificationSession:
                return VerificationSession(left, right, style=style)

        else:
            raise BadRequestError(
                f"unknown session kind {kind!r} "
                "(expected 'simulation' or 'verification')"
            )
        handle = self.store.create(kind, factory)
        with handle.lock:
            self._publish_frames(handle)  # frame 0: the initial state
            return Response.json(self._status_payload(handle), status=201)

    def _get_sessions(self, request: Request, _sid: Optional[str]) -> Response:
        entries = [
            {
                "session_id": handle.session_id,
                "kind": handle.kind,
                "idle_seconds": round(handle.idle_seconds(), 3),
            }
            for handle in self.store.list()
        ]
        return Response.json({"sessions": entries, "count": len(entries)})

    def _get_session(self, request: Request, session_id: str) -> Response:
        handle = self.store.get(session_id)
        with handle.lock:
            return Response.json(self._status_payload(handle))

    def _delete_session(self, request: Request, session_id: str) -> Response:
        self.store.remove(session_id)
        return Response.json({"deleted": session_id})

    def _post_step(self, request: Request, session_id: str) -> Response:
        handle = self.store.get(session_id)
        payload = self._json_body(request)
        action = self._require(payload, "action")
        count = self._int_field(payload.get("count"), "count", 1)
        if count < 1:
            raise BadRequestError("field 'count' must be >= 1")
        outcome = payload.get("outcome")
        if outcome is not None:
            outcome = self._int_field(outcome, "outcome")
            if outcome not in (0, 1):
                raise BadRequestError("field 'outcome' must be 0 or 1")
        with handle.lock:
            if handle.kind == "simulation":
                self._step_simulation(handle.session, action, count, outcome)
            else:
                self._step_verification(handle.session, action, count)
            handle.touch()
            self._publish_frames(handle)
            return Response.json(self._status_payload(handle))

    @staticmethod
    def _step_simulation(
        session: SimulationSession, action: str, count: int, outcome: Optional[int]
    ) -> None:
        # Multi-step navigation is atomic: bounds are validated before any
        # step executes, so an out-of-range request leaves `position`
        # exactly where it was (a half-applied batch after a mid-loop
        # error would desynchronize the client's view of the session).
        simulator = session.simulator
        if action == "forward":
            remaining = len(session.circuit) - simulator.position
            if count > remaining:
                raise SimulationError(
                    f"cannot step forward {count} operation(s): only "
                    f"{remaining} remain (position {simulator.position} of "
                    f"{len(session.circuit)})"
                )
            for index in range(count):
                # An explicit outcome answers only the dialog pending *now*;
                # later steps in the same batch fall back to the session's
                # seeded RNG.  Replaying one forced outcome onto every
                # measurement/reset in the batch would silently bias them.
                session.forward(outcome=outcome if index == 0 else None)
        elif action == "backward":
            if count > simulator.position:
                raise SimulationError(
                    f"cannot step backward {count} operation(s) from "
                    f"position {simulator.position}"
                )
            for _ in range(count):
                session.backward()
        elif action == "to_end":
            session.to_end(stop_at_breakpoints=False)
        elif action == "run":  # fast-forward to the next breakpoint
            session.to_end(stop_at_breakpoints=True)
        elif action == "to_start":
            session.to_start()
        else:
            raise BadRequestError(
                f"unknown simulation action {action!r} (expected forward, "
                "backward, to_end, run or to_start)"
            )

    @staticmethod
    def _step_verification(
        session: VerificationSession, action: str, count: int
    ) -> None:
        # Same atomicity contract as _step_simulation: validate first.
        if action == "left":
            if count > session.left_remaining:
                raise SimulationError(
                    f"cannot apply {count} gate(s) from G: only "
                    f"{session.left_remaining} remain"
                )
            session.apply_left(count)
        elif action == "right":
            if count > session.right_remaining:
                raise SimulationError(
                    f"cannot apply {count} gate(s) from G': only "
                    f"{session.right_remaining} remain"
                )
            session.apply_right(count)
        elif action == "right_to_barrier":
            session.apply_right_to_barrier()
        elif action == "compilation_flow":
            session.run_compilation_flow()
        else:
            raise BadRequestError(
                f"unknown verification action {action!r} (expected left, "
                "right, right_to_barrier or compilation_flow)"
            )

    def _get_svg(self, request: Request, session_id: str) -> Response:
        handle = self.store.get(session_id)
        with handle.lock:
            return Response.text(
                handle.session.current_svg(), content_type="image/svg+xml"
            )

    def _get_text(self, request: Request, session_id: str) -> Response:
        handle = self.store.get(session_id)
        with handle.lock:
            return Response.text(handle.session.current_text())

    def _get_counts(self, request: Request, session_id: str) -> Response:
        handle = self.store.get(session_id)
        if handle.kind != "simulation":
            raise BadRequestError("only simulation sessions can be sampled")
        shots = self._int_field(request.query.get("shots"), "shots", 256)
        if shots < 1:
            raise BadRequestError("query parameter 'shots' must be >= 1")
        seed = request.query.get("seed")
        seed = self._int_field(seed, "seed") if seed is not None else None
        with handle.lock:
            counts = handle.session.sample_counts(shots, seed=seed)
            handle.touch()
            handle.events.publish("counts", {
                "session_id": handle.session_id,
                "shots": shots,
                "counts": counts,
            })
        return Response.json({"shots": shots, "counts": counts})

    # ------------------------------------------------------------------
    # one-shot batch endpoints (worker pool + result cache)
    # ------------------------------------------------------------------
    def _simulate_once(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and run one simulate job (cache → shard), as a dict."""
        qasm = self._require(payload, "qasm")
        shots = self._int_field(payload.get("shots"), "shots", 0)
        if shots < 0:
            raise BadRequestError("field 'shots' must be >= 0")
        # A deterministic default seed makes repeated identical requests
        # cache-safe even for circuits with mid-circuit measurements.
        seed = self._int_field(payload.get("seed"), "seed", 0)
        # Backend option: route through the legacy matrix-DD path instead
        # of the direct apply kernels (the differential-testing oracle).
        matrix_path = payload.get("matrix_path", False)
        if not isinstance(matrix_path, bool):
            raise BadRequestError("field 'matrix_path' must be a boolean")
        digest = parse_qasm(qasm).digest()
        # The cache key must fold every request parameter that changes the
        # response — shots, seed and backend options — not just the circuit
        # digest, or differing requests would collide on one cached result.
        key = ("simulate", digest, shots, seed, matrix_path)
        hit, cached = self.cache.get(key)
        if hit:
            return dict(cached, cached=True)
        # The digest is the shard key: every job for this circuit lands on
        # the same worker shard, whose compute/apply tables stay warm.
        result = self.pool.submit(
            "simulate", simulate_job, qasm, shots, seed, matrix_path,
            shard_key=digest,
        )
        result["digest"] = digest
        self.cache.put(key, result)
        return dict(result, cached=False)

    def _post_simulate(self, request: Request, _sid: Optional[str]) -> Response:
        return Response.json(self._simulate_once(self._json_body(request)))

    def _post_simulate_batch(
        self, request: Request, _sid: Optional[str]
    ) -> StreamingResponse:
        """Accept an array of simulate jobs; stream NDJSON as shards finish.

        Each line is ``{"index": i, "ok": true, ...result}`` or
        ``{"index": i, "ok": false, "error": {...}}`` — completion order,
        with ``index`` tying a line back to its job.  Per-job semantics
        match ``/simulate`` exactly: result cache, shard routing by
        circuit digest, rate limiting, pressure shedding and watchdog
        deadlines (shed/timed-out jobs become per-job errors, not a
        failed batch).
        """
        payload = self._json_body(request)
        jobs = payload.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise BadRequestError(
                "field 'jobs' must be a non-empty array of job objects"
            )
        if len(jobs) > self.config.batch_max_jobs:
            raise RequestTooLargeError(
                f"batch of {len(jobs)} jobs exceeds the "
                f"{self.config.batch_max_jobs}-job limit"
            )
        for job in jobs:
            if not isinstance(job, dict):
                raise BadRequestError("every batch job must be a JSON object")
        release = self._count_stream("/simulate/batch")
        return StreamingResponse(
            200, "application/x-ndjson",
            self._batch_chunks(list(jobs), release),
            headers={"Cache-Control": "no-cache"},
            on_close=release,
        )

    def _run_batch_job(self, index: int, job: Dict[str, Any]) -> Dict[str, Any]:
        try:
            # Batch jobs pass the same token bucket as individual requests
            # (the batch POST itself consumed one token for its envelope).
            if self._limiter is not None and not self._limiter.admit():
                raise RateLimitedError("request rate limit exceeded")
            return {"index": index, "ok": True, **self._simulate_once(job)}
        except ReproError as error:
            body = json.loads(self._error_response(error).body)
            return {"index": index, "ok": False, **body}
        except Exception as error:  # noqa: BLE001 - per-job last resort
            return {"index": index, "ok": False, "error": {
                "type": type(error).__name__, "message": str(error),
                "status": 500,
            }}

    def _batch_chunks(
        self, jobs: list, release: Callable[[], None]
    ) -> Iterator[bytes]:
        results: "queue.SimpleQueue" = queue.SimpleQueue()
        pending: "queue.SimpleQueue" = queue.SimpleQueue()
        for item in enumerate(jobs):
            pending.put(item)

        def runner() -> None:
            while True:
                try:
                    index, job = pending.get_nowait()
                except queue.Empty:
                    return
                results.put(self._run_batch_job(index, job))

        # One runner per shard keeps every shard busy without queueing more
        # blocked threads than the pool can serve concurrently.
        fanout = min(len(jobs), max(1, self.pool.workers))
        try:
            threads = [
                threading.Thread(
                    target=runner, name=f"qdd-batch-{i}", daemon=True
                )
                for i in range(fanout)
            ]
            for thread in threads:
                thread.start()
            for _ in range(len(jobs)):
                line = results.get()
                yield (json.dumps(line, separators=(",", ":")) + "\n").encode()
        finally:
            release()

    def _post_verify(self, request: Request, _sid: Optional[str]) -> Response:
        payload = self._json_body(request)
        left = self._require(payload, "left")
        right = self._require(payload, "right")
        strategy = payload.get("strategy", "proportional")
        if not isinstance(strategy, str):
            raise BadRequestError("field 'strategy' must be a string")
        left_digest = parse_qasm(left).digest()
        right_digest = parse_qasm(right).digest()
        key = ("verify", left_digest, right_digest, strategy)
        hit, cached = self.cache.get(key)
        if hit:
            return Response.json(dict(cached, cached=True))
        result = self.pool.submit(
            "verify", verify_job, left, right, strategy,
            shard_key=f"{left_digest}:{right_digest}",
        )
        self.cache.put(key, result)
        return Response.json(dict(result, cached=False))

    # ------------------------------------------------------------------
    # status rendering
    # ------------------------------------------------------------------
    def _status_payload(self, handle: SessionHandle) -> Dict[str, Any]:
        if handle.kind == "simulation":
            session: SimulationSession = handle.session
            simulator = session.simulator
            dialog = session.pending_dialog()
            return {
                "session_id": handle.session_id,
                "kind": "simulation",
                "circuit": session.circuit.name,
                "num_qubits": session.circuit.num_qubits,
                "position": simulator.position,
                "total": len(session.circuit),
                "at_start": simulator.at_start,
                "at_end": simulator.at_end,
                "node_count": simulator.node_count(),
                "peak_node_count": simulator.peak_node_count,
                "classical_bits": list(simulator.classical_bits),
                "pending_dialog": None if dialog is None else {
                    "kind": dialog[0], "qubit": dialog[1],
                    "p0": dialog[2], "p1": dialog[3],
                },
            }
        session: VerificationSession = handle.session
        return {
            "session_id": handle.session_id,
            "kind": "verification",
            "left": session.left.name,
            "right": session.right.name,
            "num_qubits": session.left.num_qubits,
            "left_applied": session.left_position,
            "left_total": session.left_total,
            "right_applied": session.right_position,
            "right_total": session.right_total,
            "finished": session.finished,
            "node_count": session.node_count,
            "peak_node_count": session.peak_node_count,
            "is_identity": session.is_identity(),
        }
