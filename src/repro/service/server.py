"""HTTP front ends for :class:`~repro.service.app.ServiceApp`.

Two interchangeable transports sit in front of the transport-free app:

* ``"eventloop"`` (default) — the non-blocking ``selectors``-based
  reactor in :mod:`repro.service.eventloop`: one thread multiplexes every
  connection, handlers run on a bounded pool, and streaming bodies are
  written with backpressure.  This is the shape that holds thousands of
  concurrent clients.
* ``"threaded"`` — the original ``http.server.ThreadingHTTPServer``
  adapter (one thread per connection), kept as the conservative fallback
  and as the baseline the benchmarks compare against.

Both speak identical HTTP: same structured JSON errors (including 400s
for malformed ``Content-Length`` headers and duplicated query
parameters), ``HEAD`` support for load-balancer probes, keep-alive, and
chunked streaming responses.

Shutdown is graceful: ``SIGTERM``/``SIGINT`` stop the accept loop, wait
for in-flight requests and open streams to drain (bounded by
``config.drain_timeout``) and then reap the worker pool.
:class:`DDToolServer` is also directly embeddable — ``start()``/``stop()``
is what the tests and the benchmarks use.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.service.app import Request, ServiceApp, ServiceConfig, StreamingResponse
from repro.service.eventloop import (
    ProtocolError,
    SelectorFrontEnd,
    display_host,
    error_body,
    parse_content_length,
    parse_query_strict,
)

__all__ = ["DDToolServer", "serve"]


class _Handler(BaseHTTPRequestHandler):
    server_version = "qdd-service/1.0"
    protocol_version = "HTTP/1.1"
    # Responses are written as (headers, body) — two small segments.  With
    # Nagle on, the second one sits out a delayed ACK (~40ms) on loopback,
    # capping cached-request latency; TCP_NODELAY removes that stall.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # request funnel
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        app: ServiceApp = self.server.app  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        try:
            length = parse_content_length(self.headers.get("Content-Length"))
        except ProtocolError as error:
            # The body (if any) was never framed, so the connection cannot
            # be reused — answer structurally and close.
            self._respond(
                error.status, "application/json",
                error_body(error.error_type, error.message, error.status),
                close=True,
            )
            return
        if length > app.config.max_body_bytes:
            # Refuse to buffer an oversized body; close the connection so
            # the unread remainder cannot poison the next request.
            self._respond(
                413, "application/json",
                error_body(
                    "RequestTooLargeError",
                    f"request body of {length} bytes exceeds the "
                    f"{app.config.max_body_bytes}-byte limit",
                    413,
                ),
                close=True,
            )
            return
        body = self.rfile.read(length) if length else b""
        try:
            query = parse_query_strict(split.query)
        except ProtocolError as error:
            # The body was fully read, so keep-alive is safe here.
            self._respond(
                error.status, "application/json",
                error_body(error.error_type, error.message, error.status),
            )
            return
        request = Request(
            method=method,
            path=split.path,
            query=query,
            body=body,
            client=self.client_address[0] if self.client_address else "",
            headers={name.lower(): value for name, value in self.headers.items()},
        )
        response = app.handle(request)
        head_only = method == "HEAD"
        if isinstance(response, StreamingResponse):
            if head_only:
                response.close()
                self._respond(
                    response.status, response.content_type, b"",
                    close=True, headers=response.headers,
                )
                return
            self._respond_stream(response)
            return
        self._respond(
            response.status,
            response.content_type,
            response.body,
            headers=response.headers,
            head_only=head_only,
        )

    def _respond(
        self,
        status: int,
        content_type: str,
        body: bytes,
        close: bool = False,
        headers: Optional[dict] = None,
        head_only: bool = False,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        # HEAD advertises the entity length it *would* send for GET.
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        if not head_only:
            self.wfile.write(body)

    def _respond_stream(self, response: StreamingResponse) -> None:
        """Write a :class:`StreamingResponse` with chunked transfer encoding.

        SSE connections are long-lived and end when the app closes the
        stream or the client disconnects (detected on write); either way
        the connection is closed rather than reused — resuming mid-stream
        on a kept-alive socket has no meaning for ``text/event-stream``.
        """
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        try:
            for chunk in response.chunks:
                if not chunk:
                    continue
                self.wfile.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; the finally below releases the slot
        finally:
            response.close()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def do_HEAD(self) -> None:  # noqa: N802
        # Load balancers probe with HEAD; answering 501 HTML (the
        # http.server default) makes every probe fail.
        self._dispatch("HEAD")

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            sys.stderr.write(
                f"[{self.log_date_time_string()}] {self.address_string()} "
                f"{fmt % args}\n"
            )


class _ThreadedFrontEnd:
    """The legacy one-thread-per-connection transport."""

    def __init__(self, app: ServiceApp, host: str, port: int, verbose: bool):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        # Handler threads are daemons: graceful drain is handled explicitly
        # in DDToolServer.stop(), so an idle keep-alive connection cannot
        # block exit.
        self._httpd.daemon_threads = True
        self._httpd.app = app  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self.server_address: Tuple[str, int] = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.serve_forever, name="qdd-service", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop the accept loop; per-connection threads keep draining."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        self._httpd.server_close()


class DDToolServer:
    """An embeddable service instance bound to one host/port.

    ``config.frontend`` selects the transport: the non-blocking
    ``"eventloop"`` reactor (default) or the legacy ``"threaded"``
    one-thread-per-connection server.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        verbose: bool = False,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.app = ServiceApp(self.config, registry=registry)
        if self.config.frontend == "threaded":
            self._frontend = _ThreadedFrontEnd(
                self.app, self.config.host, self.config.port, verbose
            )
        elif self.config.frontend == "eventloop":
            self._frontend = SelectorFrontEnd(
                self.app,
                self.config.host,
                self.config.port,
                handler_threads=self.config.handler_threads,
                verbose=verbose,
            )
        else:
            raise ValueError(
                f"unknown frontend {self.config.frontend!r} "
                "(expected 'eventloop' or 'threaded')"
            )

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)`` (port 0 resolves here)."""
        return self._frontend.server_address[:2]

    @property
    def url(self) -> str:
        """A URL clients can actually dial (wildcard hosts → loopback)."""
        host, port = self.address
        return f"http://{display_host(host)}:{port}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` (or shutdown) is called."""
        self._frontend.serve_forever()

    def start(self) -> "DDToolServer":
        """Serve on background threads (for embedding and tests)."""
        self._frontend.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for in-flight requests to finish; True if fully drained."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        while self.app.inflight and time.monotonic() < deadline:
            time.sleep(0.01)
        return self.app.inflight == 0

    def drain_streams(self, timeout: Optional[float] = None) -> bool:
        """Wake open SSE streams and wait for them to close cleanly.

        Call after the accept loop stopped: :meth:`ServiceApp.begin_shutdown`
        unblocks every subscriber, the stream generators send their final
        event, and the connections wind down.  True if none remain.
        """
        self.app.begin_shutdown()
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        while self.app.active_streams and time.monotonic() < deadline:
            time.sleep(0.01)
        return self.app.active_streams == 0

    def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, reap the pool."""
        self._frontend.shutdown()
        if drain:
            self.drain_streams()
            self.drain()
        self._frontend.close()
        self.app.close()

    def __enter__(self) -> "DDToolServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    config: Optional[ServiceConfig] = None,
    verbose: bool = True,
    install_signal_handlers: bool = True,
) -> int:
    """Run a server in the foreground until SIGTERM/SIGINT (CLI entry)."""
    server = DDToolServer(config, verbose=verbose)
    stop_requested = threading.Event()

    def _request_stop(signum, _frame):  # pragma: no cover - signal path
        if stop_requested.is_set():
            return
        stop_requested.set()
        print(f"\nreceived signal {signum}: draining...", file=sys.stderr)

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    host, port = server.address
    print(
        f"qdd-service listening on {server.url} "
        f"({server.config.frontend} front end, "
        f"{server.config.workers} worker shard(s), "
        f"{server.config.max_sessions} session slots); "
        "endpoints: /sessions /simulate /simulate/batch /verify /metrics "
        "/healthz /dashboard",
        file=sys.stderr,
    )
    server.start()
    try:
        while not stop_requested.is_set():
            stop_requested.wait(timeout=0.2)
    except KeyboardInterrupt:  # pragma: no cover - no handler installed
        pass
    server._frontend.shutdown()
    drained = server.drain_streams() and server.drain()
    server._frontend.close()
    server.app.close()
    print(
        "qdd-service stopped"
        + ("" if drained else " (drain timeout; some requests were cut off)"),
        file=sys.stderr,
    )
    return 0
