"""stdlib HTTP front end for :class:`~repro.service.app.ServiceApp`.

``http.server.ThreadingHTTPServer`` gives us one thread per connection;
per-session locks (not a global lock) serialize access to the non-thread-
safe decision-diagram packages, and the one-shot batch endpoints fan out to
the worker processes, so independent clients genuinely run in parallel.

Shutdown is graceful: ``SIGTERM``/``SIGINT`` stop the accept loop, wait for
in-flight requests to drain (bounded by ``config.drain_timeout``) and then
reap the worker pool.  :class:`DDToolServer` is also directly embeddable —
``start()``/``stop()`` is what the tests and the benchmark use.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.service.app import Request, ServiceApp, ServiceConfig, StreamingResponse

__all__ = ["DDToolServer", "serve"]


class _Handler(BaseHTTPRequestHandler):
    server_version = "qdd-service/1.0"
    protocol_version = "HTTP/1.1"
    # Responses are written as (headers, body) — two small segments.  With
    # Nagle on, the second one sits out a delayed ACK (~40ms) on loopback,
    # capping cached-request latency; TCP_NODELAY removes that stall.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # request funnel
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        app: ServiceApp = self.server.app  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        if length > app.config.max_body_bytes:
            # Refuse to buffer an oversized body; close the connection so
            # the unread remainder cannot poison the next request.
            payload = json.dumps({"error": {
                "type": "RequestTooLargeError",
                "message": f"request body of {length} bytes exceeds the "
                           f"{app.config.max_body_bytes}-byte limit",
                "status": 413,
            }}).encode()
            self._respond(413, "application/json", payload, close=True)
            return
        body = self.rfile.read(length) if length else b""
        request = Request(
            method=method,
            path=split.path,
            query=dict(parse_qsl(split.query)),
            body=body,
            client=self.client_address[0] if self.client_address else "",
            headers={name.lower(): value for name, value in self.headers.items()},
        )
        response = app.handle(request)
        if isinstance(response, StreamingResponse):
            self._respond_stream(response)
            return
        self._respond(
            response.status,
            response.content_type,
            response.body,
            headers=response.headers,
        )

    def _respond(
        self,
        status: int,
        content_type: str,
        body: bytes,
        close: bool = False,
        headers: Optional[dict] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _respond_stream(self, response: StreamingResponse) -> None:
        """Write a :class:`StreamingResponse` with chunked transfer encoding.

        SSE connections are long-lived and end when the app closes the
        stream or the client disconnects (detected on write); either way
        the connection is closed rather than reused — resuming mid-stream
        on a kept-alive socket has no meaning for ``text/event-stream``.
        """
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        try:
            for chunk in response.chunks:
                if not chunk:
                    continue
                self.wfile.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; the finally below releases the slot
        finally:
            response.close()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            sys.stderr.write(
                f"[{self.log_date_time_string()}] {self.address_string()} "
                f"{fmt % args}\n"
            )


class DDToolServer:
    """An embeddable service instance bound to one host/port."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        verbose: bool = False,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.app = ServiceApp(self.config, registry=registry)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        # Handler threads are daemons: graceful drain is handled explicitly
        # in stop(), so an idle keep-alive connection cannot block exit.
        self._httpd.daemon_threads = True
        self._httpd.app = self.app  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)`` (port 0 resolves here)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` (or shutdown) is called."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "DDToolServer":
        """Serve on a background thread (for embedding and tests)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="qdd-service", daemon=True
        )
        self._thread.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for in-flight requests to finish; True if fully drained."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        while self.app.inflight and time.monotonic() < deadline:
            time.sleep(0.01)
        return self.app.inflight == 0

    def drain_streams(self, timeout: Optional[float] = None) -> bool:
        """Wake open SSE streams and wait for them to close cleanly.

        Call after the accept loop stopped: :meth:`ServiceApp.begin_shutdown`
        unblocks every subscriber, the stream generators send their final
        event, and the connections wind down.  True if none remain.
        """
        self.app.begin_shutdown()
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        while self.app.active_streams and time.monotonic() < deadline:
            time.sleep(0.01)
        return self.app.active_streams == 0

    def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, reap the pool."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if drain:
            self.drain_streams()
            self.drain()
        self._httpd.server_close()
        self.app.close()

    def __enter__(self) -> "DDToolServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    config: Optional[ServiceConfig] = None,
    verbose: bool = True,
    install_signal_handlers: bool = True,
) -> int:
    """Run a server in the foreground until SIGTERM/SIGINT (CLI entry)."""
    server = DDToolServer(config, verbose=verbose)
    stop_requested = threading.Event()

    def _request_stop(signum, _frame):  # pragma: no cover - signal path
        if stop_requested.is_set():
            return
        stop_requested.set()
        print(f"\nreceived signal {signum}: draining...", file=sys.stderr)
        # shutdown() must not run on the thread inside serve_forever().
        threading.Thread(target=server._httpd.shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    host, port = server.address
    print(
        f"qdd-service listening on http://{host}:{port} "
        f"({server.config.workers} worker(s), "
        f"{server.config.max_sessions} session slots); "
        "endpoints: /sessions /simulate /verify /metrics /healthz /dashboard",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - no handler installed
        pass
    drained = server.drain_streams() and server.drain()
    server._httpd.server_close()
    server.app.close()
    print(
        "qdd-service stopped"
        + ("" if drained else " (drain timeout; some requests were cut off)"),
        file=sys.stderr,
    )
    return 0
