"""LRU result cache for the service layer.

One-shot ``/simulate`` and ``/verify`` requests are pure functions of the
uploaded circuit(s) and the request parameters, so their responses are
memoizable.  The cache key is built from the canonical circuit digest
(:func:`repro.qc.hashing.circuit_digest`) plus the parameters, which makes
it robust against textual variation: the same circuit uploaded with a
different name, different whitespace or through a QASM roundtrip hits the
same entry.

Thread-safe; eviction is least-recently-used.  Hit/miss/eviction counters
and an entry gauge are registered on the service's
:class:`~repro.obs.metrics.MetricsRegistry` so the effectiveness of the
cache is visible at ``/metrics``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["ResultCache"]

_MISSING = object()


class ResultCache:
    """A bounded, thread-safe LRU map from request keys to responses."""

    def __init__(
        self,
        capacity: int = 256,
        registry: Optional[MetricsRegistry] = None,
        name: str = "service_cache",
    ):
        if capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._m_hits = registry.counter(f"{name}_hits_total")
        self._m_misses = registry.counter(f"{name}_misses_total")
        self._m_evictions = registry.counter(f"{name}_evictions_total")
        self._m_entries = registry.gauge(f"{name}_entries")

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._m_misses.inc()
                return False, None
            self._entries.move_to_end(key)
            self._m_hits.inc()
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._m_evictions.inc()
            self._m_entries.set(len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._m_entries.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
