"""Server-side session store with TTL and LRU eviction.

A *service session* wraps one of the tool's session objects
(:class:`~repro.tool.session.SimulationSession` or
:class:`~repro.tool.session.VerificationSession`) with everything a
multi-client server needs around it:

* a random, unguessable identifier;
* a per-session re-entrant lock — the underlying :class:`DDPackage` is not
  thread-safe, so every operation on a session must hold it;
* idle-time bookkeeping for TTL expiry and LRU eviction.

The :class:`SessionStore` enforces a hard capacity: when a new session
would exceed it, expired sessions are purged first, then the
least-recently-used *idle* session is evicted; if every session is
currently busy the create is rejected with
:class:`~repro.errors.SessionLimitError` (mapped to ``503`` — the
backpressure signal that tells a load balancer to try another replica).
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.errors import SessionLimitError, SessionNotFoundError
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry

__all__ = ["SessionHandle", "SessionStore"]


class SessionHandle:
    """One live session plus the serving metadata around it."""

    def __init__(
        self,
        session_id: str,
        kind: str,
        session: object,
        clock: Callable[[], float],
        registry: Optional[MetricsRegistry] = None,
        stream_history: int = 1024,
    ):
        self.session_id = session_id
        self.kind = kind  # "simulation" | "verification"
        self.session = session
        self.lock = threading.RLock()
        self._clock = clock
        self.created_at = clock()
        self.last_used = self.created_at
        #: Per-session frame stream: the app publishes one ``frame`` event
        #: per navigation step; ``GET /sessions/{id}/stream`` subscribes.
        #: The history depth bounds `Last-Event-ID` replay after reconnects.
        self.events = EventBus(registry=registry, history=stream_history)
        #: How many of ``session.frames`` have been published (app-managed).
        self.frames_streamed = 0

    def touch(self) -> None:
        self.last_used = self._clock()

    def idle_seconds(self) -> float:
        return self._clock() - self.last_used

    def close(self, reason: str = "closed") -> None:
        """Release the session's engine resources (governor roots etc.).

        Publishes a final ``closed`` event and ends the frame stream, so
        attached SSE subscribers terminate when the session expires or is
        evicted.  Tool sessions expose ``close()``; tolerate foreign
        session objects (tests register plain stubs) and never let
        teardown raise.
        """
        self.events.publish("closed", {
            "session_id": self.session_id, "reason": reason,
        })
        self.events.close()
        closer = getattr(self.session, "close", None)
        if closer is None:
            return
        try:
            closer()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass


class SessionStore:
    """Bounded, TTL-expiring, LRU-evicting map of live sessions."""

    def __init__(
        self,
        max_sessions: int = 64,
        ttl: float = 600.0,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        event_bus: Optional[EventBus] = None,
        stream_history: int = 1024,
    ):
        if max_sessions < 1:
            raise ValueError("the store needs room for at least one session")
        self.max_sessions = max_sessions
        self.ttl = ttl
        self._clock = clock
        self._sessions: Dict[str, SessionHandle] = {}
        self._lock = threading.Lock()
        self.event_bus = event_bus
        self.stream_history = stream_history
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._registry = registry
        self._m_open = registry.gauge("service_sessions_open")
        self._m_created = registry.counter("service_sessions_created_total")
        self._m_expired = registry.counter("service_sessions_expired_total")
        self._m_evicted = registry.counter("service_sessions_evicted_total")
        self._m_rejected = registry.counter("service_sessions_rejected_total")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(self, kind: str, factory: Callable[[], object]) -> SessionHandle:
        """Build a session via ``factory`` and register it.

        The factory runs *outside* the store lock (parsing a circuit can be
        slow); only registration is synchronized.
        """
        session = factory()
        handle = SessionHandle(
            secrets.token_hex(12), kind, session, self._clock,
            registry=self._registry, stream_history=self.stream_history,
        )
        with self._lock:
            self._purge_expired_locked()
            if len(self._sessions) >= self.max_sessions:
                self._evict_lru_locked()
            if len(self._sessions) >= self.max_sessions:
                self._m_rejected.inc()
                raise SessionLimitError(
                    f"session store is full ({self.max_sessions} live sessions, "
                    "none evictable); retry later or delete a session"
                )
            self._sessions[handle.session_id] = handle
            self._m_created.inc()
            self._m_open.set(len(self._sessions))
        self._publish("session.created", handle)
        return handle

    def get(self, session_id: str) -> SessionHandle:
        """Look up a live session and refresh its recency."""
        with self._lock:
            self._purge_expired_locked()
            handle = self._sessions.get(session_id)
            if handle is None:
                raise SessionNotFoundError(f"no such session: {session_id}")
            handle.touch()
            return handle

    def remove(self, session_id: str) -> None:
        with self._lock:
            handle = self._sessions.pop(session_id, None)
            if handle is None:
                raise SessionNotFoundError(f"no such session: {session_id}")
            handle.close(reason="deleted")
            self._m_open.set(len(self._sessions))
        self._publish("session.deleted", handle)

    def purge_expired(self) -> int:
        with self._lock:
            return self._purge_expired_locked()

    def list(self) -> List[SessionHandle]:
        with self._lock:
            self._purge_expired_locked()
            return sorted(self._sessions.values(), key=lambda h: h.created_at)

    def close_streams(self) -> None:
        """End every session's frame stream without closing the sessions.

        Part of graceful shutdown: wakes all blocked SSE subscribers so
        their connections can drain while the sessions themselves stay
        usable until process exit.
        """
        with self._lock:
            handles = list(self._sessions.values())
        for handle in handles:
            handle.events.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # internals (store lock held)
    # ------------------------------------------------------------------
    def _publish(self, kind: str, handle: SessionHandle) -> None:
        """Announce a lifecycle transition on the app-level event bus."""
        if self.event_bus is not None:
            self.event_bus.publish(kind, {
                "session_id": handle.session_id,
                "kind": handle.kind,
                "open": len(self._sessions),
            })

    def _purge_expired_locked(self) -> int:
        if self.ttl <= 0:
            return 0
        expired = [
            session_id
            for session_id, handle in self._sessions.items()
            if handle.idle_seconds() > self.ttl and handle.lock.acquire(blocking=False)
        ]
        for session_id in expired:
            handle = self._sessions.pop(session_id)
            handle.close(reason="expired")
            handle.lock.release()
            self._m_expired.inc()
            self._publish("session.expired", handle)
        if expired:
            self._m_open.set(len(self._sessions))
        return len(expired)

    def _evict_lru_locked(self) -> bool:
        """Evict the least-recently-used session that is not mid-request."""
        for handle in sorted(self._sessions.values(), key=lambda h: h.last_used):
            if handle.lock.acquire(blocking=False):
                try:
                    del self._sessions[handle.session_id]
                    handle.close(reason="evicted")
                finally:
                    handle.lock.release()
                self._m_evicted.inc()
                self._m_open.set(len(self._sessions))
                self._publish("session.evicted", handle)
                return True
        return False
