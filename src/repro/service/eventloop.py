"""Non-blocking ``selectors``-based HTTP front end for the service.

The thread-per-connection front end caps out at a few hundred concurrent
clients: every open socket costs a thread, and a slow or idle client pins
one forever.  This module holds *all* connections on a single readiness-
driven event loop instead:

* **accept/read/write are non-blocking** — one reactor thread multiplexes
  every socket through :class:`selectors.DefaultSelector` (epoll on
  Linux), so thousands of idle keep-alive connections cost a few kB each,
  not a thread each;
* **HTTP parsing is incremental** — bytes accumulate in a per-connection
  :class:`HTTPParser` until a full request is framed, so a trickling
  client never blocks anyone;
* **handlers run on a small bounded thread pool** — the reactor never
  calls :meth:`ServiceApp.handle` itself (handlers block on session locks
  and worker shards); completed responses are handed back to the loop
  over a self-pipe and written with readiness-driven, backpressure-aware
  buffering;
* **streaming responses get a pump thread each** — SSE and NDJSON bodies
  are produced by blocking generators; each open stream (already bounded
  by ``ServiceConfig.max_streams``) is pumped into the connection's write
  buffer and pauses whenever the buffer is above the high watermark, so
  one slow subscriber buffers kilobytes, not the whole event history.

The protocol-level helpers (:func:`parse_content_length`,
:func:`parse_query_strict`, :func:`display_host`, :func:`error_body`)
are shared with the legacy threaded front end in ``server.py`` so both
transports return identical structured errors.
"""

from __future__ import annotations

import json
import queue
import selectors
import socket
import threading
import time
from http.client import responses as _HTTP_REASONS
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.service.app import Request, Response, ServiceApp, StreamingResponse

__all__ = [
    "HTTPParser",
    "ParsedRequest",
    "ProtocolError",
    "SelectorFrontEnd",
    "display_host",
    "error_body",
    "parse_content_length",
    "parse_query_strict",
]

#: Bytes read per ``recv`` call on a readable socket.
RECV_SIZE = 1 << 16
#: Largest accepted request head (request line + headers).
MAX_HEAD_BYTES = 1 << 15
#: Write buffer size above which streaming producers pause.
HIGH_WATERMARK = 1 << 20
#: Write buffer size below which paused producers resume.
LOW_WATERMARK = 1 << 16
#: Hosts that mean "every interface" and are unconnectable as a client URL.
_WILDCARD_HOSTS = ("", "0.0.0.0", "::", "0:0:0:0:0:0:0:0")


class ProtocolError(Exception):
    """A malformed or unserviceable request detected at the HTTP layer.

    Carries everything a transport needs to emit the same structured JSON
    error body that :class:`ServiceApp` produces for application errors.
    """

    def __init__(self, status: int, error_type: str, message: str,
                 close: bool = True):
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.message = message
        #: Whether the connection must be closed after responding (the
        #: framing is unrecoverable, e.g. an unparseable Content-Length).
        self.close = close


def error_body(error_type: str, message: str, status: int) -> bytes:
    """The service's structured JSON error payload, as bytes."""
    return json.dumps(
        {"error": {"type": error_type, "message": message, "status": status}}
    ).encode()


def parse_content_length(raw: Optional[str]) -> int:
    """Parse a ``Content-Length`` header value; 400 on anything malformed.

    A missing or empty header means "no body".  Anything that is not a
    plain non-negative decimal integer raises :class:`ProtocolError`
    instead of :class:`ValueError` — a malformed header must produce a
    structured 400, not kill the connection without a response.
    """
    if raw is None or raw.strip() == "":
        return 0
    value = raw.strip()
    if not value.isdigit():  # rejects signs, floats, hex, text
        raise ProtocolError(
            400, "BadRequestError",
            f"invalid Content-Length header: {raw!r}",
        )
    return int(value)


def parse_query_strict(raw_query: str) -> Dict[str, str]:
    """Parse a query string, rejecting repeated parameters with a 400.

    ``dict(parse_qsl(...))`` silently keeps only the *last* occurrence of
    a repeated parameter, which breaks e.g. ``?last_event_id=`` resume
    semantics when a proxy duplicates parameters; ambiguity is an error
    the client should see.
    """
    query: Dict[str, str] = {}
    for key, value in parse_qsl(raw_query):
        if key in query:
            raise ProtocolError(
                400, "BadRequestError",
                f"duplicate query parameter {key!r}", close=False,
            )
        query[key] = value
    return query


def display_host(host: str) -> str:
    """Map wildcard bind addresses to a loopback address clients can dial.

    ``http://0.0.0.0:8137`` is a valid *bind* address but not a valid
    *connect* address; smoke scripts and copy-pasted URLs need loopback.
    """
    return "127.0.0.1" if host in _WILDCARD_HOSTS else host


class ParsedRequest:
    """One fully framed HTTP request, as produced by :class:`HTTPParser`."""

    __slots__ = ("method", "target", "headers", "body", "keep_alive")

    def __init__(self, method: str, target: str, headers: Dict[str, str],
                 body: bytes, keep_alive: bool):
        self.method = method
        self.target = target
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


class HTTPParser:
    """An incremental HTTP/1.x request parser for one connection.

    ``feed()`` appends raw bytes; ``next_request()`` returns a
    :class:`ParsedRequest` once one is fully buffered, ``None`` while
    more bytes are needed, and raises :class:`ProtocolError` on malformed
    input.  Pipelined bytes beyond the first request simply stay in the
    buffer for the next call.
    """

    def __init__(self, max_body_bytes: int):
        self.max_body_bytes = max_body_bytes
        self._buffer = bytearray()
        # Head of the request currently being framed (None = not parsed yet).
        self._head: Optional[Tuple[str, str, Dict[str, str], int, bool]] = None

    def feed(self, data: bytes) -> None:
        self._buffer += data

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def next_request(self) -> Optional[ParsedRequest]:
        if self._head is None and not self._parse_head():
            return None
        method, target, headers, length, keep_alive = self._head
        if len(self._buffer) < length:
            return None  # body still arriving
        body = bytes(self._buffer[:length])
        del self._buffer[:length]
        self._head = None
        return ParsedRequest(method, target, headers, body, keep_alive)

    # ------------------------------------------------------------------
    # head framing
    # ------------------------------------------------------------------
    def _parse_head(self) -> bool:
        end = self._buffer.find(b"\r\n\r\n")
        if end < 0:
            if len(self._buffer) > MAX_HEAD_BYTES:
                raise ProtocolError(
                    431, "BadRequestError",
                    f"request head exceeds {MAX_HEAD_BYTES} bytes",
                )
            return False
        head = bytes(self._buffer[:end])
        del self._buffer[:end + 4]
        try:
            text = head.decode("iso-8859-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise ProtocolError(400, "BadRequestError", "undecodable head")
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(
                400, "BadRequestError",
                f"malformed request line: {lines[0]!r}",
            )
        method, target, version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                raise ProtocolError(
                    400, "BadRequestError", f"malformed header line: {line!r}"
                )
            key = name.strip().lower()
            value = value.strip()
            if key == "content-length" and key in headers \
                    and headers[key] != value:
                raise ProtocolError(
                    400, "BadRequestError",
                    "conflicting Content-Length headers",
                )
            headers[key] = value
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise ProtocolError(
                400, "BadRequestError",
                "chunked request bodies are not supported; "
                "send a Content-Length",
            )
        length = parse_content_length(headers.get("content-length"))
        if length > self.max_body_bytes:
            # Refuse to buffer it; the unread remainder would poison the
            # connection, so the transport must close after responding.
            raise ProtocolError(
                413, "RequestTooLargeError",
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = "keep-alive" in connection
        else:
            keep_alive = "close" not in connection
        self._head = (method, target, headers, length, keep_alive)
        return True


def build_request(parsed: ParsedRequest, client: str) -> Request:
    """Map a framed HTTP request onto the app's transport-free Request.

    Raises :class:`ProtocolError` for duplicate query parameters.
    """
    split = urlsplit(parsed.target)
    return Request(
        method=parsed.method,
        path=split.path,
        query=parse_query_strict(split.query),
        body=parsed.body,
        client=client,
        headers=parsed.headers,
    )


class _Connection:
    """Reactor-side state of one client socket.

    Only the reactor thread mutates the selector registration and the
    write buffer; producer threads communicate through the completion
    queue.  ``drained`` is the backpressure signal for stream pumps.
    """

    __slots__ = (
        "sock", "fd", "client", "parser", "out", "mask", "busy",
        "streaming", "closed", "close_after_write", "drained",
    )

    def __init__(self, sock: socket.socket, client: str, max_body_bytes: int):
        self.sock = sock
        self.fd = sock.fileno()
        self.client = client
        self.parser = HTTPParser(max_body_bytes)
        self.out = bytearray()
        self.mask = 0          # current selector registration
        self.busy = False      # a request is being handled
        self.streaming = False
        self.closed = False
        self.close_after_write = False
        self.drained = threading.Event()
        self.drained.set()


class _ConnectionGone(Exception):
    """Raised inside a stream pump when the client disappeared."""


class SelectorFrontEnd:
    """The event-loop HTTP server: reactor + handler pool + stream pumps."""

    def __init__(
        self,
        app: ServiceApp,
        host: str,
        port: int,
        handler_threads: int = 0,
        verbose: bool = False,
        backlog: int = 1024,
    ):
        self.app = app
        self.verbose = verbose
        if handler_threads <= 0:
            # Enough to keep every worker shard busy plus headroom for the
            # fast in-process endpoints (sessions, metrics, cache hits).
            handler_threads = max(8, 2 * app.config.workers + 4)
        self.handler_threads = handler_threads
        self._listener = socket.create_server(
            (host, port), reuse_port=False, backlog=backlog
        )
        self._listener.setblocking(False)
        self.server_address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        # Self-pipe: producer threads wake the reactor after queueing work.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._completions: "queue.SimpleQueue" = queue.SimpleQueue()
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._conns: Dict[int, _Connection] = {}
        self._accepting = True
        self._terminate = threading.Event()
        self._stopped = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._date_stamp: Tuple[int, str] = (0, "")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SelectorFrontEnd":
        """Start the reactor and the handler pool (idempotent)."""
        if self._thread is not None:
            return self
        for index in range(self.handler_threads):
            thread = threading.Thread(
                target=self._handler_loop, name=f"qdd-handler-{index}",
                daemon=True,
            )
            thread.start()
            self._handlers.append(thread)
        self._thread = threading.Thread(
            target=self._run, name="qdd-eventloop", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown` is called."""
        self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        """Stop accepting new connections; in-flight work continues.

        The reactor keeps running so queued responses and open streams can
        still be written — pair with :meth:`close` after draining.
        """
        self._accepting = False
        self._completions.put(("stop_accepting",))
        self._wake()
        self._stopped.set()

    def close(self) -> None:
        """Terminate the reactor, close every connection, reap the pool."""
        self.shutdown()
        self._terminate.set()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for _ in self._handlers:
            self._jobs.put(None)
        for thread in self._handlers:
            thread.join(timeout=2.0)
        self._handlers = []
        for conn in list(self._conns.values()):
            conn.closed = True
            conn.drained.set()
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._conns.clear()
        for sock in (self._listener, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        try:
            self._selector.close()
        except (OSError, RuntimeError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # reactor
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full or closing: the loop is awake anyway

    def _run(self) -> None:
        while not self._terminate.is_set():
            try:
                events = self._selector.select(timeout=0.5)
            except OSError:  # pragma: no cover - selector torn down
                break
            for key, mask in events:
                if key.fileobj is self._listener:
                    self._accept()
                elif key.fileobj is self._wake_r:
                    self._drain_wake_pipe()
                else:
                    conn: _Connection = key.data
                    if conn.closed:
                        continue
                    if mask & selectors.EVENT_READ:
                        self._on_readable(conn)
                    if mask & selectors.EVENT_WRITE and not conn.closed:
                        self._on_writable(conn)
            self._process_completions()

    def _accept(self) -> None:
        while self._accepting:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # listener closed or EMFILE
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP socket family
                pass
            conn = _Connection(
                sock, addr[0] if addr else "", self.app.config.max_body_bytes
            )
            self._conns[conn.fd] = conn
            self._set_mask(conn, selectors.EVENT_READ)

    def _drain_wake_pipe(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:  # pragma: no cover - closing
            pass

    def _set_mask(self, conn: _Connection, mask: int) -> None:
        if conn.closed or conn.mask == mask:
            return
        if conn.mask == 0:
            self._selector.register(conn.sock, mask, conn)
        elif mask == 0:
            self._selector.unregister(conn.sock)
        else:
            self._selector.modify(conn.sock, mask, conn)
        conn.mask = mask

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        self._set_mask(conn, 0)
        conn.closed = True
        conn.drained.set()  # release any pump blocked on backpressure
        self._conns.pop(conn.fd, None)
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

    # -- reading -------------------------------------------------------
    def _on_readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        conn.parser.feed(data)
        self._advance(conn)

    def _advance(self, conn: _Connection) -> None:
        """Frame and dispatch the next request, if fully buffered."""
        if conn.busy or conn.closed:
            return
        try:
            parsed = conn.parser.next_request()
        except ProtocolError as error:
            self._respond_error(conn, error)
            return
        if parsed is None:
            self._set_mask(conn, selectors.EVENT_READ)
            return
        # One request in flight per connection: reading pauses until the
        # response is written (pipelined bytes wait in the parser buffer).
        conn.busy = True
        self._set_mask(conn, 0)
        try:
            request = build_request(parsed, conn.client)
        except ProtocolError as error:
            self._respond_error(conn, error, keep_alive=parsed.keep_alive)
            return
        self._jobs.put((conn, parsed, request))

    def _respond_error(self, conn: _Connection, error: ProtocolError,
                       keep_alive: bool = False) -> None:
        body = error_body(error.error_type, error.message, error.status)
        close = error.close or not keep_alive
        head = self._head_bytes(
            error.status, "application/json", {}, content_length=len(body),
            close=close,
        )
        conn.busy = True
        conn.out += head + body
        conn.close_after_write = close
        conn.streaming = False
        self._set_mask(conn, selectors.EVENT_WRITE)

    # -- handler pool --------------------------------------------------
    def _handler_loop(self) -> None:
        while True:
            item = self._jobs.get()
            if item is None:
                return
            conn, parsed, request = item
            try:
                response = self.app.handle(request)
            except Exception as error:  # noqa: BLE001 - app.handle catches;
                # this is a last-resort guard so a handler thread never dies.
                response = Response.json(
                    {"error": {"type": type(error).__name__,
                               "message": str(error), "status": 500}},
                    status=500,
                )
            self._completions.put(("response", conn, parsed, response))
            self._wake()

    # -- completions (reactor thread) ----------------------------------
    def _process_completions(self) -> None:
        while True:
            try:
                item = self._completions.get_nowait()
            except queue.Empty:
                return
            kind = item[0]
            if kind == "stop_accepting":
                try:
                    self._selector.unregister(self._listener)
                except (KeyError, ValueError, OSError):
                    pass
                try:
                    self._listener.close()
                except OSError:  # pragma: no cover
                    pass
            elif kind == "response":
                _, conn, parsed, response = item
                self._begin_response(conn, parsed, response)
            elif kind == "chunk":
                _, conn, data = item
                if not conn.closed:
                    conn.out += data
                    self._set_mask(conn, selectors.EVENT_WRITE)
            elif kind == "stream_end":
                _, conn = item
                if conn.closed:
                    continue
                conn.streaming = False
                if conn.out:
                    self._set_mask(conn, selectors.EVENT_WRITE)
                else:
                    self._close_conn(conn)

    def _begin_response(self, conn: _Connection, parsed: ParsedRequest,
                        response) -> None:
        if conn.closed:
            if isinstance(response, StreamingResponse):
                response.close()
            return
        head_only = parsed.method == "HEAD"
        if isinstance(response, StreamingResponse):
            if head_only:
                # A HEAD of a streaming endpoint answers with the stream's
                # status and headers but no body; nothing meaningful can be
                # resumed, so the connection closes (mirrors the threaded
                # front end's always-close streams).
                response.close()
                conn.out += self._head_bytes(
                    response.status, response.content_type, response.headers,
                    content_length=0, close=True,
                )
                conn.close_after_write = True
                self._set_mask(conn, selectors.EVENT_WRITE)
                return
            conn.out += self._head_bytes(
                response.status, response.content_type, response.headers,
                chunked=True, close=True,
            )
            conn.streaming = True
            conn.close_after_write = True
            self._set_mask(conn, selectors.EVENT_WRITE)
            pump = threading.Thread(
                target=self._pump_stream, args=(conn, response),
                name="qdd-stream-pump", daemon=True,
            )
            pump.start()
            return
        body = b"" if head_only else response.body
        conn.out += self._head_bytes(
            response.status, response.content_type, response.headers,
            content_length=len(response.body), close=not parsed.keep_alive,
        )
        conn.out += body
        conn.close_after_write = not parsed.keep_alive
        self._set_mask(conn, selectors.EVENT_WRITE)

    # -- writing -------------------------------------------------------
    def _on_writable(self, conn: _Connection) -> None:
        try:
            sent = conn.sock.send(memoryview(conn.out)[:RECV_SIZE])
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        del conn.out[:sent]
        if len(conn.out) <= LOW_WATERMARK:
            conn.drained.set()
        if conn.out:
            return
        if conn.streaming:
            # Stream pumps refill the buffer; stop polling writability so
            # an idle stream does not spin the loop.
            self._set_mask(conn, 0)
            return
        if conn.close_after_write:
            self._close_conn(conn)
            return
        conn.busy = False
        self._set_mask(conn, selectors.EVENT_READ)
        if conn.parser.buffered:
            self._advance(conn)  # a pipelined request is already waiting

    # -- streaming pump (one thread per open stream) --------------------
    def _stream_send(self, conn: _Connection, data: bytes) -> None:
        if conn.closed:
            raise _ConnectionGone()
        self._completions.put(("chunk", conn, data))
        self._wake()
        while len(conn.out) > HIGH_WATERMARK:
            if conn.closed:
                raise _ConnectionGone()
            conn.drained.clear()
            conn.drained.wait(timeout=0.5)

    def _pump_stream(self, conn: _Connection, response: StreamingResponse) -> None:
        try:
            for chunk in response.chunks:
                if not chunk:
                    continue
                frame = b"%x\r\n" % len(chunk) + chunk + b"\r\n"
                self._stream_send(conn, frame)
            self._stream_send(conn, b"0\r\n\r\n")
        except _ConnectionGone:
            pass
        finally:
            response.close()
            self._completions.put(("stream_end", conn))
            self._wake()

    # -- response heads -------------------------------------------------
    def _date_header(self) -> str:
        now = int(time.time())
        if self._date_stamp[0] != now:
            from email.utils import formatdate

            self._date_stamp = (now, formatdate(now, usegmt=True))
        return self._date_stamp[1]

    def _head_bytes(
        self,
        status: int,
        content_type: str,
        headers: Dict[str, str],
        content_length: Optional[int] = None,
        chunked: bool = False,
        close: bool = False,
    ) -> bytes:
        reason = _HTTP_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Server: qdd-service/1.0",
            f"Date: {self._date_header()}",
            f"Content-Type: {content_type}",
        ]
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        else:
            lines.append(f"Content-Length: {content_length or 0}")
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Connection: {'close' if close else 'keep-alive'}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("iso-8859-1")
