"""Multi-process saturation load generator for the service front end.

The event-loop front end exists to hold thousands of concurrent
connections; proving that needs a client that can *open* thousands of
concurrent connections, which a thread-per-request driver cannot.  This
module is the mirror image of :mod:`repro.service.eventloop` on the
client side: each generator process runs one ``selectors`` loop managing
hundreds of non-blocking keep-alive sockets, every socket repeatedly
POSTing ``/simulate`` and timing the full request/response round trip.

Two regimes mirror the service benchmark:

* ``"cached"`` — every request carries the same circuit, so after one
  warm-up the server answers from the LRU result cache; latency is pure
  front-end overhead.
* ``"uncached"`` — each request varies the seed, so every one crosses
  the worker pool (and, with shard affinity, lands on the same warm
  shard for the shared digest).

Results aggregate across processes into p50/p95/p99 latency and
requests/second, publish into a :class:`~repro.obs.metrics.MetricsRegistry`
(histogram + counters, rendered by :func:`repro.obs.export.run_report`)
and serialize in the campaign artifact format
(``qdd-campaign-artifact-v1``) so regression gating can join load runs
against stored baselines like any other campaign.

Entry points: :func:`run_load` (drive an already-running server) and the
``scripts/service_loadgen.py`` CLI (self-hosts a server, writes
``benchmarks/results/service_loadgen.{json,txt}``).
"""

from __future__ import annotations

import errno
import json
import multiprocessing
import selectors
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LoadResult",
    "load_artifact",
    "publish_metrics",
    "run_load",
]

ARTIFACT_FORMAT = "qdd-campaign-artifact-v1"

_RECV_SIZE = 65536
_MAX_HEAD = 65536


# ----------------------------------------------------------------------
# client-side HTTP response parsing
# ----------------------------------------------------------------------
class _ResponseReader:
    """Incremental parser for a stream of Content-Length framed responses.

    The generator only talks to non-streaming endpoints, so every
    response the server sends carries ``Content-Length``; chunked bodies
    are rejected rather than implemented.
    """

    __slots__ = ("buffer",)

    def __init__(self) -> None:
        self.buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self.buffer.extend(data)

    def next_response(self) -> Optional[Tuple[int, bool]]:
        """Pop one complete response: ``(status, keep_alive)`` or None."""
        end = self.buffer.find(b"\r\n\r\n")
        if end < 0:
            if len(self.buffer) > _MAX_HEAD:
                raise ValueError("response head exceeds 64 KiB")
            return None
        head = bytes(self.buffer[:end]).decode("latin-1")
        lines = head.split("\r\n")
        status = int(lines[0].split(None, 2)[1])
        length = 0
        keep_alive = True
        for line in lines[1:]:
            name, _, value = line.partition(":")
            name = name.strip().lower()
            value = value.strip()
            if name == "content-length":
                length = int(value)
            elif name == "connection" and value.lower() == "close":
                keep_alive = False
            elif name == "transfer-encoding":
                raise ValueError("unexpected chunked response")
        total = end + 4 + length
        if len(self.buffer) < total:
            return None
        del self.buffer[:total]
        return status, keep_alive


# ----------------------------------------------------------------------
# per-connection client state machine
# ----------------------------------------------------------------------
_CONNECTING = 0
_SENDING = 1
_READING = 2


class _Client:
    """One keep-alive connection cycling request → response → request."""

    __slots__ = (
        "sock", "state", "out", "reader", "started", "requests",
        "reconnects",
    )

    def __init__(self) -> None:
        self.sock: Optional[socket.socket] = None
        self.state = _CONNECTING
        self.out = b""
        self.reader = _ResponseReader()
        self.started = 0.0
        self.requests = 0
        self.reconnects = 0

    def open(self, address: Tuple[str, int], sel: selectors.BaseSelector) -> None:
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setblocking(False)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        result = self.sock.connect_ex(address)
        if result not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
            raise OSError(result, "connect failed")
        self.state = _CONNECTING
        self.reader = _ResponseReader()
        sel.register(self.sock, selectors.EVENT_WRITE, self)

    def close(self, sel: selectors.BaseSelector) -> None:
        if self.sock is None:
            return
        try:
            sel.unregister(self.sock)
        except (KeyError, ValueError):
            pass
        try:
            self.sock.close()
        finally:
            self.sock = None


def _request_bytes(path: str, body: bytes) -> bytes:
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: loadgen\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode("latin-1") + body


def _client_process(
    address: Tuple[str, int],
    connections: int,
    duration: float,
    path: str,
    body_template: str,
    seed_base: int,
    out_queue,
) -> None:
    """One generator process: a selectors loop over ``connections`` sockets.

    ``body_template`` may contain ``{seed}``, replaced per request with a
    globally unique integer (the uncached regime); without the marker
    every request is byte-identical (the cached regime).
    """
    sel = selectors.DefaultSelector()
    clients = [_Client() for _ in range(connections)]
    latencies: List[float] = []
    statuses: Dict[int, int] = {}
    errors = 0
    seed_counter = seed_base
    vary = "{seed}" in body_template

    def next_body(client: _Client) -> bytes:
        nonlocal seed_counter
        if vary:
            seed_counter += 1
            return body_template.replace("{seed}", str(seed_counter)).encode()
        return body_template.encode()

    def begin_request(client: _Client) -> None:
        client.out = _request_bytes(path, next_body(client))
        client.started = time.perf_counter()
        client.state = _SENDING
        sel.modify(client.sock, selectors.EVENT_WRITE, client)

    def recycle(client: _Client) -> None:
        """Tear the connection down and dial again (post-error or close)."""
        nonlocal errors
        client.close(sel)
        client.reconnects += 1
        try:
            client.open(address, sel)
        except OSError:
            errors += 1

    deadline = time.monotonic() + duration
    for client in clients:
        try:
            client.open(address, sel)
        except OSError:
            errors += 1

    while time.monotonic() < deadline:
        events = sel.select(timeout=min(0.25, max(0.001, deadline - time.monotonic())))
        now_past = time.monotonic() >= deadline
        for key, mask in events:
            client: _Client = key.data
            if client.sock is None:
                continue
            try:
                if client.state == _CONNECTING and mask & selectors.EVENT_WRITE:
                    error = client.sock.getsockopt(
                        socket.SOL_SOCKET, socket.SO_ERROR
                    )
                    if error:
                        errors += 1
                        recycle(client)
                        continue
                    begin_request(client)
                    continue
                if client.state == _SENDING and mask & selectors.EVENT_WRITE:
                    sent = client.sock.send(client.out)
                    client.out = client.out[sent:]
                    if not client.out:
                        client.state = _READING
                        sel.modify(client.sock, selectors.EVENT_READ, client)
                    continue
                if client.state == _READING and mask & selectors.EVENT_READ:
                    data = client.sock.recv(_RECV_SIZE)
                    if not data:
                        errors += 1
                        recycle(client)
                        continue
                    client.reader.feed(data)
                    popped = client.reader.next_response()
                    if popped is None:
                        continue
                    status, keep_alive = popped
                    latencies.append(time.perf_counter() - client.started)
                    statuses[status] = statuses.get(status, 0) + 1
                    client.requests += 1
                    if now_past:
                        client.close(sel)
                    elif keep_alive:
                        begin_request(client)
                    else:
                        recycle(client)
            except (BlockingIOError, InterruptedError):
                continue
            except (OSError, ValueError):
                errors += 1
                recycle(client)

    for client in clients:
        client.close(sel)
    sel.close()
    out_queue.put({
        "latencies": latencies,
        "statuses": statuses,
        "errors": errors,
        "reconnects": sum(c.reconnects for c in clients),
    })


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
@dataclass
class LoadResult:
    """Aggregated outcome of one load-generation run."""

    mode: str
    connections: int
    processes: int
    duration_s: float
    requests: int = 0
    errors: int = 0
    reconnects: int = 0
    rps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0
    max_ms: float = 0.0
    statuses: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "connections": self.connections,
            "processes": self.processes,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "errors": self.errors,
            "reconnects": self.reconnects,
            "rps": self.rps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "statuses": dict(sorted(self.statuses.items())),
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_load(
    host: str,
    port: int,
    connections: int = 100,
    duration: float = 5.0,
    processes: int = 2,
    mode: str = "cached",
    path: str = "/simulate",
    body_template: Optional[str] = None,
) -> LoadResult:
    """Drive ``connections`` concurrent keep-alive clients for ``duration``.

    The connection count is split across ``processes`` generator
    processes (each its own event loop), so the GIL of a single client
    process never becomes the bottleneck being measured.  ``mode`` picks
    the default payload: ``"cached"`` repeats one circuit verbatim,
    ``"uncached"`` varies the seed per request via a ``{seed}`` marker.
    An explicit ``body_template`` overrides both.
    """
    if mode not in ("cached", "uncached"):
        raise ValueError(f"unknown load mode {mode!r}")
    if body_template is None:
        from repro.qc import library

        qasm = library.qft(3).to_qasm()
        if mode == "cached":
            body_template = json.dumps({"qasm": qasm, "shots": 16, "seed": 1})
        else:
            payload = json.dumps(
                {"qasm": qasm, "shots": 16, "seed": "@SEED@"}
            )
            body_template = payload.replace('"@SEED@"', "{seed}")

    processes = max(1, min(processes, connections))
    per_process = [connections // processes] * processes
    for index in range(connections % processes):
        per_process[index] += 1

    context = multiprocessing.get_context()
    out_queue = context.Queue()
    workers = []
    for index, count in enumerate(per_process):
        worker = context.Process(
            target=_client_process,
            args=(
                (host, port), count, duration, path, body_template,
                (index + 1) * 10_000_000, out_queue,
            ),
            daemon=True,
        )
        workers.append(worker)

    wall_start = time.perf_counter()
    for worker in workers:
        worker.start()
    chunks = []
    for _ in workers:
        chunks.append(out_queue.get(timeout=duration + 60.0))
    for worker in workers:
        worker.join(timeout=30.0)
    wall = time.perf_counter() - wall_start

    latencies: List[float] = []
    statuses: Dict[str, int] = {}
    errors = reconnects = 0
    for chunk in chunks:
        latencies.extend(chunk["latencies"])
        errors += chunk["errors"]
        reconnects += chunk["reconnects"]
        for status, count in chunk["statuses"].items():
            key = str(status)
            statuses[key] = statuses.get(key, 0) + count
    latencies.sort()
    total = len(latencies)
    return LoadResult(
        mode=mode,
        connections=connections,
        processes=processes,
        duration_s=duration,
        requests=total,
        errors=errors,
        reconnects=reconnects,
        rps=total / wall if wall else 0.0,
        p50_ms=1e3 * _percentile(latencies, 0.50),
        p95_ms=1e3 * _percentile(latencies, 0.95),
        p99_ms=1e3 * _percentile(latencies, 0.99),
        mean_ms=1e3 * (sum(latencies) / total) if total else 0.0,
        max_ms=1e3 * latencies[-1] if latencies else 0.0,
        statuses=statuses,
    )


# ----------------------------------------------------------------------
# publication: obs metrics + campaign artifact
# ----------------------------------------------------------------------
def publish_metrics(result: LoadResult, registry) -> None:
    """Record a result into a :class:`~repro.obs.metrics.MetricsRegistry`."""
    labels = {"mode": result.mode}
    histogram = registry.histogram("loadgen_request_seconds", labels=labels)
    # Re-observing every sample would be O(requests); feed the quantiles
    # that survive aggregation instead so the report shows the shape.
    for value_ms in (result.p50_ms, result.p95_ms, result.p99_ms):
        histogram.observe(value_ms / 1e3)
    registry.counter("loadgen_requests_total", labels=labels).inc(result.requests)
    registry.counter("loadgen_errors_total", labels=labels).inc(result.errors)
    registry.gauge("loadgen_rps", labels=labels).set(result.rps)
    registry.gauge("loadgen_connections", labels=labels).set(result.connections)


def load_artifact(
    results: Sequence[LoadResult],
    frontend: str,
    campaign: str = "service-loadgen",
) -> Dict[str, object]:
    """Serialize results in the campaign artifact format.

    One cell per (mode, connection-count) coordinate, so
    :mod:`repro.campaign.gating` can join a load run against a stored
    baseline exactly like a simulation campaign.
    """
    cells: Dict[str, Dict[str, object]] = {}
    statuses: Dict[str, int] = {}
    wall_total = 0.0
    for result in results:
        ok = result.errors == 0 and result.requests > 0
        status = "ok" if ok else "failed"
        statuses[status] = statuses.get(status, 0) + 1
        wall_total += result.duration_s
        cell_id = f"loadgen/{frontend}/{result.mode}/c{result.connections}"
        cells[cell_id] = {
            "status": status,
            "metrics": {
                "rps": result.rps,
                "p50_ms": result.p50_ms,
                "p95_ms": result.p95_ms,
                "p99_ms": result.p99_ms,
                "mean_ms": result.mean_ms,
                "max_ms": result.max_ms,
                "requests": result.requests,
                "errors": result.errors,
                "reconnects": result.reconnects,
            },
            "timing": {"wall_seconds": result.duration_s},
            "counts": None,
            "error": None if ok else (
                f"{result.errors} transport errors over "
                f"{result.requests} requests"
            ),
            "coordinates": {
                "family": "service-loadgen",
                "label": result.mode,
                "size": result.connections,
                "package": frontend,
                "seed": 0,
                "rep": 0,
                "mode": result.mode,
            },
        }
    return {
        "format": ARTIFACT_FORMAT,
        "campaign": campaign,
        "description": (
            f"service front-end saturation run ({frontend} transport)"
        ),
        "spec_digest": None,
        "spec": None,
        "cells": {cell_id: cells[cell_id] for cell_id in sorted(cells)},
        "series": [],
        "summary": {
            "cells_total": len(cells),
            "statuses": dict(sorted(statuses.items())),
            "ok": statuses.get("ok", 0),
            "wall_seconds_total": wall_total,
        },
    }
