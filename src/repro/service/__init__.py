"""repro.service — the multi-client visualization/simulation server.

The paper's artifact is an installation-free *web tool*; this package is
the deployment shape behind such a tool: a JSON-over-HTTP service exposing
the step-through session semantics of :mod:`repro.tool.session` to many
concurrent clients, plus one-shot batch ``/simulate`` and ``/verify``
endpoints that run on a pool of worker processes (one
:class:`~repro.dd.package.DDPackage` per worker) and are memoized in an
LRU result cache keyed on the canonical circuit digest
(:func:`repro.qc.hashing.circuit_digest`).  Live observability rides on
Server-Sent Events: per-session frame streams, a metrics-delta stream and
the self-contained ``/dashboard`` page (see ``docs/dashboard.md``).

Layers (all stdlib, no new dependencies):

* :mod:`repro.service.app` — transport-free request routing and handlers;
* :mod:`repro.service.eventloop` — the non-blocking ``selectors``-based
  reactor front end (default): incremental HTTP parsing, keep-alive,
  backpressure-aware streaming writes;
* :mod:`repro.service.server` — front-end selection (event loop or the
  legacy threaded ``http.server``) with graceful SIGTERM drain
  (``qdd-tool serve``);
* :mod:`repro.service.loadgen` — the multi-process saturation load
  generator behind ``scripts/service_loadgen.py``;
* :mod:`repro.service.sessions` — TTL/LRU session store with backpressure;
* :mod:`repro.service.cache` — the LRU result cache;
* :mod:`repro.service.workers` — the process pool and its job functions.

See ``docs/service.md`` for the API reference with curl examples.
"""

from repro.service.app import (
    Request,
    Response,
    ServiceApp,
    ServiceConfig,
    StreamingResponse,
)
from repro.service.cache import ResultCache
from repro.service.eventloop import SelectorFrontEnd
from repro.service.server import DDToolServer, serve
from repro.service.sessions import SessionHandle, SessionStore
from repro.service.workers import WorkerPool, simulate_job, verify_job

__all__ = [
    "DDToolServer",
    "Request",
    "Response",
    "ResultCache",
    "SelectorFrontEnd",
    "ServiceApp",
    "ServiceConfig",
    "SessionHandle",
    "SessionStore",
    "StreamingResponse",
    "WorkerPool",
    "serve",
    "simulate_job",
    "verify_job",
]
