"""Regression gating — diff a campaign artifact against a stored baseline.

Gates join the two artifacts on cell ID and compare each gated metric.
The allowed drift per gate is ``max(tolerance_abs, |baseline| *
tolerance_pct / 100)``, optionally one-sided (``direction: "increase"``
fails only growth — the right shape for node counts and runtimes).

Coverage is part of the contract:

* a gated cell present in the baseline but **missing/not-ok in the new
  artifact** fails (silently dropping a workload is a regression);
* a new cell absent from the baseline is *reported* but does not fail
  (growing a campaign must not require regenerating history first);
* a gated metric absent from one side fails the gate for that cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.spec import GateSpec

__all__ = ["GateFinding", "DiffReport", "diff_artifacts", "gates_from_artifact"]


@dataclass(frozen=True)
class GateFinding:
    """One per-cell, per-metric comparison outcome."""

    cell_id: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    allowed: float
    delta: Optional[float]
    ok: bool
    reason: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cell_id": self.cell_id,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "allowed": self.allowed,
            "delta": self.delta,
            "ok": self.ok,
            "reason": self.reason,
        }


@dataclass
class DiffReport:
    """The full gating verdict for a new artifact versus a baseline."""

    ok: bool
    regressions: List[GateFinding] = field(default_factory=list)
    passed: int = 0
    new_cells: List[str] = field(default_factory=list)
    missing_cells: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "passed": self.passed,
            "regressions": [finding.as_dict() for finding in self.regressions],
            "new_cells": list(self.new_cells),
            "missing_cells": list(self.missing_cells),
        }

    def render(self) -> str:
        """A human-readable diff summary (one line per regression)."""
        lines = [
            f"gate check: {'PASS' if self.ok else 'FAIL'} "
            f"({self.passed} comparisons ok, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.new_cells)} new cell(s), "
            f"{len(self.missing_cells)} missing cell(s))"
        ]
        for finding in self.regressions:
            lines.append(
                f"  REGRESSION {finding.cell_id} {finding.metric}: "
                f"{finding.reason}"
            )
        for cell_id in self.missing_cells:
            lines.append(f"  MISSING   {cell_id}: in baseline but not ok here")
        for cell_id in self.new_cells:
            lines.append(f"  new       {cell_id}: not in baseline (not gated)")
        return "\n".join(lines)


def _metric_value(entry: Dict[str, Any], metric: str) -> Optional[float]:
    """Look a metric up in a cell entry: metrics first, then timing."""
    for section in ("metrics", "timing"):
        values = entry.get(section) or {}
        if metric in values and values[metric] is not None:
            return float(values[metric])
    return None


def gates_from_artifact(artifact: Dict[str, Any]) -> List[GateSpec]:
    """The gates embedded in an artifact's spec copy."""
    raw = (artifact.get("spec") or {}).get("gates") or []
    return [
        GateSpec.from_dict(entry, f"artifact.spec.gates[{index}]")
        for index, entry in enumerate(raw)
    ]


def diff_artifacts(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    gates: Optional[Sequence[GateSpec]] = None,
) -> DiffReport:
    """Gate ``current`` against ``baseline``; see the module docstring."""
    if gates is None:
        gates = gates_from_artifact(current)
    current_cells: Dict[str, Dict[str, Any]] = current.get("cells", {})
    baseline_cells: Dict[str, Dict[str, Any]] = baseline.get("cells", {})

    report = DiffReport(ok=True)
    report.new_cells = sorted(set(current_cells) - set(baseline_cells))

    for cell_id in sorted(baseline_cells):
        base_entry = baseline_cells[cell_id]
        if base_entry.get("status") != "ok":
            continue  # a cell that never worked cannot regress
        cur_entry = current_cells.get(cell_id)
        if cur_entry is None or cur_entry.get("status") != "ok":
            report.missing_cells.append(cell_id)
            report.ok = False
            continue
        for gate in gates:
            base_value = _metric_value(base_entry, gate.metric)
            cur_value = _metric_value(cur_entry, gate.metric)
            if base_value is None and cur_value is None:
                continue  # metric not produced by this cell (e.g. dense mode)
            if base_value is None or cur_value is None:
                side = "baseline" if base_value is None else "current"
                report.regressions.append(
                    GateFinding(
                        cell_id=cell_id,
                        metric=gate.metric,
                        baseline=base_value,
                        current=cur_value,
                        allowed=0.0,
                        delta=None,
                        ok=False,
                        reason=f"metric missing from the {side} artifact",
                    )
                )
                report.ok = False
                continue
            delta = cur_value - base_value
            allowed = gate.allowance(base_value)
            violated = abs(delta) > allowed
            if gate.direction == "increase":
                violated = delta > allowed
            elif gate.direction == "decrease":
                violated = -delta > allowed
            if violated:
                report.regressions.append(
                    GateFinding(
                        cell_id=cell_id,
                        metric=gate.metric,
                        baseline=base_value,
                        current=cur_value,
                        allowed=allowed,
                        delta=delta,
                        ok=False,
                        reason=(
                            f"{base_value:g} -> {cur_value:g} "
                            f"(drift {delta:+g}, allowed ±{allowed:g}"
                            f"{'' if gate.direction == 'both' else ', ' + gate.direction + ' only'})"
                        ),
                    )
                )
                report.ok = False
            else:
                report.passed += 1
    return report
