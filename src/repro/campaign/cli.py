"""The ``qdd-tool campaign`` sub-commands (run / resume / report / diff).

Kept out of :mod:`repro.tool.cli` so the top-level CLI stays a thin
dispatcher; that module registers :func:`add_campaign_parser` and routes
``campaign`` to :func:`cmd_campaign`.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict

from repro.errors import CampaignError

__all__ = ["add_campaign_parser", "cmd_campaign"]

DEFAULT_OUT_ROOT = os.path.join("benchmarks", "results", "campaigns")


def add_campaign_parser(commands) -> None:
    """Register the ``campaign`` subcommand tree on the CLI parser."""
    campaign = commands.add_parser(
        "campaign",
        help="run declarative experiment campaigns (sweeps with resume "
             "and regression gating; see docs/campaigns.md)",
    )
    actions = campaign.add_subparsers(dest="campaign_command", required=True)

    run = actions.add_parser(
        "run", help="run a campaign spec (resumes automatically if the "
                    "output directory already journals this spec)"
    )
    run.add_argument("spec", help="path to a .json or .toml campaign spec")
    _add_run_arguments(run)
    run.add_argument("--fresh", action="store_true",
                     help="discard any existing manifest instead of resuming")

    resume = actions.add_parser(
        "resume", help="resume an interrupted campaign from its output "
                       "directory (uses the spec copy journaled there)"
    )
    resume.add_argument("out", help="campaign output directory")
    resume.add_argument("--workers", type=int, default=None,
                        help="override the spec's worker-process count")
    resume.add_argument("--baseline", metavar="ARTIFACT", default=None,
                        help="gate the finished aggregate against this "
                             "baseline artifact")
    resume.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")

    report = actions.add_parser(
        "report", help="re-aggregate a campaign directory's manifest and "
                       "print the markdown report"
    )
    report.add_argument("out", help="campaign output directory")
    report.add_argument("--json", action="store_true",
                        help="print the aggregate artifact as JSON instead")

    diff = actions.add_parser(
        "diff", help="gate a campaign artifact against a baseline artifact "
                     "(exit 1 on regression)"
    )
    diff.add_argument("current", help="new artifact (file or campaign dir)")
    diff.add_argument("baseline", help="baseline artifact (file or dir)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff report as JSON")


def _add_run_arguments(parser) -> None:
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="output directory (default: "
                             f"{DEFAULT_OUT_ROOT}/<campaign-name>)")
    parser.add_argument("--workers", type=int, default=None,
                        help="override the spec's worker-process count "
                             "(0 = run cells inline)")
    parser.add_argument("--seed-offset", type=int, default=0,
                        help="shift every seed in the spec (CI seed rotation)")
    parser.add_argument("--baseline", metavar="ARTIFACT", default=None,
                        help="gate the finished aggregate against this "
                             "baseline artifact (exit 1 on regression)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")


def cmd_campaign(args) -> int:
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "report": _cmd_report,
        "diff": _cmd_diff,
    }
    return handlers[args.campaign_command](args)


def _progress(quiet: bool):
    if quiet:
        return lambda message: None
    return lambda message: print(message, file=sys.stderr)


def _finish(artifact: Dict[str, Any], out_dir: str, baseline_path) -> int:
    from repro.campaign.report import ARTIFACT_NAME, REPORT_NAME, TIMELINE_NAME

    summary = artifact["summary"]
    print(
        f"campaign {artifact['campaign']}: {summary['ok']}/{summary['cells_total']} "
        f"cells ok in {summary['wall_seconds_total']:.2f}s "
        f"({', '.join(f'{k}={v}' for k, v in summary['statuses'].items())})"
    )
    for name in (ARTIFACT_NAME, REPORT_NAME, TIMELINE_NAME):
        print(f"wrote {os.path.join(out_dir, name)}")
    exit_code = 0 if summary["ok"] == summary["cells_total"] else 1
    if baseline_path:
        exit_code = max(exit_code, _gate(artifact, baseline_path))
    return exit_code


def _gate(artifact: Dict[str, Any], baseline_path: str) -> int:
    from repro.campaign.gating import diff_artifacts
    from repro.campaign.report import load_artifact

    baseline = load_artifact(baseline_path)
    report = diff_artifacts(artifact, baseline)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_run(args) -> int:
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import load_spec

    spec = load_spec(args.spec)
    out_dir = args.out or os.path.join(DEFAULT_OUT_ROOT, spec.name)
    artifact = run_campaign(
        spec,
        out_dir,
        workers=args.workers,
        seed_offset=args.seed_offset,
        progress=_progress(args.quiet),
        fresh=args.fresh,
    )
    return _finish(artifact, out_dir, args.baseline)


def _cmd_resume(args) -> int:
    from repro.campaign.executor import SPEC_COPY_NAME, run_campaign
    from repro.campaign.spec import parse_spec

    spec_path = os.path.join(args.out, SPEC_COPY_NAME)
    if not os.path.exists(spec_path):
        raise CampaignError(
            f"{args.out} has no {SPEC_COPY_NAME} — was a campaign started "
            "there? (use `campaign run <spec> --out` for a first run)"
        )
    with open(spec_path, "r", encoding="utf-8") as handle:
        spec = parse_spec(json.load(handle))
    artifact = run_campaign(
        spec,
        args.out,
        workers=args.workers,
        progress=_progress(args.quiet),
    )
    return _finish(artifact, args.out, args.baseline)


def _cmd_report(args) -> int:
    from repro.campaign.executor import MANIFEST_NAME, Manifest, SPEC_COPY_NAME
    from repro.campaign.planner import expand_plan
    from repro.campaign.report import aggregate, markdown_report, write_outputs
    from repro.campaign.spec import parse_spec

    spec_path = os.path.join(args.out, SPEC_COPY_NAME)
    manifest = Manifest(os.path.join(args.out, MANIFEST_NAME))
    if not os.path.exists(spec_path) or not manifest.exists():
        raise CampaignError(
            f"{args.out} is not a campaign directory "
            f"(missing {SPEC_COPY_NAME} or {MANIFEST_NAME})"
        )
    with open(spec_path, "r", encoding="utf-8") as handle:
        spec = parse_spec(json.load(handle))
    _, records = manifest.load()
    artifact = aggregate(spec, records, planned=expand_plan(spec))
    write_outputs(args.out, artifact)
    if args.json:
        print(json.dumps(artifact, indent=2, sort_keys=True))
    else:
        print(markdown_report(artifact))
    return 0


def _cmd_diff(args) -> int:
    from repro.campaign.gating import diff_artifacts
    from repro.campaign.report import load_artifact

    current = load_artifact(args.current)
    baseline = load_artifact(args.baseline)
    report = diff_artifacts(current, baseline)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1
