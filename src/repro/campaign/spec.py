"""Declarative campaign specifications — the *what* of an experiment sweep.

A campaign spec names a cross-product of experiment *cells*: circuit
family × size × seed × repetition × :class:`~repro.dd.package.DDPackage`
configuration.  The spec is plain data (JSON, or TOML on interpreters
with :mod:`tomllib`), so a sweep lives next to the code as one reviewed,
versioned file instead of a nest of ad-hoc ``for`` loops in a benchmark
script.

The schema (``qdd-campaign-spec-v1``) is intentionally small::

    {
      "name": "example",
      "description": "...",
      "cells": {
        "families": [
          {"family": "qft", "sizes": [3, 4, 5], "mode": "simulate"},
          {"family": "grover", "sizes": [3, 4, 5], "params": {"marked": 1}}
        ],
        "seeds": [0, 1],
        "repetitions": 1,
        "shots": 0,
        "packages": [
          {"label": "pooled", "storage": "pooled"},
          {"label": "object", "storage": "object"}
        ]
      },
      "execution": {"workers": 0, "cell_timeout": 120.0},
      "gates": [
        {"metric": "final_nodes", "tolerance_pct": 0.0}
      ]
    }

Unknown keys anywhere in the spec are rejected — a typoed option must
fail loudly at load time, not silently run the default sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CampaignSpecError

__all__ = [
    "SPEC_FORMAT",
    "CELL_MODES",
    "GATE_DIRECTIONS",
    "PackageSpec",
    "FamilySpec",
    "GateSpec",
    "CampaignSpec",
    "load_spec",
    "parse_spec",
    "spec_digest",
]

SPEC_FORMAT = "qdd-campaign-spec-v1"

#: How a cell turns its circuit/vector into a decision diagram.
CELL_MODES = ("simulate", "functionality", "dense")

#: Which direction of metric drift a gate fails on.
GATE_DIRECTIONS = ("both", "increase", "decrease")

_STORAGE_BACKENDS = (None, "pooled", "object")
_VECTOR_SCHEMES = (None, "l2", "max-magnitude")
_REORDER_MODES = ("off", "manual", "pressure")


def _require_keys(mapping: Dict[str, Any], allowed: Sequence[str], where: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise CampaignSpecError(
            f"{where}: unknown key(s) {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _int_list(value: Any, where: str, minimum: int = 0) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise CampaignSpecError(f"{where} must be a non-empty list of integers")
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise CampaignSpecError(f"{where} must contain only integers, got {item!r}")
        if item < minimum:
            raise CampaignSpecError(f"{where} entries must be >= {minimum}, got {item}")
        out.append(int(item))
    return tuple(out)


@dataclass(frozen=True)
class PackageSpec:
    """One :class:`~repro.dd.package.DDPackage` configuration axis value."""

    label: str
    storage: Optional[str] = None
    use_apply_kernels: bool = True
    tolerance: Optional[float] = None
    vector_scheme: Optional[str] = None
    sanitize_every: Optional[int] = None
    budget_nodes: int = 0
    budget_bytes: int = 0
    budget_check_interval: Optional[int] = None
    reorder: str = "off"
    identity_skipping: bool = False

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "PackageSpec":
        if not isinstance(data, dict):
            raise CampaignSpecError(f"{where} must be an object")
        _require_keys(
            data,
            ("label", "storage", "use_apply_kernels", "tolerance",
             "vector_scheme", "sanitize_every", "budget_nodes", "budget_bytes",
             "budget_check_interval", "reorder", "identity_skipping"),
            where,
        )
        label = data.get("label")
        if not isinstance(label, str) or not label:
            raise CampaignSpecError(f"{where}: every package needs a non-empty 'label'")
        storage = data.get("storage")
        if storage not in _STORAGE_BACKENDS:
            raise CampaignSpecError(
                f"{where}: storage must be one of 'pooled'/'object', got {storage!r}"
            )
        scheme = data.get("vector_scheme")
        if scheme not in _VECTOR_SCHEMES:
            raise CampaignSpecError(
                f"{where}: vector_scheme must be 'l2' or 'max-magnitude', "
                f"got {scheme!r}"
            )
        tolerance = data.get("tolerance")
        if tolerance is not None and (
            not isinstance(tolerance, (int, float)) or tolerance <= 0
        ):
            raise CampaignSpecError(f"{where}: tolerance must be a positive number")
        sanitize_every = data.get("sanitize_every")
        if sanitize_every is not None and (
            isinstance(sanitize_every, bool)
            or not isinstance(sanitize_every, int)
            or sanitize_every < 1
        ):
            raise CampaignSpecError(f"{where}: sanitize_every must be a positive integer")
        for key in ("budget_nodes", "budget_bytes"):
            value = data.get(key, 0)
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise CampaignSpecError(f"{where}: {key} must be a non-negative integer")
        check_interval = data.get("budget_check_interval")
        if check_interval is not None and (
            isinstance(check_interval, bool)
            or not isinstance(check_interval, int)
            or check_interval < 1
        ):
            raise CampaignSpecError(
                f"{where}: budget_check_interval must be a positive integer"
            )
        reorder = data.get("reorder", "off")
        if reorder not in _REORDER_MODES:
            raise CampaignSpecError(
                f"{where}: reorder must be one of "
                f"{'/'.join(repr(m) for m in _REORDER_MODES)}, got {reorder!r}"
            )
        return cls(
            label=label,
            storage=storage,
            use_apply_kernels=bool(data.get("use_apply_kernels", True)),
            tolerance=float(tolerance) if tolerance is not None else None,
            vector_scheme=scheme,
            sanitize_every=sanitize_every,
            budget_nodes=int(data.get("budget_nodes", 0)),
            budget_bytes=int(data.get("budget_bytes", 0)),
            budget_check_interval=check_interval,
            reorder=reorder,
            identity_skipping=bool(data.get("identity_skipping", False)),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "storage": self.storage,
            "use_apply_kernels": self.use_apply_kernels,
            "tolerance": self.tolerance,
            "vector_scheme": self.vector_scheme,
            "sanitize_every": self.sanitize_every,
            "budget_nodes": self.budget_nodes,
            "budget_bytes": self.budget_bytes,
            "budget_check_interval": self.budget_check_interval,
            "reorder": self.reorder,
            "identity_skipping": self.identity_skipping,
        }


@dataclass(frozen=True)
class FamilySpec:
    """One circuit-family axis value with its sizes and builder params."""

    family: str
    sizes: Tuple[int, ...]
    label: Optional[str] = None
    mode: str = "simulate"
    shots: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "FamilySpec":
        if not isinstance(data, dict):
            raise CampaignSpecError(f"{where} must be an object")
        _require_keys(
            data, ("family", "sizes", "label", "mode", "shots", "params"), where
        )
        family = data.get("family")
        if not isinstance(family, str) or not family:
            raise CampaignSpecError(f"{where}: every entry needs a 'family' name")
        from repro.campaign.jobs import known_families

        if family not in known_families():
            raise CampaignSpecError(
                f"{where}: unknown family {family!r} "
                f"(known: {', '.join(sorted(known_families()))})"
            )
        mode = data.get("mode", "simulate")
        if mode not in CELL_MODES:
            raise CampaignSpecError(
                f"{where}: mode must be one of {', '.join(CELL_MODES)}, got {mode!r}"
            )
        shots = data.get("shots")
        if shots is not None and (
            isinstance(shots, bool) or not isinstance(shots, int) or shots < 0
        ):
            raise CampaignSpecError(f"{where}: shots must be a non-negative integer")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise CampaignSpecError(f"{where}: params must be an object")
        label = data.get("label")
        if label is not None and (not isinstance(label, str) or not label):
            raise CampaignSpecError(f"{where}: label must be a non-empty string")
        if not data.get("sizes"):
            raise CampaignSpecError(
                f"{where}: every family needs a non-empty 'sizes' list"
            )
        return cls(
            family=family,
            sizes=_int_list(data["sizes"], f"{where}.sizes", minimum=1),
            label=label,
            mode=mode,
            shots=shots,
            params=dict(params),
        )

    @property
    def display(self) -> str:
        return self.label or self.family

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "sizes": list(self.sizes),
            "label": self.label,
            "mode": self.mode,
            "shots": self.shots,
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class GateSpec:
    """A regression gate: how far ``metric`` may drift from the baseline.

    The allowed drift is ``max(tolerance_abs, |baseline| * tolerance_pct
    / 100)``; ``direction`` limits which sign of drift fails the gate.
    """

    metric: str
    tolerance_pct: float = 0.0
    tolerance_abs: float = 0.0
    direction: str = "both"

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "GateSpec":
        if not isinstance(data, dict):
            raise CampaignSpecError(f"{where} must be an object")
        _require_keys(
            data, ("metric", "tolerance_pct", "tolerance_abs", "direction"), where
        )
        metric = data.get("metric")
        if not isinstance(metric, str) or not metric:
            raise CampaignSpecError(f"{where}: every gate needs a 'metric' name")
        direction = data.get("direction", "both")
        if direction not in GATE_DIRECTIONS:
            raise CampaignSpecError(
                f"{where}: direction must be one of "
                f"{', '.join(GATE_DIRECTIONS)}, got {direction!r}"
            )
        tolerances = {}
        for key in ("tolerance_pct", "tolerance_abs"):
            value = data.get(key, 0.0)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise CampaignSpecError(f"{where}: {key} must be a number")
            if value < 0:
                raise CampaignSpecError(f"{where}: {key} must be >= 0, got {value}")
            tolerances[key] = float(value)
        return cls(metric=metric, direction=direction, **tolerances)

    def allowance(self, baseline: float) -> float:
        return max(self.tolerance_abs, abs(baseline) * self.tolerance_pct / 100.0)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "tolerance_pct": self.tolerance_pct,
            "tolerance_abs": self.tolerance_abs,
            "direction": self.direction,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A fully-validated campaign: axes, execution knobs, and gates."""

    name: str
    description: str
    families: Tuple[FamilySpec, ...]
    seeds: Tuple[int, ...]
    repetitions: int
    shots: int
    packages: Tuple[PackageSpec, ...]
    workers: int
    cell_timeout: float
    gates: Tuple[GateSpec, ...]

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form (also the digest input)."""
        return {
            "format": SPEC_FORMAT,
            "name": self.name,
            "description": self.description,
            "cells": {
                "families": [family.as_dict() for family in self.families],
                "seeds": list(self.seeds),
                "repetitions": self.repetitions,
                "shots": self.shots,
                "packages": [package.as_dict() for package in self.packages],
            },
            "execution": {
                "workers": self.workers,
                "cell_timeout": self.cell_timeout,
            },
            "gates": [gate.as_dict() for gate in self.gates],
        }

    @property
    def digest(self) -> str:
        return spec_digest(self)


def spec_digest(spec: CampaignSpec) -> str:
    """A stable identity for the spec — resume refuses a changed sweep."""
    canonical = json.dumps(spec.as_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def parse_spec(data: Dict[str, Any]) -> CampaignSpec:
    """Validate a decoded spec document into a :class:`CampaignSpec`."""
    if not isinstance(data, dict):
        raise CampaignSpecError("a campaign spec must be a JSON/TOML object")
    _require_keys(
        data, ("format", "name", "description", "cells", "execution", "gates"),
        "spec",
    )
    fmt = data.get("format", SPEC_FORMAT)
    if fmt != SPEC_FORMAT:
        raise CampaignSpecError(
            f"unsupported spec format {fmt!r} (expected {SPEC_FORMAT!r})"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise CampaignSpecError("spec: a non-empty 'name' is required")
    if any(ch in name for ch in "/\\ \t\n"):
        raise CampaignSpecError(
            "spec: 'name' must not contain spaces or path separators"
        )
    description = data.get("description", "")
    if not isinstance(description, str):
        raise CampaignSpecError("spec: 'description' must be a string")

    cells = data.get("cells")
    if not isinstance(cells, dict):
        raise CampaignSpecError("spec: a 'cells' object is required")
    _require_keys(
        cells, ("families", "seeds", "repetitions", "shots", "packages"),
        "spec.cells",
    )
    raw_families = cells.get("families")
    if not isinstance(raw_families, list) or not raw_families:
        raise CampaignSpecError("spec.cells: a non-empty 'families' list is required")
    families = tuple(
        FamilySpec.from_dict(entry, f"spec.cells.families[{index}]")
        for index, entry in enumerate(raw_families)
    )
    labels = [family.display for family in families]
    if len(set(labels)) != len(labels):
        raise CampaignSpecError(
            "spec.cells.families: duplicate family labels — give repeated "
            "families distinct 'label's"
        )
    seeds = _int_list(cells.get("seeds", [0]), "spec.cells.seeds")
    repetitions = cells.get("repetitions", 1)
    if isinstance(repetitions, bool) or not isinstance(repetitions, int) or repetitions < 1:
        raise CampaignSpecError("spec.cells.repetitions must be a positive integer")
    shots = cells.get("shots", 0)
    if isinstance(shots, bool) or not isinstance(shots, int) or shots < 0:
        raise CampaignSpecError("spec.cells.shots must be a non-negative integer")
    raw_packages = cells.get("packages") or [{"label": "default"}]
    if not isinstance(raw_packages, list):
        raise CampaignSpecError("spec.cells.packages must be a list")
    packages = tuple(
        PackageSpec.from_dict(entry, f"spec.cells.packages[{index}]")
        for index, entry in enumerate(raw_packages)
    )
    package_labels = [package.label for package in packages]
    if len(set(package_labels)) != len(package_labels):
        raise CampaignSpecError("spec.cells.packages: duplicate package labels")

    execution = data.get("execution", {})
    if not isinstance(execution, dict):
        raise CampaignSpecError("spec.execution must be an object")
    _require_keys(execution, ("workers", "cell_timeout"), "spec.execution")
    workers = execution.get("workers", 0)
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 0:
        raise CampaignSpecError("spec.execution.workers must be a non-negative integer")
    cell_timeout = execution.get("cell_timeout", 120.0)
    if (
        isinstance(cell_timeout, bool)
        or not isinstance(cell_timeout, (int, float))
        or cell_timeout <= 0
    ):
        raise CampaignSpecError("spec.execution.cell_timeout must be a positive number")

    raw_gates = data.get("gates", [])
    if not isinstance(raw_gates, list):
        raise CampaignSpecError("spec.gates must be a list")
    gates = tuple(
        GateSpec.from_dict(entry, f"spec.gates[{index}]")
        for index, entry in enumerate(raw_gates)
    )
    gate_metrics = [gate.metric for gate in gates]
    if len(set(gate_metrics)) != len(gate_metrics):
        raise CampaignSpecError("spec.gates: duplicate gate for the same metric")

    return CampaignSpec(
        name=name,
        description=description,
        families=families,
        seeds=seeds,
        repetitions=repetitions,
        shots=shots,
        packages=packages,
        workers=workers,
        cell_timeout=float(cell_timeout),
        gates=gates,
    )


def load_spec(path: str) -> CampaignSpec:
    """Load and validate a campaign spec from a ``.json`` or ``.toml`` file."""
    if not os.path.exists(path):
        raise CampaignSpecError(f"campaign spec not found: {path}")
    lowered = path.lower()
    with open(path, "rb") as handle:
        raw = handle.read()
    if lowered.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11
            raise CampaignSpecError(
                "TOML specs need Python 3.11+ (tomllib); use JSON instead"
            )
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
            raise CampaignSpecError(f"{path}: invalid TOML: {error}")
    else:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CampaignSpecError(f"{path}: invalid JSON: {error}")
    spec = parse_spec(data)
    _resolve_relative_paths(spec, os.path.dirname(os.path.abspath(path)))
    return spec


def _resolve_relative_paths(spec: CampaignSpec, base_dir: str) -> None:
    """Resolve family ``params.path`` entries relative to the spec file."""
    for family in spec.families:
        path = family.params.get("path")
        if isinstance(path, str) and path and not os.path.isabs(path):
            family.params["path"] = os.path.normpath(os.path.join(base_dir, path))
