"""Campaign planning — expand a spec into deterministic, addressable cells.

Every cell gets a *stable* identifier derived purely from its coordinates
(family label, size, package label, seed, repetition), never from
wall-clock time or execution order.  Those IDs are what the resume
manifest journals and what regression gating joins new and baseline
artifacts on — two runs of the same spec always plan the same cells in
the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.campaign.spec import CampaignSpec, FamilySpec, PackageSpec

__all__ = ["Cell", "cell_id", "expand_plan"]


def cell_id(
    family: FamilySpec, size: int, package: PackageSpec, seed: int, rep: int
) -> str:
    """The deterministic run ID of one cell."""
    return f"{family.display}-n{size}-{package.label}-s{seed}-r{rep}"


@dataclass(frozen=True)
class Cell:
    """One planned experiment: a circuit instance under one package config."""

    cell_id: str
    family: str
    label: str
    size: int
    seed: int
    rep: int
    mode: str
    shots: int
    params: Dict[str, Any] = field(default_factory=dict)
    package: PackageSpec = field(default_factory=lambda: PackageSpec(label="default"))

    def payload(self) -> Dict[str, Any]:
        """The plain-data form shipped to a worker over the job pipe."""
        return {
            "cell_id": self.cell_id,
            "family": self.family,
            "label": self.label,
            "size": self.size,
            "seed": self.seed,
            "rep": self.rep,
            "mode": self.mode,
            "shots": self.shots,
            "params": dict(self.params),
            "package": self.package.as_dict(),
        }


def expand_plan(spec: CampaignSpec, seed_offset: int = 0) -> List[Cell]:
    """Expand the spec's cross-product into an ordered list of cells.

    ``seed_offset`` shifts every seed in the spec — the hook by which CI
    rotates ``BENCH_SEED`` fleet-wide without editing spec files.  The
    shifted seed is part of the cell ID, so offset runs journal and gate
    as distinct campaigns.
    """
    cells: List[Cell] = []
    for family in spec.families:
        shots = spec.shots if family.shots is None else family.shots
        for size in family.sizes:
            for package in spec.packages:
                for seed in spec.seeds:
                    effective_seed = seed + seed_offset
                    for rep in range(spec.repetitions):
                        cells.append(
                            Cell(
                                cell_id=cell_id(
                                    family, size, package, effective_seed, rep
                                ),
                                family=family.family,
                                label=family.display,
                                size=size,
                                seed=effective_seed,
                                rep=rep,
                                mode=family.mode,
                                shots=shots,
                                params=dict(family.params),
                                package=package,
                            )
                        )
    seen: Dict[str, Cell] = {}
    for cell in cells:
        if cell.cell_id in seen:
            # Can only happen via seed collisions after offsetting
            # (e.g. seeds [0, 1] with repetitions over the same family);
            # refuse rather than silently dropping work.
            from repro.errors import CampaignSpecError

            raise CampaignSpecError(
                f"duplicate cell id {cell.cell_id!r} after expansion — "
                "check for duplicate seeds"
            )
        seen[cell.cell_id] = cell
    return cells
