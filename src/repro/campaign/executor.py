"""Campaign execution — parallel cells, crash isolation, resumable journal.

The executor owns three responsibilities:

* **Parallelism.**  Cells run through the service's
  :class:`~repro.service.workers.WorkerPool`: each worker process owns the
  cell for its duration, the pool's request watchdog enforces the spec's
  per-cell timeout (an overrunning worker is *killed* and replaced), and a
  worker crash fails only its own cell.  ``workers = 0`` runs cells inline
  in this process — no subprocess machinery, same job function.

* **Durability.**  Progress journals to ``manifest.jsonl`` in the output
  directory: a header line naming the campaign and its spec digest, then
  one fsync'd JSON line per finished cell.  A killed campaign loses at
  most the cells that were in flight; re-running the same spec against the
  same directory skips every journaled ``ok`` cell and re-attempts only
  failed/missing ones.  A *changed* spec (different digest) is refused —
  half of campaign A plus half of campaign B is not a campaign.

* **Isolation of failure classes.**  Each cell lands in exactly one
  status: ``ok``, ``timeout`` (watchdog killed it), ``crashed`` (worker
  died), or ``failed`` (the cell raised).  A failing cell never aborts
  the sweep; the aggregate records what happened where.
"""

from __future__ import annotations

import json
import os
import threading
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.jobs import (
    CAMPAIGN_JOB_KIND,
    campaign_cell_job,
    install_campaign_jobs,
)
from repro.campaign.planner import Cell, expand_plan
from repro.campaign.spec import CampaignSpec
from repro.errors import (
    CampaignError,
    JobTimeoutError,
    ServiceUnavailableError,
)
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = ["Manifest", "run_campaign", "MANIFEST_NAME", "SPEC_COPY_NAME"]

MANIFEST_NAME = "manifest.jsonl"
SPEC_COPY_NAME = "spec.json"

#: Statuses that count as completed (skipped on resume).
_DONE_STATUSES = ("ok",)


class Manifest:
    """The append-only cell journal backing resume.

    Records are one JSON object per line.  Appends are flushed and
    fsync'd under a lock so a SIGKILL can lose at most a partially
    written trailing line — which :meth:`load` tolerates and discards.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def write_header(self, spec: CampaignSpec, planned: int) -> None:
        header = {
            "kind": "header",
            "campaign": spec.name,
            "spec_digest": spec.digest,
            "planned_cells": planned,
        }
        with self._lock, open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock, open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> Tuple[Optional[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
        """Read ``(header, {cell_id: record})``; corrupt lines are skipped.

        Later records win for a repeated cell ID, so a cell re-attempted
        after a failure is represented by its latest outcome.
        """
        header: Optional[Dict[str, Any]] = None
        records: Dict[str, Dict[str, Any]] = {}
        if not self.exists():
            return header, records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A SIGKILL mid-append leaves one torn trailing line;
                    # that cell simply re-runs.
                    continue
                if not isinstance(entry, dict):
                    continue
                if entry.get("kind") == "header":
                    header = entry
                elif entry.get("cell_id"):
                    records[entry["cell_id"]] = entry
        return header, records


def _classify_failure(error: BaseException) -> str:
    if isinstance(error, JobTimeoutError):
        return "timeout"
    if isinstance(error, ServiceUnavailableError):
        return "crashed"
    return "failed"


def _campaign_metrics(registry: MetricsRegistry):
    return {
        "seconds": registry.histogram("campaign_cell_seconds", DEFAULT_TIME_BUCKETS),
        "status": {
            status: registry.counter("campaign_cells_total", {"status": status})
            for status in ("ok", "failed", "timeout", "crashed", "skipped")
        },
    }


def run_campaign(
    spec: CampaignSpec,
    out_dir: str,
    workers: Optional[int] = None,
    seed_offset: int = 0,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
    fresh: bool = False,
) -> Dict[str, Any]:
    """Run (or resume) ``spec`` into ``out_dir`` and return the aggregate.

    ``workers`` overrides the spec's worker count; ``fresh`` discards any
    existing manifest instead of resuming.  The returned artifact is also
    written to ``out_dir`` alongside the markdown report and timeline SVG
    (see :mod:`repro.campaign.report`).
    """
    from repro.campaign.report import aggregate, write_outputs

    say = progress or (lambda message: None)
    registry = registry if registry is not None else MetricsRegistry()
    metrics = _campaign_metrics(registry)
    remaining_gauge = registry.gauge("campaign_cells_remaining")

    if seed_offset:
        # Fold the offset into the spec itself: the digest, the journaled
        # spec copy, and the cell IDs then all agree, and `campaign
        # resume` (which replans from the copy) continues the right sweep.
        from dataclasses import replace

        spec = replace(
            spec, seeds=tuple(seed + seed_offset for seed in spec.seeds)
        )
    cells = expand_plan(spec)
    os.makedirs(out_dir, exist_ok=True)
    manifest = Manifest(os.path.join(out_dir, MANIFEST_NAME))

    completed: Dict[str, Dict[str, Any]] = {}
    if manifest.exists() and not fresh:
        header, records = manifest.load()
        if header is not None and header.get("spec_digest") != spec.digest:
            raise CampaignError(
                f"{manifest.path} journals a different campaign "
                f"(spec digest {header.get('spec_digest', '?')[:12]}… vs "
                f"{spec.digest[:12]}…); pass --fresh to discard it"
            )
        completed = {
            cell_id: record
            for cell_id, record in records.items()
            if record.get("status") in _DONE_STATUSES
        }
        if completed:
            say(f"resuming: {len(completed)}/{len(cells)} cells already done")
    if not manifest.exists() or fresh:
        manifest.write_header(spec, planned=len(cells))

    # Persist the expanded spec next to the journal so `campaign resume`
    # and `campaign report` can operate on the directory alone.
    spec_copy = os.path.join(out_dir, SPEC_COPY_NAME)
    with open(spec_copy, "w", encoding="utf-8") as handle:
        json.dump(spec.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")

    pending = [cell for cell in cells if cell.cell_id not in completed]
    for cell in cells:
        if cell.cell_id in completed:
            metrics["status"]["skipped"].inc()
    remaining_gauge.set(len(pending))

    worker_count = spec.workers if workers is None else max(0, int(workers))
    install_campaign_jobs()  # parent side: inline pools and forked children
    from repro.service.workers import WorkerPool

    results: Dict[str, Dict[str, Any]] = dict(completed)
    results_lock = threading.Lock()

    def execute(pool: "WorkerPool", cell: Cell) -> None:
        payload = json.dumps(cell.payload(), sort_keys=True)
        started = perf_counter()
        try:
            outcome = pool.submit(CAMPAIGN_JOB_KIND, campaign_cell_job, payload)
            record = {
                "cell_id": cell.cell_id,
                "status": "ok",
                "metrics": outcome.get("metrics", {}),
                "timing": outcome.get("timing", {}),
                "counts": outcome.get("counts"),
                "error": None,
            }
        except Exception as error:  # noqa: BLE001 — a cell must never abort the sweep
            status = _classify_failure(error)
            record = {
                "cell_id": cell.cell_id,
                "status": status,
                "metrics": {},
                "timing": {"wall_seconds": perf_counter() - started},
                "counts": None,
                "error": f"{type(error).__name__}: {error}",
            }
        metrics["status"][record["status"]].inc()
        metrics["seconds"].observe(perf_counter() - started)
        manifest.append(record)
        with results_lock:
            results[cell.cell_id] = record
            remaining_gauge.set(len(cells) - len(results))
        say(
            f"[{len(results)}/{len(cells)}] {cell.cell_id}: {record['status']}"
        )

    pool = WorkerPool(
        workers=worker_count,
        job_timeout=spec.cell_timeout,
        request_deadline=spec.cell_timeout,
        registry=registry,
    )
    try:
        if worker_count <= 1 or len(pending) <= 1:
            for cell in pending:
                execute(pool, cell)
        else:
            # One submitting thread per worker: `pool.submit` blocks on a
            # worker checkout, so this saturates the pool without
            # outrunning it.
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=worker_count) as threads:
                futures = [
                    threads.submit(execute, pool, cell) for cell in pending
                ]
                for future in futures:
                    future.result()
    finally:
        pool.close()

    artifact = aggregate(spec, results, planned=cells)
    write_outputs(out_dir, artifact)
    return artifact
