"""Declarative experiment campaigns over the worker pool.

``repro.campaign`` turns the repo's one-off benchmark sweeps into
versioned, resumable, gated experiment campaigns:

* :mod:`repro.campaign.spec` — JSON/TOML campaign specifications;
* :mod:`repro.campaign.planner` — deterministic cell expansion and IDs;
* :mod:`repro.campaign.jobs` — the per-cell job workers execute;
* :mod:`repro.campaign.executor` — parallel execution, per-cell timeouts,
  crash isolation, and the resumable ``manifest.jsonl`` journal;
* :mod:`repro.campaign.report` — the aggregate artifact, markdown report,
  and timeline SVG;
* :mod:`repro.campaign.gating` — regression gating against a baseline.

See ``docs/campaigns.md`` and ``qdd-tool campaign --help``.
"""

from repro.campaign.executor import Manifest, run_campaign
from repro.campaign.gating import DiffReport, GateFinding, diff_artifacts
from repro.campaign.jobs import (
    build_family,
    install_campaign_jobs,
    known_families,
    register_family,
    run_cell,
)
from repro.campaign.planner import Cell, expand_plan
from repro.campaign.report import (
    aggregate,
    deterministic_view,
    load_artifact,
    markdown_report,
)
from repro.campaign.spec import (
    CampaignSpec,
    FamilySpec,
    GateSpec,
    PackageSpec,
    load_spec,
    parse_spec,
)

__all__ = [
    "CampaignSpec",
    "Cell",
    "DiffReport",
    "FamilySpec",
    "GateFinding",
    "GateSpec",
    "Manifest",
    "PackageSpec",
    "aggregate",
    "build_family",
    "deterministic_view",
    "diff_artifacts",
    "expand_plan",
    "install_campaign_jobs",
    "known_families",
    "load_artifact",
    "load_spec",
    "markdown_report",
    "parse_spec",
    "register_family",
    "run_campaign",
    "run_cell",
]
