"""Campaign aggregation — one artifact, one markdown report, one timeline.

The aggregate artifact (``qdd-campaign-artifact-v1``) is the campaign's
single versioned output: every cell's status and metrics, keyed by the
planner's deterministic cell IDs, plus per-series summaries.  It is what
regression gating (:mod:`repro.campaign.gating`) joins against a stored
baseline, and what replaces the historical scatter of per-benchmark JSON
files under ``benchmarks/results/``.

Determinism contract: everything outside ``timing`` blocks (and the
``counts`` histograms, which depend only on the seed) is reproducible for
a given spec, seed set, and code version.  :func:`deterministic_view`
strips the timing so callers can compare artifacts for exact equality.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.planner import Cell
from repro.campaign.spec import CampaignSpec

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_NAME",
    "REPORT_NAME",
    "TIMELINE_NAME",
    "aggregate",
    "deterministic_view",
    "load_artifact",
    "markdown_report",
    "timeline_svg_for",
    "write_outputs",
]

ARTIFACT_FORMAT = "qdd-campaign-artifact-v1"
ARTIFACT_NAME = "artifact.json"
REPORT_NAME = "report.md"
TIMELINE_NAME = "timeline.svg"


def aggregate(
    spec: CampaignSpec,
    records: Dict[str, Dict[str, Any]],
    planned: Sequence[Cell],
) -> Dict[str, Any]:
    """Fold per-cell records into the campaign artifact."""
    cells: Dict[str, Dict[str, Any]] = {}
    statuses: Dict[str, int] = {}
    wall_total = 0.0
    for cell in planned:
        record = records.get(cell.cell_id)
        if record is None:
            entry = {
                "status": "missing",
                "metrics": {},
                "timing": {},
                "counts": None,
                "error": "cell was never executed",
            }
        else:
            entry = {
                "status": record.get("status", "failed"),
                "metrics": record.get("metrics", {}),
                "timing": record.get("timing", {}),
                "counts": record.get("counts"),
                "error": record.get("error"),
            }
        entry["coordinates"] = {
            "family": cell.family,
            "label": cell.label,
            "size": cell.size,
            "package": cell.package.label,
            "seed": cell.seed,
            "rep": cell.rep,
            "mode": cell.mode,
        }
        statuses[entry["status"]] = statuses.get(entry["status"], 0) + 1
        wall_total += float(entry["timing"].get("wall_seconds") or 0.0)
        cells[cell.cell_id] = entry

    return {
        "format": ARTIFACT_FORMAT,
        "campaign": spec.name,
        "description": spec.description,
        "spec_digest": spec.digest,
        "spec": spec.as_dict(),
        "cells": {cell_id: cells[cell_id] for cell_id in sorted(cells)},
        "series": _series(cells),
        "summary": {
            "cells_total": len(planned),
            "statuses": dict(sorted(statuses.items())),
            "ok": statuses.get("ok", 0),
            "wall_seconds_total": wall_total,
        },
    }


def _series(cells: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-(label, size, package) summaries across seeds and repetitions."""
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for entry in cells.values():
        coords = entry["coordinates"]
        key = (coords["label"], coords["size"], coords["package"])
        groups.setdefault(key, []).append(entry)
    series = []
    for (label, size, package), members in sorted(groups.items()):
        ok = [m for m in members if m["status"] == "ok"]
        nodes = [
            m["metrics"].get("final_nodes")
            for m in ok
            if m["metrics"].get("final_nodes") is not None
        ]
        peaks = [
            m["metrics"].get("peak_nodes")
            for m in ok
            if m["metrics"].get("peak_nodes") is not None
        ]
        walls = [
            m["timing"].get("wall_seconds")
            for m in ok
            if m["timing"].get("wall_seconds") is not None
        ]
        series.append(
            {
                "label": label,
                "size": size,
                "package": package,
                "cells": len(members),
                "ok": len(ok),
                "final_nodes_mean": _mean(nodes),
                "peak_nodes_mean": _mean(peaks),
                "wall_seconds_mean": _mean(walls),
            }
        )
    return series


def _mean(values: Sequence[float]) -> Optional[float]:
    values = [float(v) for v in values if v is not None]
    return sum(values) / len(values) if values else None


def deterministic_view(artifact: Dict[str, Any]) -> Dict[str, Any]:
    """The artifact with every wall-clock field removed.

    Two runs of the same spec at the same code version must produce
    identical deterministic views — the property the resume test and the
    default regression gates rely on.
    """
    view = copy.deepcopy(artifact)
    for entry in view.get("cells", {}).values():
        entry.pop("timing", None)
    for row in view.get("series", []):
        row.pop("wall_seconds_mean", None)
    view.get("summary", {}).pop("wall_seconds_total", None)
    return view


def markdown_report(artifact: Dict[str, Any]) -> str:
    """Render the artifact as a human-readable markdown report."""
    summary = artifact["summary"]
    lines = [
        f"# Campaign report: {artifact['campaign']}",
        "",
        artifact.get("description") or "",
        "",
        f"- spec digest: `{artifact['spec_digest'][:16]}…`",
        f"- cells: {summary['cells_total']} total, {summary['ok']} ok "
        f"({', '.join(f'{k}: {v}' for k, v in summary['statuses'].items())})",
        f"- wall time: {summary['wall_seconds_total']:.2f}s (sum over cells)",
        "",
        "## Series (mean over seeds × repetitions)",
        "",
        "| family | n | package | ok/cells | final nodes | peak nodes | wall [ms] |",
        "|---|---:|---|---:|---:|---:|---:|",
    ]
    for row in artifact["series"]:
        wall = row["wall_seconds_mean"]
        lines.append(
            f"| {row['label']} | {row['size']} | {row['package']} "
            f"| {row['ok']}/{row['cells']} "
            f"| {_fmt(row['final_nodes_mean'], '{:.1f}')} "
            f"| {_fmt(row['peak_nodes_mean'], '{:.1f}')} "
            f"| {_fmt(wall * 1e3 if wall is not None else None, '{:.2f}')} |"
        )
    failures = [
        (cell_id, entry)
        for cell_id, entry in artifact["cells"].items()
        if entry["status"] != "ok"
    ]
    if failures:
        lines += ["", "## Failures", ""]
        for cell_id, entry in failures:
            lines.append(f"- `{cell_id}`: {entry['status']} — {entry['error']}")
    lines.append("")
    return "\n".join(lines)


def _fmt(value: Optional[float], pattern: str) -> str:
    return pattern.format(value) if value is not None else "—"


def timeline_svg_for(artifact: Dict[str, Any]) -> str:
    """Per-cell wall-time bars + final-node-count trajectory as SVG."""
    from repro.vis.timeline import timeline_svg

    steps = []
    for cell_id, entry in artifact["cells"].items():
        wall = float(entry["timing"].get("wall_seconds") or 0.0)
        nodes = entry["metrics"].get("final_nodes") or 0
        steps.append((cell_id, wall, int(nodes)))
    if not steps:
        steps = [("(no cells)", 0.0, 0)]
    return timeline_svg(steps, title=f"Campaign {artifact['campaign']}")


def write_outputs(out_dir: str, artifact: Dict[str, Any]) -> Dict[str, str]:
    """Write artifact.json, report.md, and timeline.svg into ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "artifact": os.path.join(out_dir, ARTIFACT_NAME),
        "report": os.path.join(out_dir, REPORT_NAME),
        "timeline": os.path.join(out_dir, TIMELINE_NAME),
    }
    with open(paths["artifact"], "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(paths["report"], "w", encoding="utf-8") as handle:
        handle.write(markdown_report(artifact))
    with open(paths["timeline"], "w", encoding="utf-8") as handle:
        handle.write(timeline_svg_for(artifact))
    return paths


def load_artifact(path: str) -> Dict[str, Any]:
    """Load a campaign artifact, accepting a run directory or a file."""
    from repro.errors import CampaignError

    if os.path.isdir(path):
        path = os.path.join(path, ARTIFACT_NAME)
    if not os.path.exists(path):
        raise CampaignError(f"campaign artifact not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        try:
            artifact = json.load(handle)
        except json.JSONDecodeError as error:
            raise CampaignError(f"{path}: invalid artifact JSON: {error}")
    if not isinstance(artifact, dict) or artifact.get("format") != ARTIFACT_FORMAT:
        raise CampaignError(
            f"{path}: not a campaign artifact (expected format {ARTIFACT_FORMAT!r})"
        )
    return artifact
