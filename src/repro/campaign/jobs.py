"""Campaign cell execution — the job function workers run per cell.

A cell builds its *own* :class:`~repro.dd.package.DDPackage` from the
cell's package options (storage backend, apply kernels, tolerance,
normalization scheme, sanitizer cadence, memory budget), constructs the
circuit for its family/size/seed, runs it in the requested mode, and
returns a plain dict of metrics.  The worker pool's long-lived service
package is deliberately not reused: a campaign's whole point is comparing
package configurations, so every cell starts from a cold, isolated table.

Results split **metrics** (deterministic for a given seed and code
version: node counts, operation counts, table sizes — what regression
gates compare) from **timing** (wall-clock — reported, chartable, but
only gated when a spec explicitly opts a timing metric in).

The job function is module-level, takes one JSON string, and returns a
JSON-able dict so it satisfies the worker-pool pipe protocol
(:mod:`repro.service.workers`).
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Callable, Dict, Tuple

from repro.errors import CampaignError

__all__ = [
    "CAMPAIGN_JOB_KIND",
    "build_family",
    "campaign_cell_job",
    "install_campaign_jobs",
    "known_families",
    "register_family",
    "run_cell",
]

#: Worker-pool dispatch name for campaign cells.
CAMPAIGN_JOB_KIND = "campaign-cell"

#: family name -> builder(size, seed, params) -> ("circuit", QuantumCircuit)
#: or ("vector", ndarray).  Populated lazily; extensible via
#: :func:`register_family`.
_FAMILIES: Dict[str, Callable[..., Tuple[str, Any]]] = {}


def _build_qft(size, seed, params):
    from repro.qc import library

    return "circuit", library.qft(size, include_swaps=params.get("include_swaps", True))


def _build_qft_compiled(size, seed, params):
    from repro.qc import library

    return "circuit", library.qft_compiled(
        size, include_swaps=params.get("include_swaps", True)
    )


def _build_grover(size, seed, params):
    from repro.qc import library

    marked = params.get("marked", (1 << size) - 1)
    return "circuit", library.grover(size, marked, params.get("iterations"))


def _build_ghz(size, seed, params):
    from repro.qc import library

    return "circuit", library.ghz_state(size)


def _build_w(size, seed, params):
    from repro.qc import library

    return "circuit", library.w_state(size)


def _build_random(size, seed, params):
    from repro.qc import library

    depth = params.get("depth")
    if depth is None:
        depth = int(params.get("depth_factor", 4)) * size
    return "circuit", library.random_circuit(
        size,
        depth,
        seed=seed,
        two_qubit_probability=params.get("two_qubit_probability", 0.3),
    )


def _build_bellpairs(size, seed, params):
    """Bell pairs between partner qubits — the variable-order workload.

    ``interleaved`` partners (2i+1, 2i) sit adjacent (DD linear in n);
    otherwise partners (i + n/2, i) sit n/2 apart (DD exponential in n).
    """
    from repro.qc import QuantumCircuit

    if size % 2:
        raise CampaignError("bellpairs needs an even number of qubits")
    interleaved = bool(params.get("interleaved", True))
    circuit = QuantumCircuit(size)
    half = size // 2
    for index in range(half):
        if interleaved:
            top, bottom = 2 * index + 1, 2 * index
        else:
            top, bottom = index + half, index
        circuit.h(top)
        circuit.cx(top, bottom)
    return "circuit", circuit


def _build_dense_random(size, seed, params):
    """A Haar-ish dense random state vector — the exponential worst case."""
    import numpy as np

    rng = np.random.default_rng(seed)
    vector = rng.normal(size=1 << size) + 1j * rng.normal(size=1 << size)
    vector /= np.linalg.norm(vector)
    return "vector", vector


def _build_qasm(size, seed, params):
    """A paper-example circuit loaded from an OpenQASM file (``params.path``)."""
    from repro.qc.qasm.parser import parse_qasm

    path = params.get("path")
    if not path:
        raise CampaignError("the qasm family needs params.path")
    with open(path, "r", encoding="utf-8") as handle:
        return "circuit", parse_qasm(handle.read())


def _ensure_families() -> Dict[str, Callable[..., Tuple[str, Any]]]:
    if not _FAMILIES:
        _FAMILIES.update(
            {
                "qft": _build_qft,
                "qft_compiled": _build_qft_compiled,
                "grover": _build_grover,
                "ghz": _build_ghz,
                "w": _build_w,
                "random": _build_random,
                "bellpairs": _build_bellpairs,
                "dense_random": _build_dense_random,
                "qasm": _build_qasm,
            }
        )
    return _FAMILIES


def known_families() -> Tuple[str, ...]:
    """Names accepted in a spec's ``family`` field."""
    return tuple(_ensure_families())


def register_family(name: str, builder: Callable[..., Tuple[str, Any]]) -> None:
    """Extension point: add a custom circuit family for local campaigns."""
    _ensure_families()[name] = builder


def build_family(
    family: str, size: int, seed: int = 0, params: Dict[str, Any] = None
) -> Tuple[str, Any]:
    """Build one family instance directly: ``("circuit"|"vector", value)``.

    The same builders cells use, exposed for benchmarks and tests that
    want the circuit object itself (e.g. to transform it before running).
    """
    builders = _ensure_families()
    if family not in builders:
        raise CampaignError(f"unknown circuit family {family!r}")
    return builders[family](size, seed, params or {})


def _make_package(options: Dict[str, Any]):
    from repro.dd.governance import MemoryBudget
    from repro.dd.normalization import NormalizationScheme
    from repro.dd.package import DDPackage
    from repro.obs.metrics import MetricsRegistry

    kwargs: Dict[str, Any] = {
        # A dark registry keeps the cell hot path free of instrumentation;
        # campaign-level metrics live in the executor's registry.
        "registry": MetricsRegistry(enabled=False),
        "use_apply_kernels": bool(options.get("use_apply_kernels", True)),
    }
    if options.get("storage"):
        kwargs["storage"] = options["storage"]
    if options.get("tolerance") is not None:
        kwargs["tolerance"] = float(options["tolerance"])
    if options.get("vector_scheme"):
        kwargs["vector_scheme"] = NormalizationScheme(options["vector_scheme"])
    if options.get("sanitize_every"):
        kwargs["sanitize_every"] = int(options["sanitize_every"])
    if options.get("budget_nodes") or options.get("budget_bytes"):
        budget_kwargs = {
            "max_nodes": options.get("budget_nodes") or None,
            "max_bytes": options.get("budget_bytes") or None,
        }
        if options.get("budget_check_interval"):
            budget_kwargs["check_interval"] = int(options["budget_check_interval"])
        kwargs["budget"] = MemoryBudget(**budget_kwargs)
    if options.get("reorder"):
        kwargs["reorder"] = options["reorder"]
    if options.get("identity_skipping"):
        kwargs["identity_skipping"] = True
    return DDPackage(**kwargs)


def run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one planned cell and return its result record."""
    family = payload.get("family")
    builders = _ensure_families()
    if family not in builders:
        raise CampaignError(f"unknown circuit family {family!r}")
    size = int(payload["size"])
    seed = int(payload.get("seed", 0))
    params = payload.get("params") or {}
    mode = payload.get("mode", "simulate")
    shots = int(payload.get("shots") or 0)
    kind, built = builders[family](size, seed, params)

    package = _make_package(payload.get("package") or {})
    start = perf_counter()
    metrics: Dict[str, Any]
    counts = None
    if kind == "vector":
        root = package.incref(package.from_state_vector(built))
        peak_nodes = package.node_count(root)
        if package.reorder_mode == "manual":
            package.reorder()
            root = package._resolve(root)
        metrics = {
            "num_qubits": size,
            "operations": 0,
            "final_nodes": package.node_count(root),
            "peak_nodes": peak_nodes,
        }
        if shots:
            counts = _sample(package, root, shots, seed)
    elif mode == "functionality":
        from repro.errors import CircuitError
        from repro.qc.dd_builder import gate_to_dd
        from repro.qc.operations import BarrierOp

        if built.has_nonunitary_operations:
            raise CircuitError(
                "only purely unitary circuits have a functionality matrix; "
                "remove measurements, resets and classical conditions"
            )
        # Gate-by-gate with incref discipline (new root registered before
        # the old one is released): the governor sees live roots, so
        # pressure-triggered reordering can fire mid-build, and the
        # recorded peak is the true construction peak rather than the
        # final count.
        root = package.incref(package.identity(built.num_qubits))
        peak_nodes = package.node_count(root)
        for operation in built:
            if isinstance(operation, BarrierOp):
                continue
            gate_dd = gate_to_dd(package, operation, built.num_qubits)
            stepped = package.incref(package.multiply(gate_dd, root))
            package.decref(root)
            root = stepped
            peak_nodes = max(peak_nodes, package.node_count(root))
        if package.reorder_mode == "manual":
            package.reorder()
            root = package._resolve(root)
        metrics = {
            "num_qubits": built.num_qubits,
            "operations": len(built),
            "final_nodes": package.node_count(root),
            "peak_nodes": peak_nodes,
        }
    elif mode == "dense":
        from repro.simulation.statevector import StatevectorSimulator

        simulator = StatevectorSimulator(built, seed=seed)
        simulator.run()
        metrics = {
            "num_qubits": built.num_qubits,
            "operations": len(built),
            "final_nodes": None,
            "peak_nodes": None,
        }
    else:  # simulate
        from repro.simulation.simulator import DDSimulator

        simulator = DDSimulator(built, package=package, seed=seed)
        try:
            simulator.run_all()
            if package.reorder_mode == "manual":
                package.reorder()
            metrics = {
                "num_qubits": built.num_qubits,
                "operations": len(built),
                "final_nodes": simulator.node_count(),
                "peak_nodes": simulator.peak_node_count,
                "classical_bits": list(simulator.classical_bits),
            }
            if shots:
                counts = _sample(package, simulator.state, shots, seed)
        finally:
            simulator.close()
    wall_seconds = perf_counter() - start

    if mode != "dense":
        governance = package.governor.stats()
        metrics["complex_entries"] = int(governance["complex_entries"])
        metrics["table_bytes"] = int(governance["table_bytes"])
        metrics["sanitize_runs"] = package.sanitize_runs
        metrics["sanitize_violations"] = package.sanitize_violations
        metrics["reorder_runs"] = package._reorder_runs
        metrics["reorder_swaps"] = package._reorder_swaps
        metrics["identity_skips"] = package.identity_skip_count
    return {
        "cell_id": payload.get("cell_id"),
        "metrics": metrics,
        "timing": {"wall_seconds": wall_seconds},
        "counts": counts,
    }


def _sample(package, root, shots: int, seed: int):
    import numpy as np

    from repro.dd import sampling

    rng = np.random.default_rng(seed)
    return sampling.sample_counts(package, root, shots, rng)


def campaign_cell_job(payload_json: str) -> Dict[str, Any]:
    """Pipe-protocol wrapper: one JSON-string argument in, a dict out."""
    return run_cell(json.loads(payload_json))


def install_campaign_jobs() -> None:
    """Register the cell job with the worker-pool dispatch table.

    Called by the executor before it spawns (or inlines) a pool, and by
    the worker bootstrap so spawn-started children can serve cells too.
    """
    from repro.service import workers

    workers.register_job(CAMPAIGN_JOB_KIND, campaign_cell_job)
