"""The HLS color wheel for complex edge weights (paper Fig. 7(b)).

The complex phase of an edge weight is encoded as the hue on an HLS color
wheel (0 rad -> red, pi/2 -> chartreuse, pi -> cyan, 3pi/2 -> violet), while
the magnitude is reflected in the thickness of the drawn line.  This is the
paper's alternative to cluttered explicit weight labels.
"""

from __future__ import annotations

import colorsys
import math

from repro.dd.complex_table import phase_of


def hls_wheel_color(angle: float, lightness: float = 0.5, saturation: float = 1.0) -> str:
    """Hex color for a phase ``angle`` (radians) on the HLS wheel."""
    hue = (angle / (2.0 * math.pi)) % 1.0
    red, green, blue = colorsys.hls_to_rgb(hue, lightness, saturation)
    return "#{:02x}{:02x}{:02x}".format(
        round(red * 255), round(green * 255), round(blue * 255)
    )


def phase_to_color(weight: complex) -> str:
    """Hex color encoding the complex phase of ``weight``."""
    return hls_wheel_color(phase_of(weight))


def weight_to_width(
    weight: complex, minimum: float = 0.5, maximum: float = 4.0
) -> float:
    """Stroke width encoding the magnitude of ``weight``.

    Magnitudes are clipped to [0, 1] (amplitudes of normalized states);
    the mapping is linear between ``minimum`` and ``maximum``.
    """
    magnitude = min(abs(weight), 1.0)
    return minimum + (maximum - minimum) * magnitude


def pretty_complex(value: complex, digits: int = 4) -> str:
    """Human-readable rendering of a complex weight.

    Recognizes the values ubiquitous in quantum circuits (integers, simple
    fractions and ``1/sqrt(2)^k``) and falls back to rounded ``a+bi``.
    """
    real, imag = value.real, value.imag
    if abs(imag) < 1e-12:
        return _pretty_real(real, digits)
    if abs(real) < 1e-12:
        rendered = _pretty_real(imag, digits)
        if rendered == "1":
            return "i"
        if rendered == "-1":
            return "-i"
        return f"{rendered}i"
    magnitude = abs(value)
    angle = math.degrees(phase_of(value))
    if abs(magnitude - 1.0) < 1e-9:
        return f"e^(i{angle:.0f}\N{DEGREE SIGN})"
    return (
        f"{_pretty_real(real, digits)}"
        f"{'+' if imag >= 0 else '-'}{_pretty_real(abs(imag), digits)}i"
    )


def _pretty_real(value: float, digits: int) -> str:
    if abs(value - round(value)) < 1e-12:
        return str(int(round(value)))
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    sqrt2 = math.sqrt(2.0)
    for power in (1, 2, 3, 4):
        if abs(magnitude - 1.0 / sqrt2**power) < 1e-9:
            if power == 1:
                return f"{sign}1/\N{SQUARE ROOT}2"
            if power % 2 == 0:
                return f"{sign}1/{2 ** (power // 2)}"
            return f"{sign}1/{2 ** (power // 2)}\N{SQUARE ROOT}2"
    for denominator in (2, 3, 4, 8):
        if abs(magnitude - 1.0 / denominator) < 1e-9:
            return f"{sign}1/{denominator}"
    return f"{value:.{digits}g}"
