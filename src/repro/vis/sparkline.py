"""Tiny inline trend charts — the dashboard's latency sparklines.

A sparkline is a word-sized poly-line with no axes: enough to see the
shape of a metric (flat, rising, spiky) at a glance.  The point-mapping
helper :func:`sparkline_points` is shared with the full-size timeline
charts (:mod:`repro.vis.timeline`) so both draw trajectories with the
same geometry: points are centered in equal-width slots, values scale
linearly between ``min_value`` and the series maximum.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import VisualizationError

__all__ = ["sparkline_points", "sparkline_svg"]


def sparkline_points(
    values: Sequence[float],
    width: float,
    height: float,
    x_offset: float = 0.0,
    y_offset: float = 0.0,
    max_value: Optional[float] = None,
    min_value: float = 0.0,
) -> str:
    """Map a value series onto an SVG ``points`` attribute string.

    Index ``i`` lands at the center of the ``i``-th of ``len(values)``
    equal slots across ``width``; values are scaled so ``min_value`` sits
    on the bottom edge and ``max_value`` (default: the series maximum) on
    the top.  A constant series draws along the bottom edge rather than
    dividing by zero.
    """
    if not values:
        raise VisualizationError("at least one value is required")
    slot = width / len(values)
    top = max(max_value if max_value is not None else max(values), min_value)
    span = top - min_value
    base = y_offset + height

    def y(value: float) -> float:
        if span <= 0:
            return base
        clamped = min(max(float(value), min_value), top)
        return base - height * (clamped - min_value) / span

    return " ".join(
        f"{x_offset + slot * (index + 0.5):.1f},{y(value):.1f}"
        for index, value in enumerate(values)
    )


def sparkline_svg(
    values: Sequence[float],
    width: float = 120.0,
    height: float = 28.0,
    stroke: str = "#1f77b4",
    title: Optional[str] = None,
) -> str:
    """A self-contained word-sized trend chart.

    The last value is emphasized with a dot; ``title`` becomes a hover
    tooltip.  Padding of one stroke-width keeps extreme points inside the
    viewport.
    """
    pad = 2.0
    points = sparkline_points(
        values, width - 2 * pad, height - 2 * pad, x_offset=pad, y_offset=pad
    )
    last_x, last_y = points.rsplit(" ", 1)[-1].split(",")
    tooltip = f"<title>{title}</title>" if title else ""
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
        f"{tooltip}"
        f'<polyline points="{points}" fill="none" stroke="{stroke}" '
        f'stroke-width="1.5" stroke-linejoin="round" />'
        f'<circle cx="{last_x}" cy="{last_y}" r="2" fill="{stroke}" />'
        f"</svg>"
    )
