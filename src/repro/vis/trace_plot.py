"""Node-count trace charts — the quantitative view behind paper Fig. 9.

The alternating verification scheme is interesting *because* the diagram
stays small throughout (paper Ex. 12/15).  This module plots that: an SVG
line chart of diagram size versus application step, optionally with a
reference line (e.g. the monolithic 21-node peak), colour-coding which
side (``G`` or ``G'``) each application came from.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import VisualizationError

_WIDTH = 520.0
_HEIGHT = 240.0
_MARGIN_LEFT = 46.0
_MARGIN_BOTTOM = 34.0
_MARGIN_TOP = 30.0
_MARGIN_RIGHT = 16.0

_SIDE_COLORS = {"G": "#1f77b4", "G'": "#d62728", None: "#444444"}


def trace_svg(
    node_counts: Sequence[int],
    sides: Optional[Sequence[str]] = None,
    reference: Optional[Tuple[str, int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a node-count trace as an SVG line chart.

    ``node_counts[k]`` is the diagram size after application ``k``;
    ``sides`` optionally labels each application ``"G"`` or ``"G'"``
    (coloring the markers); ``reference`` draws a horizontal dashed line
    with a label (e.g. ``("monolithic peak", 21)``).
    """
    if not node_counts:
        raise VisualizationError("at least one data point is required")
    if sides is not None and len(sides) != len(node_counts):
        raise VisualizationError("sides must match node_counts in length")
    peak = max(node_counts)
    if reference is not None:
        peak = max(peak, reference[1])
    peak = max(peak, 1)
    plot_width = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
    steps = max(len(node_counts) - 1, 1)

    def x_of(step: int) -> float:
        return _MARGIN_LEFT + plot_width * step / steps

    def y_of(count: float) -> float:
        return _MARGIN_TOP + plot_height * (1.0 - count / peak)

    parts = []
    if title:
        parts.append(
            f'<text x="{_WIDTH / 2:.1f}" y="18" font-size="13" '
            f'text-anchor="middle" font-family="Helvetica, sans-serif">'
            f"{title}</text>"
        )
    # Axes.
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" x2="{_MARGIN_LEFT}" '
        f'y2="{_MARGIN_TOP + plot_height}" stroke="#333" stroke-width="1" />'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + plot_height}" '
        f'x2="{_MARGIN_LEFT + plot_width}" y2="{_MARGIN_TOP + plot_height}" '
        f'stroke="#333" stroke-width="1" />'
    )
    # y ticks: 0, peak/2, peak.
    for value in (0, peak // 2, peak):
        parts.append(
            f'<text x="{_MARGIN_LEFT - 6:.1f}" y="{y_of(value) + 4:.1f}" '
            f'font-size="10" text-anchor="end">{value}</text>'
        )
        parts.append(
            f'<line x1="{_MARGIN_LEFT - 3}" y1="{y_of(value):.1f}" '
            f'x2="{_MARGIN_LEFT}" y2="{y_of(value):.1f}" stroke="#333" />'
        )
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_width / 2:.1f}" '
        f'y="{_HEIGHT - 8:.1f}" font-size="11" text-anchor="middle">'
        "applications</text>"
    )
    parts.append(
        f'<text x="12" y="{_MARGIN_TOP + plot_height / 2:.1f}" '
        f'font-size="11" text-anchor="middle" transform="rotate(-90 12 '
        f'{_MARGIN_TOP + plot_height / 2:.1f})">nodes</text>'
    )
    # Reference line.
    if reference is not None:
        label, value = reference
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y_of(value):.1f}" '
            f'x2="{_MARGIN_LEFT + plot_width:.1f}" y2="{y_of(value):.1f}" '
            f'stroke="#888" stroke-width="1" stroke-dasharray="6,4" />'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT + plot_width:.1f}" '
            f'y="{y_of(value) - 5:.1f}" font-size="10" text-anchor="end" '
            f'fill="#666">{label} ({value})</text>'
        )
    # Poly-line through the data.
    points = " ".join(
        f"{x_of(step):.1f},{y_of(count):.1f}"
        for step, count in enumerate(node_counts)
    )
    parts.append(
        f'<polyline points="{points}" fill="none" stroke="#444444" '
        f'stroke-width="1.5" />'
    )
    # Markers, colored by side.
    for step, count in enumerate(node_counts):
        side = sides[step] if sides is not None else None
        color = _SIDE_COLORS.get(side, "#444444")
        parts.append(
            f'<circle cx="{x_of(step):.1f}" cy="{y_of(count):.1f}" r="3" '
            f'fill="{color}"><title>step {step}: {count} nodes'
            f"{f' ({side})' if side else ''}</title></circle>"
        )
    # Legend when sides are given.
    if sides is not None:
        for offset, side in ((0, "G"), (90, "G'")):
            parts.append(
                f'<circle cx="{_MARGIN_LEFT + 12 + offset}" '
                f'cy="{_MARGIN_TOP - 8:.1f}" r="4" '
                f'fill="{_SIDE_COLORS[side]}" />'
            )
            parts.append(
                f'<text x="{_MARGIN_LEFT + 22 + offset}" '
                f'y="{_MARGIN_TOP - 4:.1f}" font-size="11">from {side}</text>'
            )
    body = "\n  ".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH:.0f}" '
        f'height="{_HEIGHT:.0f}" viewBox="0 0 {_WIDTH:.0f} {_HEIGHT:.0f}">'
        f"\n  {body}\n</svg>"
    )


def alternating_trace_svg(result, title: Optional[str] = None) -> str:
    """Chart an :class:`~repro.verification.alternating.AlternatingResult`.

    Prepends the initial identity size (inferred from the first entries)
    is omitted — the chart starts at the first application.
    """
    counts = [entry.node_count for entry in result.trace]
    sides = [entry.side for entry in result.trace]
    if not counts:
        raise VisualizationError("the result carries no trace")
    return trace_svg(
        counts,
        sides=sides,
        title=title or f"alternating verification ({result.method})",
    )
