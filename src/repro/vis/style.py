"""Rendering styles for decision diagrams (paper Sec. IV-A).

A :class:`DDStyle` bundles the visualization options the tool's settings
panel exposes: the node look (classic circles versus modern slot boxes),
whether edge weights are written out or encoded via color and thickness,
and how zero stubs are drawn.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RenderMode(enum.Enum):
    """Node look."""

    #: Circular nodes labeled q_i - "most similar to what is found in
    #: research papers" (paper Fig. 7(a)).
    CLASSIC = "classic"
    #: Rectangular nodes with one slot per successor, making the connection
    #: to the underlying vector/matrix explicit (paper Figs. 8/9).
    MODERN = "modern"


@dataclass(frozen=True)
class DDStyle:
    """Visualization options.

    Attributes
    ----------
    mode:
        Classic or modern node rendering.
    edge_labels:
        Annotate every non-trivial edge weight explicitly.  "The explicit
        annotation of edge weights quickly requires lots of space", so the
        tool offers to drop them (paper Sec. IV-A).
    colored_edges:
        Encode the complex phase of each weight via the HLS color wheel
        (paper Fig. 7(b)/(c)).
    weighted_thickness:
        Encode the magnitude of each weight as the line thickness.
    dashed_nonunit:
        Draw edges with weight != 1 using dashed lines (classic mode).
    retract_zero_stubs:
        Draw 0-stubs as small marks inside the node rather than as explicit
        terminal edges (classic mode).
    """

    mode: RenderMode = RenderMode.CLASSIC
    edge_labels: bool = True
    colored_edges: bool = False
    weighted_thickness: bool = False
    dashed_nonunit: bool = True
    retract_zero_stubs: bool = True

    @staticmethod
    def classic() -> "DDStyle":
        """The research-paper look of Fig. 7(a)."""
        return DDStyle()

    @staticmethod
    def colored() -> "DDStyle":
        """Label-free color/thickness encoding of Fig. 7(c) and Fig. 6."""
        return DDStyle(
            mode=RenderMode.CLASSIC,
            edge_labels=False,
            colored_edges=True,
            weighted_thickness=True,
            dashed_nonunit=False,
        )

    @staticmethod
    def modern() -> "DDStyle":
        """The slot-box look of Figs. 8/9."""
        return DDStyle(
            mode=RenderMode.MODERN,
            edge_labels=False,
            colored_edges=True,
            weighted_thickness=True,
            dashed_nonunit=False,
            retract_zero_stubs=False,
        )
