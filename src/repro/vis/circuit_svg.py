"""SVG circuit diagrams — the tool's algorithm box as a drawing.

Renders a circuit in the paper's wire style (Fig. 1(c)/Fig. 5): one
horizontal wire per qubit with the most-significant qubit on top, boxes
for gates, filled dots for controls, open dots for negative controls, the
crossed circle for X-targets, x-marks for SWAP ends, dashed verticals for
barriers and a meter symbol for measurements.  An optional *progress*
index highlights the operations already executed — used by the simulation
session so every HTML frame shows where in the circuit the diagram
belongs (paper Fig. 8's screenshots).
"""

from __future__ import annotations

import html
from typing import List, Optional

from repro.errors import VisualizationError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, ResetOp

_COLUMN = 46.0
_ROW = 42.0
_LEFT = 54.0
_TOP = 26.0
_BOX_H = 26.0


def _escape(text: str) -> str:
    return html.escape(text, quote=True)


def _columns(circuit: QuantumCircuit) -> List[List[int]]:
    """Greedy layering: operations packed left as far as wires allow.

    Returns, per column, the indices of the operations placed in it.
    """
    levels = [0] * circuit.num_qubits
    columns: List[List[int]] = []
    for index, operation in enumerate(circuit):
        lines = operation.qubits or tuple(range(circuit.num_qubits))
        span = range(min(lines), max(lines) + 1)
        column = max(levels[q] for q in span)
        while len(columns) <= column:
            columns.append([])
        columns[column].append(index)
        for qubit in span:
            levels[qubit] = column + 1
    return columns


def circuit_to_svg(
    circuit: QuantumCircuit,
    progress: Optional[int] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``circuit`` as SVG; operations before ``progress`` are
    highlighted as executed (blue), the next pending one is outlined."""
    if circuit.num_qubits > 24:
        raise VisualizationError("circuit drawings are limited to 24 qubits")
    columns = _columns(circuit)
    num_columns = max(len(columns), 1)
    width = _LEFT + num_columns * _COLUMN + 20.0
    top = _TOP + (22.0 if title else 0.0)
    height = top + circuit.num_qubits * _ROW + 8.0

    def wire_y(qubit: int) -> float:
        # Top wire = most significant qubit.
        return top + (circuit.num_qubits - 1 - qubit) * _ROW + _ROW / 2.0

    parts: List[str] = []
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="16" font-size="13" '
            f'text-anchor="middle" font-family="Helvetica, sans-serif">'
            f"{_escape(title)}</text>"
        )
    for qubit in range(circuit.num_qubits):
        y = wire_y(qubit)
        parts.append(
            f'<text x="{_LEFT - 10:.1f}" y="{y + 4:.1f}" font-size="12" '
            f'text-anchor="end" font-family="monospace">q{qubit}</text>'
        )
        parts.append(
            f'<line x1="{_LEFT:.1f}" y1="{y:.1f}" '
            f'x2="{width - 12:.1f}" y2="{y:.1f}" stroke="#333" '
            f'stroke-width="1" />'
        )

    for column_index, operations in enumerate(columns):
        x = _LEFT + (column_index + 0.5) * _COLUMN
        for op_index in operations:
            operation = circuit[op_index]
            executed = progress is not None and op_index < progress
            pending = progress is not None and op_index == progress
            color = "#1f77b4" if executed else "#333333"
            extra = (
                ' stroke-dasharray="4,3"' if pending else ""
            )
            parts.extend(
                _draw_operation(operation, x, wire_y, color, extra)
            )
    body = "\n  ".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
        f"\n  {body}\n</svg>"
    )


def _draw_operation(operation, x, wire_y, color, extra) -> List[str]:
    parts: List[str] = []
    if isinstance(operation, BarrierOp):
        lines = operation.lines
        y_top = wire_y(max(lines)) - _ROW / 2.0
        y_bottom = wire_y(min(lines)) + _ROW / 2.0
        parts.append(
            f'<line x1="{x:.1f}" y1="{y_top:.1f}" x2="{x:.1f}" '
            f'y2="{y_bottom:.1f}" stroke="{color}" stroke-width="1.2" '
            f'stroke-dasharray="5,4" />'
        )
        return parts
    if isinstance(operation, MeasureOp):
        y = wire_y(operation.qubit)
        parts.append(_box(x, y, color, extra))
        parts.append(
            f'<path d="M {x - 7:.1f} {y + 5:.1f} A 8 8 0 0 1 '
            f'{x + 7:.1f} {y + 5:.1f}" fill="none" stroke="{color}" '
            f'stroke-width="1.4" />'
        )
        parts.append(
            f'<line x1="{x:.1f}" y1="{y + 5:.1f}" x2="{x + 6:.1f}" '
            f'y2="{y - 6:.1f}" stroke="{color}" stroke-width="1.4" />'
        )
        return parts
    if isinstance(operation, ResetOp):
        y = wire_y(operation.qubit)
        parts.append(_box(x, y, color, extra))
        parts.append(_label(x, y, "|0\N{RIGHT ANGLE BRACKET}", color, size=10))
        return parts
    if not isinstance(operation, GateOp):  # pragma: no cover
        return parts
    lines = operation.qubits
    if len(lines) > 1:
        parts.append(
            f'<line x1="{x:.1f}" y1="{wire_y(max(lines)):.1f}" '
            f'x2="{x:.1f}" y2="{wire_y(min(lines)):.1f}" '
            f'stroke="{color}" stroke-width="1.4" />'
        )
    for control in operation.controls:
        y = wire_y(control)
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}" />'
        )
    for control in operation.negative_controls:
        y = wire_y(control)
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="#ffffff" '
            f'stroke="{color}" stroke-width="1.4" />'
        )
    if operation.gate == "x" and operation.num_controls:
        y = wire_y(operation.targets[0])
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="9" fill="none" '
            f'stroke="{color}" stroke-width="1.4" />'
        )
        parts.append(
            f'<line x1="{x - 9:.1f}" y1="{y:.1f}" x2="{x + 9:.1f}" '
            f'y2="{y:.1f}" stroke="{color}" stroke-width="1.4" />'
        )
        parts.append(
            f'<line x1="{x:.1f}" y1="{y - 9:.1f}" x2="{x:.1f}" '
            f'y2="{y + 9:.1f}" stroke="{color}" stroke-width="1.4" />'
        )
        return parts
    if operation.gate in ("swap", "iswap", "iswapdg"):
        for target in operation.targets:
            y = wire_y(target)
            for dx, dy in ((-6, -6), (-6, 6)):
                parts.append(
                    f'<line x1="{x + dx:.1f}" y1="{y + dy:.1f}" '
                    f'x2="{x - dx:.1f}" y2="{y - dy:.1f}" '
                    f'stroke="{color}" stroke-width="1.6" />'
                )
        if operation.gate.startswith("iswap"):
            mid = (wire_y(operation.targets[0]) + wire_y(operation.targets[1])) / 2
            parts.append(_label(x + 12, mid, "i", color, size=10))
        return parts
    # Generic labelled box on each target line.
    label = operation.label()
    for target in operation.targets:
        y = wire_y(target)
        parts.append(_box(x, y, color, extra, wide=len(label) > 3))
        parts.append(_label(x, y, label, color, size=9 if len(label) > 4 else 11))
    return parts


def _box(x, y, color, extra, wide: bool = False) -> str:
    half_width = 19.0 if wide else 13.0
    return (
        f'<rect x="{x - half_width:.1f}" y="{y - _BOX_H / 2:.1f}" '
        f'width="{2 * half_width:.1f}" height="{_BOX_H:.1f}" '
        f'fill="#ffffff" stroke="{color}" stroke-width="1.4"{extra} />'
    )


def _label(x, y, text, color, size=11) -> str:
    return (
        f'<text x="{x:.1f}" y="{y + 4:.1f}" font-size="{size}" '
        f'text-anchor="middle" fill="{color}" '
        f'font-family="Helvetica, sans-serif">{_escape(text)}</text>'
    )
