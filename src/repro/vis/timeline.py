"""Run-timeline charts — per-step durations and node-count trajectories.

The observability layer (:mod:`repro.obs`) records what happened during a
simulation or verification run; this module draws it, in the same
hand-rolled SVG style as the rest of the visualization layer
(:mod:`repro.vis.trace_plot`): duration bars per step on the left axis and
the node-count trajectory as a poly-line on the right axis, so the costly
steps and the diagram growth can be read off one picture.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import VisualizationError
from repro.vis.sparkline import sparkline_points

_WIDTH = 560.0
_HEIGHT = 260.0
_MARGIN_LEFT = 52.0
_MARGIN_RIGHT = 52.0
_MARGIN_TOP = 30.0
_MARGIN_BOTTOM = 40.0

_BAR_COLOR = "#1f77b4"
_LINE_COLOR = "#d62728"
_AXIS_COLOR = "#333"

#: One chart entry: (label, duration in seconds, node count after the step).
TimelineStep = Tuple[str, float, int]


def timeline_svg(
    steps: Sequence[TimelineStep],
    title: Optional[str] = None,
) -> str:
    """Render per-step durations (bars) and node counts (line) as SVG.

    ``steps`` is a sequence of ``(label, duration_seconds, node_count)``
    tuples, one per executed step, in order.
    """
    if not steps:
        raise VisualizationError("at least one step is required")
    durations = [max(float(duration), 0.0) for _, duration, _ in steps]
    counts = [int(count) for _, _, count in steps]
    peak_ms = max(max(durations) * 1e3, 1e-6)
    peak_nodes = max(max(counts), 1)
    plot_width = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
    slot = plot_width / len(steps)
    bar_width = max(min(slot * 0.6, 26.0), 1.5)
    base_y = _MARGIN_TOP + plot_height

    def x_center(index: int) -> float:
        return _MARGIN_LEFT + slot * (index + 0.5)

    def y_duration(value_ms: float) -> float:
        return base_y - plot_height * value_ms / peak_ms

    def y_nodes(count: float) -> float:
        return base_y - plot_height * count / peak_nodes

    parts: List[str] = []
    if title:
        parts.append(
            f'<text x="{_WIDTH / 2:.1f}" y="18" font-size="13" '
            f'text-anchor="middle" font-family="Helvetica, sans-serif">'
            f"{title}</text>"
        )
    # Axes: left (duration), bottom (steps), right (nodes).
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" x2="{_MARGIN_LEFT}" '
        f'y2="{base_y:.1f}" stroke="{_AXIS_COLOR}" stroke-width="1" />'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{base_y:.1f}" '
        f'x2="{_MARGIN_LEFT + plot_width:.1f}" y2="{base_y:.1f}" '
        f'stroke="{_AXIS_COLOR}" stroke-width="1" />'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT + plot_width:.1f}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT + plot_width:.1f}" y2="{base_y:.1f}" '
        f'stroke="{_AXIS_COLOR}" stroke-width="1" />'
    )
    # Left axis ticks (milliseconds).
    for fraction in (0.0, 0.5, 1.0):
        value = peak_ms * fraction
        y = y_duration(value)
        parts.append(
            f'<text x="{_MARGIN_LEFT - 6:.1f}" y="{y + 4:.1f}" font-size="10" '
            f'text-anchor="end" fill="{_BAR_COLOR}">{value:.3g}</text>'
        )
    parts.append(
        f'<text x="14" y="{_MARGIN_TOP + plot_height / 2:.1f}" font-size="11" '
        f'text-anchor="middle" fill="{_BAR_COLOR}" transform="rotate(-90 14 '
        f'{_MARGIN_TOP + plot_height / 2:.1f})">step duration [ms]</text>'
    )
    # Right axis ticks (nodes).
    for fraction in (0.0, 0.5, 1.0):
        value = round(peak_nodes * fraction)
        y = y_nodes(value)
        parts.append(
            f'<text x="{_MARGIN_LEFT + plot_width + 6:.1f}" y="{y + 4:.1f}" '
            f'font-size="10" text-anchor="start" fill="{_LINE_COLOR}">'
            f"{value}</text>"
        )
    parts.append(
        f'<text x="{_WIDTH - 12:.1f}" y="{_MARGIN_TOP + plot_height / 2:.1f}" '
        f'font-size="11" text-anchor="middle" fill="{_LINE_COLOR}" '
        f'transform="rotate(90 {_WIDTH - 12:.1f} '
        f'{_MARGIN_TOP + plot_height / 2:.1f})">nodes</text>'
    )
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_width / 2:.1f}" y="{_HEIGHT - 8:.1f}" '
        f'font-size="11" text-anchor="middle">steps</text>'
    )
    # Duration bars with hover titles.
    for index, (label, duration, count) in enumerate(steps):
        value_ms = durations[index] * 1e3
        top = y_duration(value_ms)
        parts.append(
            f'<rect x="{x_center(index) - bar_width / 2:.1f}" y="{top:.1f}" '
            f'width="{bar_width:.1f}" height="{max(base_y - top, 0.5):.1f}" '
            f'fill="{_BAR_COLOR}" fill-opacity="0.55">'
            f"<title>step {index}: {label} — {value_ms:.3f} ms, "
            f"{count} nodes</title></rect>"
        )
    # Node-count trajectory (same point geometry as the dashboard's
    # sparklines: slot-centered x, linear y against the series peak).
    points = sparkline_points(
        counts,
        plot_width,
        plot_height,
        x_offset=_MARGIN_LEFT,
        y_offset=_MARGIN_TOP,
        max_value=peak_nodes,
    )
    parts.append(
        f'<polyline points="{points}" fill="none" stroke="{_LINE_COLOR}" '
        f'stroke-width="1.5" />'
    )
    for index, count in enumerate(counts):
        parts.append(
            f'<circle cx="{x_center(index):.1f}" cy="{y_nodes(count):.1f}" '
            f'r="2.5" fill="{_LINE_COLOR}"><title>step {index}: {count} '
            f"nodes</title></circle>"
        )
    body = "\n  ".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH:.0f}" '
        f'height="{_HEIGHT:.0f}" viewBox="0 0 {_WIDTH:.0f} {_HEIGHT:.0f}">'
        f"\n  {body}\n</svg>"
    )


def span_timeline_svg(span, title: Optional[str] = None) -> str:
    """Chart the children of a finished root span as a timeline.

    Designed for the span trees the simulator and the alternating
    verification engine produce: each child span becomes one step, labelled
    with its ``op``/``gate`` attribute and scaled by its duration; the
    ``nodes`` attribute drives the trajectory line.
    """
    steps: List[TimelineStep] = []
    for child in span.children:
        label = str(
            child.attributes.get("op")
            or child.attributes.get("gate")
            or child.name
        )
        steps.append(
            (label, child.duration, int(child.attributes.get("nodes", 0)))
        )
    if not steps:
        raise VisualizationError("the span has no children to chart")
    return timeline_svg(steps, title=title or span.name)
