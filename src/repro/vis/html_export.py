"""Self-contained HTML export — the offline stand-in for the web tool.

The paper's tool is "installation-free" (Sec. I); this module reproduces
that experience offline: a session (a sequence of titled SVG frames plus
descriptions) becomes a single HTML file with previous/next/play controls
and no external dependencies, mirroring the navigation buttons of the
tool's simulation and verification tabs (Sec. IV-B).
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Frame:
    """One step of a session: a rendered diagram plus commentary.

    ``text``, ``node_count`` and ``position`` ride along for consumers
    that want more than the SVG — the service's SSE frame stream sends
    all of them so a dashboard can show terminal art and node counts
    without re-requesting the session.
    """

    svg: str
    title: str = ""
    description: str = ""
    text: str = ""
    node_count: int = 0
    position: int = 0


_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font-family: Helvetica, Arial, sans-serif; margin: 2em; color: #222; }}
  h1 {{ font-size: 1.3em; }}
  #controls button {{ font-size: 1.1em; margin-right: 0.4em; padding: 0.2em 0.8em; }}
  #frame-title {{ font-weight: bold; margin: 0.8em 0 0.3em; }}
  #frame-description {{ color: #555; min-height: 2em; }}
  #diagram {{ border: 1px solid #ddd; padding: 1em; display: inline-block;
             min-width: 300px; min-height: 200px; }}
  #position {{ color: #888; margin-left: 1em; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div id="controls">
  <button id="to-start" title="back to the beginning">&#9198;</button>
  <button id="back" title="one step backward">&#8592;</button>
  <button id="forward" title="one step forward">&#8594;</button>
  <button id="to-end" title="straight to the end">&#9197;</button>
  <button id="play" title="slide show">&#9654;/&#10074;&#10074;</button>
  <span id="position"></span>
</div>
<div id="frame-title"></div>
<div id="frame-description"></div>
<div id="diagram"></div>
<script>
const frames = {frames_json};
let index = 0;
let timer = null;
function show() {{
  const frame = frames[index];
  document.getElementById('diagram').innerHTML = frame.svg;
  document.getElementById('frame-title').textContent = frame.title;
  document.getElementById('frame-description').textContent = frame.description;
  document.getElementById('position').textContent =
    (index + 1) + ' / ' + frames.length;
}}
function stop() {{ if (timer) {{ clearInterval(timer); timer = null; }} }}
document.getElementById('forward').onclick = () => {{
  stop(); if (index < frames.length - 1) {{ index++; show(); }} }};
document.getElementById('back').onclick = () => {{
  stop(); if (index > 0) {{ index--; show(); }} }};
document.getElementById('to-start').onclick = () => {{ stop(); index = 0; show(); }};
document.getElementById('to-end').onclick = () => {{
  stop(); index = frames.length - 1; show(); }};
document.getElementById('play').onclick = () => {{
  if (timer) {{ stop(); return; }}
  timer = setInterval(() => {{
    if (index < frames.length - 1) {{ index++; show(); }} else {{ stop(); }}
  }}, 1200);
}};
show();
</script>
</body>
</html>
"""


def frames_to_html(frames: Sequence[Frame], title: str = "Decision Diagram Session") -> str:
    """Bundle frames into a standalone interactive HTML document."""
    if not frames:
        raise ValueError("at least one frame is required")
    payload = [
        {"svg": frame.svg, "title": frame.title, "description": frame.description}
        for frame in frames
    ]
    return _TEMPLATE.format(
        title=html.escape(title),
        frames_json=json.dumps(payload),
    )


def write_html(
    frames: Sequence[Frame],
    path: str,
    title: str = "Decision Diagram Session",
) -> None:
    """Write the HTML document for ``frames`` to ``path``."""
    document = frames_to_html(frames, title)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
