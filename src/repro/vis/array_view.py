"""Dense-array views: the state vector / matrix behind a decision diagram.

The tool's "modern" mode expresses "the connection to the underlying state
vector in a more straight-forward fashion" (paper Sec. IV-A).  This module
renders that underlying array directly:

* :func:`statevector_svg` — one cell per amplitude, bar height encoding the
  magnitude and fill color the phase (HLS wheel of Fig. 7(b)), labelled
  with the big-endian basis states;
* :func:`matrix_svg` — a heatmap of a unitary/density matrix, cell opacity
  encoding the magnitude and hue the phase (the visual analogue of the
  omega-matrix in paper Fig. 5(c)).

Both are self-contained SVG strings, sized for side-by-side display with
the DD renderings.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import VisualizationError
from repro.vis.color import phase_to_color, pretty_complex

_CELL = 34.0
_BAR_HEIGHT = 90.0
_LABEL_SPACE = 26.0


def _escape(text: str) -> str:
    import html

    return html.escape(text, quote=True)


def statevector_svg(
    amplitudes: Sequence[complex],
    title: Optional[str] = None,
    max_entries: int = 64,
) -> str:
    """Render a state vector as phase-colored amplitude bars."""
    values = np.asarray(list(amplitudes), dtype=complex).reshape(-1)
    size = values.shape[0]
    if size == 0:
        raise VisualizationError("cannot render an empty state vector")
    if size > max_entries:
        raise VisualizationError(
            f"state vector with {size} entries exceeds max_entries="
            f"{max_entries}; render the decision diagram instead"
        )
    num_qubits = max(1, int(size - 1).bit_length())
    width = size * _CELL + 20.0
    height = _BAR_HEIGHT + _LABEL_SPACE + (30.0 if title else 10.0) + 20.0
    top = 30.0 if title else 10.0
    parts = []
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="18" font-size="13" '
            f'text-anchor="middle" font-family="Helvetica, sans-serif">'
            f"{_escape(title)}</text>"
        )
    baseline = top + _BAR_HEIGHT
    parts.append(
        f'<line x1="10" y1="{baseline:.1f}" x2="{width - 10:.1f}" '
        f'y2="{baseline:.1f}" stroke="#888888" stroke-width="1" />'
    )
    for index, value in enumerate(values):
        x = 10.0 + index * _CELL
        magnitude = min(abs(value), 1.0)
        if magnitude > 1e-12:
            bar = magnitude * _BAR_HEIGHT
            parts.append(
                f'<rect x="{x + 4:.1f}" y="{baseline - bar:.1f}" '
                f'width="{_CELL - 8:.1f}" height="{bar:.1f}" '
                f'fill="{phase_to_color(value)}" stroke="#333333" '
                f'stroke-width="0.8"><title>'
                f"{_escape(pretty_complex(complex(value)))}</title></rect>"
            )
        label = format(index, f"0{num_qubits}b")
        parts.append(
            f'<text x="{x + _CELL / 2:.1f}" y="{baseline + 14:.1f}" '
            f'font-size="9" text-anchor="middle" '
            f'font-family="monospace">{label}</text>'
        )
    body = "\n  ".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
        f"\n  {body}\n</svg>"
    )


def matrix_svg(
    matrix,
    title: Optional[str] = None,
    max_dim: int = 32,
) -> str:
    """Render a complex matrix as a phase/magnitude heatmap."""
    values = np.asarray(matrix, dtype=complex)
    if values.ndim != 2:
        raise VisualizationError("expected a two-dimensional matrix")
    rows, columns = values.shape
    if rows > max_dim or columns > max_dim:
        raise VisualizationError(
            f"matrix of shape {values.shape} exceeds max_dim={max_dim}; "
            "render the decision diagram instead"
        )
    cell = 22.0
    top = 30.0 if title else 10.0
    width = columns * cell + 20.0
    height = rows * cell + top + 10.0
    peak = float(np.max(np.abs(values))) or 1.0
    parts = []
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="18" font-size="13" '
            f'text-anchor="middle" font-family="Helvetica, sans-serif">'
            f"{_escape(title)}</text>"
        )
    for row in range(rows):
        for column in range(columns):
            value = values[row, column]
            x = 10.0 + column * cell
            y = top + row * cell
            magnitude = abs(value) / peak
            if magnitude <= 1e-12:
                fill, opacity = "#f5f5f5", 1.0
            else:
                fill, opacity = phase_to_color(value), 0.25 + 0.75 * magnitude
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell - 2:.1f}" '
                f'height="{cell - 2:.1f}" fill="{fill}" '
                f'fill-opacity="{opacity:.3f}" stroke="#cccccc" '
                f'stroke-width="0.5"><title>'
                f"{_escape(pretty_complex(complex(value)))}</title></rect>"
            )
    body = "\n  ".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
        f"\n  {body}\n</svg>"
    )
