"""Graphviz DOT export of decision diagrams.

Produces DOT text in the styles of the paper's tool; users with graphviz
installed can render it directly (``dot -Tsvg``), while the pure-Python SVG
renderer in :mod:`repro.vis.svg` needs no external tools.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge
from repro.dd.node import MatrixNode, Node
from repro.dd.package import DDPackage
from repro.errors import VisualizationError
from repro.vis.color import phase_to_color, pretty_complex, weight_to_width
from repro.vis.style import DDStyle, RenderMode


def _collect_nodes(root: Edge) -> List[Node]:
    """All non-terminal nodes in deterministic (DFS pre-order) order."""
    ordered: List[Node] = []
    seen = set()

    def visit(node: Node) -> None:
        if node.is_terminal or node in seen:
            return
        seen.add(node)
        ordered.append(node)
        for child in node.edges:
            if not child.is_zero:
                visit(child.node)

    if not root.is_zero:
        visit(root.node)
    return ordered


def _edge_attributes(edge: Edge, style: DDStyle) -> List[str]:
    attributes = []
    weight = edge.weight
    is_unit = weight == ComplexTable.ONE
    if style.edge_labels and not is_unit:
        attributes.append(f'label="{pretty_complex(weight)}"')
    if style.dashed_nonunit and not is_unit:
        attributes.append("style=dashed")
    if style.colored_edges:
        attributes.append(f'color="{phase_to_color(weight)}"')
    if style.weighted_thickness:
        attributes.append(f"penwidth={weight_to_width(weight):.2f}")
    return attributes


def dd_to_dot(
    package: DDPackage,
    root: Edge,
    style: Optional[DDStyle] = None,
    name: str = "dd",
    qubit_labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a vector or matrix DD as Graphviz DOT text.

    ``qubit_labels`` overrides the default ``q0, q1, ...`` node labels
    (index = level).
    """
    if style is None:
        style = DDStyle.classic()
    if root.is_zero:
        raise VisualizationError("cannot render the zero decision diagram")
    nodes = _collect_nodes(root)
    ids: Dict[Node, str] = {node: f"n{index}" for index, node in enumerate(nodes)}
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  ordering=out;"]
    shape = "circle" if style.mode is RenderMode.CLASSIC else "Mrecord"
    lines.append(f"  node [shape={shape}];")
    lines.append('  root [shape=point, style=invis];')
    stub_counter = 0

    def label_for(node: Node) -> str:
        if qubit_labels is not None and node.var < len(qubit_labels):
            return qubit_labels[node.var]
        return f"q{node.var}"

    for node in nodes:
        if style.mode is RenderMode.MODERN:
            ports = "|".join(f"<p{i}>" for i in range(len(node.edges)))
            lines.append(
                f'  {ids[node]} [label="{{{label_for(node)}|{{{ports}}}}}"];'
            )
        else:
            lines.append(f'  {ids[node]} [label="{label_for(node)}"];')
    lines.append('  terminal [shape=box, label="1"];')
    root_attributes = _edge_attributes(root, style)
    rendered = f" [{', '.join(root_attributes)}]" if root_attributes else ""
    lines.append(f"  root -> {ids[root.node]}{rendered};")
    for node in nodes:
        for index, child in enumerate(node.edges):
            source = ids[node]
            if style.mode is RenderMode.MODERN:
                source = f"{source}:p{index}"
            if child.is_zero:
                if style.retract_zero_stubs:
                    continue
                stub = f"stub{stub_counter}"
                stub_counter += 1
                lines.append(
                    f'  {stub} [shape=point, width=0.05, label=""];'
                )
                lines.append(f"  {source} -> {stub};")
                continue
            target = "terminal" if child.node.is_terminal else ids[child.node]
            attributes = _edge_attributes(child, style)
            rendered = f" [{', '.join(attributes)}]" if attributes else ""
            lines.append(f"  {source} -> {target}{rendered};")
    lines.append("}")
    return "\n".join(lines)
