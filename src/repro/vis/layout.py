"""Layered layout for decision diagrams.

DDs are naturally layered — every non-terminal node sits at the level of
its qubit, the terminal below level 0 — so a Sugiyama-style layout reduces
to ordering the nodes within each layer.  Nodes start in DFS pre-order and
are refined by a few barycenter passes (ordering each layer by the mean
position of the parents) to reduce edge crossings.

The module is geometry-only; :mod:`repro.vis.svg` does the drawing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dd.edge import Edge
from repro.dd.node import Node
from repro.errors import VisualizationError

#: Horizontal distance between node centers.
H_SPACING = 90.0
#: Vertical distance between levels.
V_SPACING = 80.0
#: Margin around the drawing.
MARGIN = 40.0


@dataclass
class Layout:
    """Positions (center coordinates) for every element of a DD drawing."""

    positions: Dict[Node, Tuple[float, float]] = field(default_factory=dict)
    terminal: Tuple[float, float] = (0.0, 0.0)
    root_anchor: Tuple[float, float] = (0.0, 0.0)
    width: float = 0.0
    height: float = 0.0
    #: nodes per level, top level first, in final left-to-right order
    layers: List[List[Node]] = field(default_factory=list)


def compute_layout(root: Edge, barycenter_passes: int = 3) -> Layout:
    """Compute a layered layout for the DD rooted at ``root``."""
    if root.is_zero:
        raise VisualizationError("cannot lay out the zero decision diagram")
    top_level = root.node.var
    layers: Dict[int, List[Node]] = {level: [] for level in range(top_level, -1, -1)}
    seen = set()

    def visit(node: Node) -> None:
        if node.is_terminal or node in seen:
            return
        seen.add(node)
        layers[node.var].append(node)
        for child in node.edges:
            if not child.is_zero:
                visit(child.node)

    visit(root.node)
    ordered_layers = [layers[level] for level in range(top_level, -1, -1)]
    parents: Dict[Node, List[Node]] = {}
    for layer in ordered_layers:
        for node in layer:
            for child in node.edges:
                if not child.is_zero and not child.node.is_terminal:
                    parents.setdefault(child.node, []).append(node)

    for _ in range(barycenter_passes):
        index_of: Dict[Node, int] = {}
        for layer in ordered_layers:
            for position, node in enumerate(layer):
                index_of[node] = position
        for depth in range(1, len(ordered_layers)):
            layer = ordered_layers[depth]
            layer.sort(
                key=lambda node: (
                    sum(index_of[p] for p in parents.get(node, []))
                    / max(len(parents.get(node, [])), 1)
                )
            )
            for position, node in enumerate(layer):
                index_of[node] = position

    layout = Layout(layers=ordered_layers)
    # A scalar DD (root edge pointing straight at the terminal) has no
    # layers at all; `default=0` and the terminal fallback below keep the
    # degenerate drawing well-formed instead of raising.
    widest = max((len(layer) for layer in ordered_layers), default=0)
    total_width = 2 * MARGIN + max(widest - 1, 0) * H_SPACING
    layout.width = total_width
    layout.height = 2 * MARGIN + (len(ordered_layers) + 1) * V_SPACING
    for depth, layer in enumerate(ordered_layers):
        y = MARGIN + (depth + 1) * V_SPACING
        offset = (total_width - (len(layer) - 1) * H_SPACING) / 2.0
        for position, node in enumerate(layer):
            layout.positions[node] = (offset + position * H_SPACING, y)
    if root.node.is_terminal:
        root_x = total_width / 2.0
    else:
        root_x = layout.positions[root.node][0]
    layout.root_anchor = (root_x, MARGIN + V_SPACING * 0.35)
    layout.terminal = (
        total_width / 2.0,
        MARGIN + (len(ordered_layers) + 1) * V_SPACING,
    )
    return layout
