"""The live operator dashboard served at ``GET /dashboard``.

One self-contained HTML page — no external scripts, styles, fonts or
images, in the same offline spirit as :mod:`repro.vis.html_export` — that
subscribes to the service's two SSE streams with inline ``EventSource``
code:

* ``/stream/metrics`` feeds the metric tiles: a full ``snapshot`` event on
  connect, ``delta`` events every couple of seconds, and the forwarded
  state events (session lifecycle, worker-pool pressure, watchdog kills,
  sanitizer verdicts) in between;
* ``/sessions/{id}/stream`` feeds one tile per live session with its step
  frames (SVG, node count, position).

Latency sparklines are drawn client-side with the same slot-centered
geometry as :mod:`repro.vis.sparkline`; p50/p99 are interpolated from the
cumulative histogram buckets exactly like
:func:`repro.obs.metrics.Histogram.quantile` does server-side.  The page
deliberately contains no absolute URL anywhere (SVG elements are created
inline, where HTML needs no namespace declaration), so "self-contained"
is mechanically checkable: the document must not mention ``http://`` or
``https://``.
"""

from __future__ import annotations

import html

__all__ = ["dashboard_html"]

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 1.2em; color: #222;
         background: #fafafa; }
  h1 { font-size: 1.25em; margin: 0 0 0.2em; }
  #conn { color: #888; font-size: 0.85em; margin-bottom: 1em; }
  #conn.down { color: #d62728; font-weight: bold; }
  .row { display: flex; flex-wrap: wrap; gap: 0.8em; margin-bottom: 1em; }
  .card { background: #fff; border: 1px solid #ddd; border-radius: 6px;
          padding: 0.6em 0.9em; min-width: 180px; }
  .card h2 { font-size: 0.8em; margin: 0 0 0.3em; color: #666;
             text-transform: uppercase; letter-spacing: 0.05em; }
  .big { font-size: 1.5em; font-weight: bold; }
  .ok { color: #2ca02c; } .soft { color: #ff7f0e; } .hard { color: #d62728; }
  #sanitizer { display: none; background: #fdecea; border: 1px solid #d62728;
               color: #a02622; padding: 0.6em 0.9em; border-radius: 6px;
               margin-bottom: 1em; font-weight: bold; }
  .lat { display: flex; align-items: center; gap: 0.6em; font-size: 0.8em;
         margin: 0.2em 0; }
  .lat .ep { width: 11em; overflow: hidden; text-overflow: ellipsis;
             white-space: nowrap; color: #444; }
  .lat .num { width: 9em; color: #888; }
  .tile { background: #fff; border: 1px solid #ddd; border-radius: 6px;
          padding: 0.6em; width: 320px; }
  .tile.gone { opacity: 0.45; }
  .tile h3 { font-size: 0.8em; margin: 0 0 0.3em; font-family: monospace; }
  .tile .meta { font-size: 0.78em; color: #666; min-height: 1.2em; }
  .tile .dd { max-height: 240px; overflow: auto; border: 1px solid #eee;
              margin-top: 0.4em; background: #fff; }
  .tile .dd svg { max-width: 100%; height: auto; }
  #log { font-family: monospace; font-size: 0.75em; color: #555;
         background: #fff; border: 1px solid #ddd; border-radius: 6px;
         padding: 0.5em 0.8em; max-height: 10em; overflow-y: auto; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div id="conn">connecting…</div>
<div id="sanitizer"></div>
<div class="row">
  <div class="card"><h2>sessions</h2><div class="big" id="m-sessions">–</div></div>
  <div class="card"><h2>open streams</h2><div class="big" id="m-streams">–</div></div>
  <div class="card"><h2>in flight</h2><div class="big" id="m-inflight">–</div></div>
  <div class="card"><h2>worker pressure</h2><div class="big ok" id="m-pressure">–</div></div>
  <div class="card"><h2>watchdog kills</h2><div class="big" id="m-kills">–</div></div>
  <div class="card"><h2>gc runs</h2><div class="big" id="m-gc">–</div></div>
  <div class="card"><h2>dropped events</h2><div class="big" id="m-dropped">–</div></div>
</div>
<div class="card" style="margin-bottom:1em">
  <h2>request latency p50 / p99 (rolling)</h2>
  <div id="latency"></div>
</div>
<h2 style="font-size:0.9em;color:#666">live sessions</h2>
<div class="row" id="tiles"></div>
<h2 style="font-size:0.9em;color:#666">event log</h2>
<div id="log"></div>
<script>
"use strict";
const metricState = new Map();   // name + labels -> entry
const latSeries = new Map();     // endpoint -> {p50: [], p99: []}
const tiles = new Map();         // session id -> {el, source}
const MAX_POINTS = 60;

function keyOf(entry) {
  return entry.name + "|" + JSON.stringify(entry.labels || {});
}
function applyEntries(entries, replace) {
  if (replace) metricState.clear();
  for (let entry of entries) {
    const key = keyOf(entry);
    if (entry.type === "histogram" && !replace && metricState.has(key)) {
      const old = metricState.get(key);
      const merged = new Map(old.buckets.map(b => [b.le, b.count]));
      for (const b of entry.buckets) merged.set(b.le, b.count);
      entry = Object.assign({}, entry, {
        buckets: Array.from(merged, ([le, count]) => ({le, count}))
          .sort((a, b) => leNum(a.le) - leNum(b.le)),
      });
    }
    metricState.set(key, entry);
  }
}
function leNum(le) { return le === "+Inf" ? Infinity : Number(le); }
function scalar(name, labels) {
  const entry = metricState.get(name + "|" + JSON.stringify(labels || {}));
  return entry ? entry.value : null;
}
// Mirrors Histogram.quantile(): rank walk over cumulative buckets with
// linear interpolation inside the matching bucket.
function quantile(buckets, q) {
  if (!buckets.length) return 0;
  const total = buckets[buckets.length - 1].count;
  if (total <= 0) return 0;
  const rank = q * total;
  let lower = 0;
  for (const b of buckets) {
    const upper = leNum(b.le);
    if (b.count >= rank) {
      if (!isFinite(upper)) return lower;
      const prev = buckets[buckets.indexOf(b) - 1];
      const below = prev ? prev.count : 0;
      const inBucket = b.count - below;
      const frac = inBucket > 0 ? (rank - below) / inBucket : 1;
      return lower + (upper - lower) * frac;
    }
    if (isFinite(upper)) lower = upper;
  }
  return lower;
}
function sparkPoints(values, width, height, pad) {
  const w = width - 2 * pad, h = height - 2 * pad;
  const slot = w / values.length;
  const top = Math.max(...values, 1e-9);
  return values.map((v, i) =>
    (pad + slot * (i + 0.5)).toFixed(1) + "," +
    (pad + h - h * Math.min(v, top) / top).toFixed(1)).join(" ");
}
function sparkline(values, color) {
  if (!values.length) return "";
  const pts = sparkPoints(values, 120, 26, 2);
  return '<svg width="120" height="26" viewBox="0 0 120 26">' +
    '<polyline points="' + pts + '" fill="none" stroke="' + color +
    '" stroke-width="1.5"></polyline></svg>';
}
function fmtMs(seconds) {
  return seconds === null || seconds === undefined
    ? "–" : (seconds * 1e3).toFixed(2) + "ms";
}
function refreshLatency() {
  for (const [key, entry] of metricState) {
    if (entry.name !== "service_request_seconds") continue;
    const ep = (entry.labels || {}).endpoint || "?";
    if (!latSeries.has(ep)) latSeries.set(ep, {p50: [], p99: []});
    const series = latSeries.get(ep);
    series.p50.push(quantile(entry.buckets, 0.5));
    series.p99.push(quantile(entry.buckets, 0.99));
    if (series.p50.length > MAX_POINTS) { series.p50.shift(); series.p99.shift(); }
  }
  const box = document.getElementById("latency");
  box.innerHTML = "";
  for (const [ep, series] of Array.from(latSeries).sort()) {
    const last50 = series.p50[series.p50.length - 1];
    const last99 = series.p99[series.p99.length - 1];
    const row = document.createElement("div");
    row.className = "lat";
    row.innerHTML = '<span class="ep">' + ep + '</span>' +
      '<span class="num">' + fmtMs(last50) + " / " + fmtMs(last99) + '</span>' +
      sparkline(series.p50, "#1f77b4") + sparkline(series.p99, "#d62728");
    box.appendChild(row);
  }
}
function refreshCards() {
  const put = (id, v) => {
    document.getElementById(id).textContent = v === null ? "–" : String(v);
  };
  put("m-sessions", scalar("service_sessions_open"));
  put("m-streams", scalar("service_streams_open"));
  put("m-inflight", scalar("service_inflight_requests"));
  put("m-kills", scalar("service_watchdog_kills_total"));
  put("m-gc", scalar("dd_gc_runs_total"));
  put("m-dropped", scalar("dd_stream_dropped_total"));
  setPressure(scalar("service_worker_pressure"));
  const violations = scalar("dd_sanitize_violations_total");
  if (violations) showSanitizer(violations);
}
function setPressure(level) {
  const el = document.getElementById("m-pressure");
  const names = ["OK", "SOFT", "HARD"];
  const tier = Math.max(0, Math.min(2, Number(level) || 0));
  el.textContent = names[tier];
  el.className = "big " + names[tier].toLowerCase();
}
function showSanitizer(count) {
  // Sticky on purpose: detected table corruption stays on screen until
  // the operator restarts the service, matching /healthz semantics.
  const banner = document.getElementById("sanitizer");
  banner.style.display = "block";
  banner.textContent = "sanitizer: " + count +
    " violation(s) detected — service is degraded until restarted";
}
function logLine(text) {
  const log = document.getElementById("log");
  const stamp = new Date().toTimeString().slice(0, 8);
  const line = document.createElement("div");
  line.textContent = stamp + "  " + text;
  log.appendChild(line);
  while (log.childNodes.length > 200) log.removeChild(log.firstChild);
  log.scrollTop = log.scrollHeight;
}
function addTile(id, kind) {
  if (tiles.has(id)) return;
  const el = document.createElement("div");
  el.className = "tile";
  el.innerHTML = '<h3>' + id.slice(0, 12) + '… <span style="color:#888">(' +
    kind + ')</span></h3><div class="meta">waiting for frames…</div>' +
    '<div class="dd"></div>';
  document.getElementById("tiles").appendChild(el);
  const source = new EventSource("/sessions/" + id + "/stream");
  source.addEventListener("frame", (msg) => {
    const frame = JSON.parse(msg.data);
    el.querySelector(".meta").textContent =
      frame.title + " — " + frame.node_count + " nodes";
    el.querySelector(".dd").innerHTML = frame.svg;
  });
  source.addEventListener("closed", (msg) => {
    const data = JSON.parse(msg.data);
    el.classList.add("gone");
    el.querySelector(".meta").textContent = "session " + data.reason;
    source.close();
  });
  source.onerror = () => { if (el.classList.contains("gone")) source.close(); };
  tiles.set(id, {el, source});
}
function dropTile(id, reason) {
  const tile = tiles.get(id);
  if (!tile) return;
  tile.el.classList.add("gone");
  tile.el.querySelector(".meta").textContent = "session " + reason;
  tile.source.close();
}

const metrics = new EventSource("/stream/metrics");
const conn = document.getElementById("conn");
metrics.onopen = () => { conn.textContent = "live"; conn.className = ""; };
metrics.onerror = () => {
  conn.textContent = "disconnected — retrying"; conn.className = "down";
};
metrics.addEventListener("snapshot", (msg) => {
  applyEntries(JSON.parse(msg.data).metrics, true);
  refreshCards(); refreshLatency();
});
metrics.addEventListener("delta", (msg) => {
  applyEntries(JSON.parse(msg.data).metrics, false);
  refreshCards(); refreshLatency();
});
for (const kind of ["session.created", "session.deleted",
                    "session.expired", "session.evicted"]) {
  metrics.addEventListener(kind, (msg) => {
    const data = JSON.parse(msg.data);
    logLine(kind + " " + data.session_id.slice(0, 12));
    if (kind === "session.created") addTile(data.session_id, data.kind);
    else dropTile(data.session_id, kind.split(".")[1]);
  });
}
metrics.addEventListener("pool.pressure", (msg) => {
  const data = JSON.parse(msg.data);
  setPressure(data.level);
  logLine("pool pressure " + data.previous + " -> " + data.level);
});
metrics.addEventListener("pool.sanitize", (msg) => {
  const data = JSON.parse(msg.data);
  showSanitizer(data.violations_total);
  logLine("sanitizer violations: " + data.violations_total);
});
metrics.addEventListener("dd.sanitize", (msg) => {
  const data = JSON.parse(msg.data);
  showSanitizer(data.violations_total);
  logLine("sanitizer violations: " + data.violations_total);
});
metrics.addEventListener("worker.kill", (msg) => {
  logLine("watchdog kill (" + JSON.parse(msg.data).reason + ")");
});
metrics.addEventListener("pool.shed", () => logLine("load shed (pressure)"));
metrics.addEventListener("dd.gc", (msg) => {
  const data = JSON.parse(msg.data);
  logLine("gc run: " + data.nodes_reclaimed + " nodes reclaimed");
});
metrics.addEventListener("service.shutdown", () => {
  conn.textContent = "server shut down"; conn.className = "down";
  metrics.close();
  for (const tile of tiles.values()) tile.source.close();
});
metrics.addEventListener("shutdown", () => {
  conn.textContent = "server shut down"; conn.className = "down";
  metrics.close();
});
fetch("/sessions").then(r => r.json()).then(data => {
  for (const entry of data.sessions) addTile(entry.session_id, entry.kind);
}).catch(() => {});
</script>
</body>
</html>
"""


def dashboard_html(title: str = "qdd-service dashboard") -> str:
    """Render the dashboard page (one argument: the page title)."""
    return _TEMPLATE.replace("__TITLE__", html.escape(title))
