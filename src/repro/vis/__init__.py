"""Visualization of quantum decision diagrams (paper Sec. IV).

Renders vector and matrix DDs in the styles of the paper's tool:

* **classic** mode (Fig. 7(a)) — the research-paper look: circular nodes
  labeled with their qubit, explicit edge-weight annotations, dashed edges
  for weights != 1, and 0-stubs retracted into the nodes;
* **colored** mode (Fig. 7(c) / Fig. 6) — edge-weight labels dropped; the
  magnitude of a weight maps to line thickness and its complex phase to a
  color from the HLS color wheel (Fig. 7(b));
* **modern** mode (Figs. 8/9) — rectangular nodes whose slots make the
  connection to the underlying state vector / matrix explicit.

Output formats: Graphviz DOT text, self-contained SVG (pure-Python layered
layout, no external tools), terminal ASCII art, and an interactive HTML
export used by the tool layer.
"""

from repro.vis.array_view import matrix_svg, statevector_svg
from repro.vis.color import hls_wheel_color, phase_to_color, weight_to_width
from repro.vis.dashboard import dashboard_html
from repro.vis.dot import dd_to_dot
from repro.vis.sparkline import sparkline_points, sparkline_svg
from repro.vis.style import DDStyle, RenderMode
from repro.vis.svg import color_wheel_svg, dd_to_svg
from repro.vis.timeline import span_timeline_svg, timeline_svg
from repro.vis.trace_plot import alternating_trace_svg, trace_svg
from repro.vis.bloch import all_bloch_vectors, bloch_svg, qubit_bloch_vector
from repro.vis.ascii_art import circuit_to_text, dd_to_text
from repro.vis.circuit_svg import circuit_to_svg

__all__ = [
    "DDStyle",
    "all_bloch_vectors",
    "alternating_trace_svg",
    "bloch_svg",
    "qubit_bloch_vector",
    "trace_svg",
    "RenderMode",
    "circuit_to_svg",
    "circuit_to_text",
    "color_wheel_svg",
    "dashboard_html",
    "dd_to_dot",
    "dd_to_svg",
    "dd_to_text",
    "hls_wheel_color",
    "matrix_svg",
    "phase_to_color",
    "span_timeline_svg",
    "sparkline_points",
    "sparkline_svg",
    "statevector_svg",
    "timeline_svg",
    "weight_to_width",
]
