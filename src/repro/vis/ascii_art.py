"""Terminal rendering: decision diagrams as text trees, circuits as wire art.

``dd_to_text`` prints a DD as an indented tree with explicit sharing
markers (shared nodes are expanded once and referenced afterwards), which is
handy in tests and REPL sessions.  ``circuit_to_text`` draws the wire
diagrams the paper uses (Fig. 1(c), Fig. 5): one horizontal line per qubit,
most-significant on top, boxes for gates, ``*`` for controls, ``o`` for
negative controls, ``X`` for SWAP ends and ``:`` columns for barriers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dd.edge import Edge
from repro.dd.node import Node
from repro.dd.package import DDPackage
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, ResetOp
from repro.vis.color import pretty_complex


def dd_to_text(package: DDPackage, root: Edge, indent: str = "  ") -> str:
    """Render a DD as an indented text tree with sharing markers."""
    if root.is_zero:
        return "0"
    names: Dict[Node, str] = {}
    lines: List[str] = []

    def name_for(node: Node) -> str:
        if node not in names:
            names[node] = f"#{len(names) + 1}"
        return names[node]

    def visit(edge: Edge, depth: int, slot: Optional[str]) -> None:
        prefix = indent * depth
        slot_text = f"[{slot}] " if slot is not None else ""
        if edge.is_zero:
            lines.append(f"{prefix}{slot_text}0")
            return
        weight = pretty_complex(edge.weight)
        if edge.node.is_terminal:
            lines.append(f"{prefix}{slot_text}{weight}")
            return
        expanded = edge.node not in names
        name = name_for(edge.node)
        label = f"q{edge.node.var}{name}"
        if not expanded:
            lines.append(f"{prefix}{slot_text}({weight}) -> {label} (shared)")
            return
        lines.append(f"{prefix}{slot_text}({weight}) -> {label}")
        arity = len(edge.node.edges)
        for index, child in enumerate(edge.node.edges):
            if arity == 2:
                slot_name = str(index)
            else:
                slot_name = f"{index >> 1}{index & 1}"
            visit(child, depth + 1, slot_name)

    visit(root, 0, None)
    return "\n".join(lines)


def circuit_to_text(circuit: QuantumCircuit) -> str:
    """ASCII wire diagram of a circuit (top wire = most-significant qubit)."""
    num_qubits = circuit.num_qubits
    rows: List[List[str]] = [[] for _ in range(num_qubits)]

    def pad_columns() -> None:
        width = max((len(row) for row in rows), default=0)
        for row in rows:
            while len(row) < width:
                row.append("---")

    def add_column(cells: Dict[int, str]) -> None:
        pad_columns()
        width = max(len(text) for text in cells.values())
        for qubit in range(num_qubits):
            text = cells.get(qubit, "-" * width)
            rows[qubit].append(text.center(width, "-"))

    for operation in circuit:
        if isinstance(operation, BarrierOp):
            add_column({qubit: ":" for qubit in operation.qubits})
            continue
        if isinstance(operation, MeasureOp):
            add_column({operation.qubit: f"M>c{operation.clbit}"})
            continue
        if isinstance(operation, ResetOp):
            add_column({operation.qubit: "|0>"})
            continue
        if isinstance(operation, GateOp):
            cells: Dict[int, str] = {}
            if operation.gate == "swap" and not operation.condition:
                for target in operation.targets:
                    cells[target] = "X"
            else:
                label = operation.label()
                if operation.gate == "x" and operation.num_controls:
                    label = "(+)"
                for target in operation.targets:
                    cells[target] = f"[{label}]" if not label.startswith("(") else label
            for control in operation.controls:
                cells[control] = "*"
            for control in operation.negative_controls:
                cells[control] = "o"
            # Vertical connector for multi-line gates.
            lines_used = sorted(cells)
            if len(lines_used) > 1:
                for qubit in range(lines_used[0] + 1, lines_used[-1]):
                    if qubit not in cells:
                        cells[qubit] = "|"
            add_column(cells)
    pad_columns()
    out_lines = []
    for qubit in range(num_qubits - 1, -1, -1):
        wire = "---".join(rows[qubit]) if rows[qubit] else ""
        out_lines.append(f"q{qubit}: ---{wire}---")
    return "\n".join(out_lines)
