"""Pure-Python SVG rendering of decision diagrams.

Implements the three looks of the paper's tool (classic / colored / modern,
Sec. IV-A) on top of the layered layout of :mod:`repro.vis.layout`, plus the
HLS color wheel legend of Fig. 7(b).  The output is a self-contained SVG
string; no graphviz or matplotlib required.
"""

from __future__ import annotations

import html
import math
from typing import List, Optional, Sequence, Tuple

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge
from repro.dd.node import Node
from repro.dd.package import DDPackage
from repro.errors import VisualizationError
from repro.vis.color import hls_wheel_color, phase_to_color, pretty_complex, weight_to_width
from repro.vis.layout import compute_layout
from repro.vis.style import DDStyle, RenderMode

_NODE_RADIUS = 18.0
_MODERN_SLOT = 22.0
_TERMINAL_SIZE = 26.0
_STUB_LENGTH = 22.0


def _escape(text: str) -> str:
    return html.escape(text, quote=True)


class _SvgWriter:
    """Tiny helper accumulating SVG elements."""

    def __init__(self):
        self.elements: List[str] = []

    def line(self, x1, y1, x2, y2, color="#333333", width=1.5, dashed=False):
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self.elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width:.2f}"{dash} />'
        )

    def circle(self, x, y, radius, fill="#ffffff", stroke="#333333"):
        self.elements.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius:.1f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="1.5" />'
        )

    def rect(self, x, y, width, height, fill="#ffffff", stroke="#333333", rx=0.0):
        self.elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{width:.1f}" '
            f'height="{height:.1f}" rx="{rx:.1f}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="1.5" />'
        )

    def text(self, x, y, content, size=13, anchor="middle", color="#000000"):
        self.elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}" '
            f'font-family="Helvetica, sans-serif">{_escape(content)}</text>'
        )

    def polygon(self, points: Sequence[Tuple[float, float]], fill="#333333"):
        rendered = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.elements.append(f'<polygon points="{rendered}" fill="{fill}" />')

    def path(self, definition: str, fill: str):
        self.elements.append(f'<path d="{definition}" fill="{fill}" />')


def _edge_visuals(edge: Edge, style: DDStyle) -> Tuple[str, float, bool]:
    """(color, width, dashed) for an edge under the given style."""
    color = phase_to_color(edge.weight) if style.colored_edges else "#333333"
    width = weight_to_width(edge.weight) if style.weighted_thickness else 1.5
    dashed = style.dashed_nonunit and edge.weight != ComplexTable.ONE
    return color, width, dashed


def _edge_start(node: Node, index: int, position: Tuple[float, float],
                style: DDStyle) -> Tuple[float, float]:
    x, y = position
    count = len(node.edges)
    if style.mode is RenderMode.MODERN:
        box_width = count * _MODERN_SLOT
        slot_x = x - box_width / 2.0 + (index + 0.5) * _MODERN_SLOT
        return slot_x, y + _MODERN_SLOT / 2.0 + 12.0
    spread = _NODE_RADIUS * 0.9
    if count == 2:
        offsets = (-spread * 0.6, spread * 0.6)
    else:
        offsets = (-spread, -spread / 3.0, spread / 3.0, spread)
    return x + offsets[index], y + _NODE_RADIUS * 0.85


def dd_to_svg(
    package: DDPackage,
    root: Edge,
    style: Optional[DDStyle] = None,
    qubit_labels: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a vector or matrix DD as a standalone SVG document."""
    if style is None:
        style = DDStyle.classic()
    if root.is_zero:
        raise VisualizationError("cannot render the zero decision diagram")
    layout = compute_layout(root)
    writer = _SvgWriter()

    def label_for(node: Node) -> str:
        if qubit_labels is not None and node.var < len(qubit_labels):
            return qubit_labels[node.var]
        return f"q{node.var}"

    def target_point(child: Edge) -> Tuple[float, float]:
        if child.node.is_terminal:
            x, y = layout.terminal
            return x, y - _TERMINAL_SIZE / 2.0
        x, y = layout.positions[child.node]
        if style.mode is RenderMode.MODERN:
            return x, y - _MODERN_SLOT / 2.0 - 12.0
        return x, y - _NODE_RADIUS

    # Root edge (drawn first so nodes overlay the line ends).
    root_color, root_width, root_dashed = _edge_visuals(root, style)
    anchor_x, anchor_y = layout.root_anchor
    top_x, top_y = target_point(Edge(root.node, root.weight))
    writer.line(anchor_x, anchor_y, top_x, top_y, root_color, root_width, root_dashed)
    writer.polygon(
        [(top_x - 4, top_y - 7), (top_x + 4, top_y - 7), (top_x, top_y)],
        fill=root_color,
    )
    if style.edge_labels and root.weight != ComplexTable.ONE:
        writer.text(anchor_x + 8, (anchor_y + top_y) / 2, pretty_complex(root.weight),
                    size=11, anchor="start")

    # A scalar DD's root edge points straight at the terminal, so the
    # terminal box must be drawn even though no node edge reaches it.
    uses_terminal = root.node.is_terminal
    for layer in layout.layers:
        for node in layer:
            position = layout.positions[node]
            for index, child in enumerate(node.edges):
                start_x, start_y = _edge_start(node, index, position, style)
                if child.is_zero:
                    if style.retract_zero_stubs:
                        # Classic: a short stub re-entering the node.
                        writer.line(start_x, start_y, start_x, start_y + 6, "#888888", 1.0)
                        writer.circle(start_x, start_y + 8, 2.0, fill="#888888",
                                      stroke="#888888")
                    else:
                        writer.line(start_x, start_y, start_x, start_y + _STUB_LENGTH,
                                    "#888888", 1.0)
                        writer.text(start_x, start_y + _STUB_LENGTH + 11, "0", size=10)
                    continue
                end_x, end_y = target_point(child)
                if child.node.is_terminal:
                    uses_terminal = True
                color, width, dashed = _edge_visuals(child, style)
                writer.line(start_x, start_y, end_x, end_y, color, width, dashed)
                if style.edge_labels and child.weight != ComplexTable.ONE:
                    mid_x = (start_x + end_x) / 2.0
                    mid_y = (start_y + end_y) / 2.0
                    writer.text(mid_x + 6, mid_y, pretty_complex(child.weight),
                                size=11, anchor="start")

    # Nodes.
    for layer in layout.layers:
        for node in layer:
            x, y = layout.positions[node]
            if style.mode is RenderMode.MODERN:
                count = len(node.edges)
                box_width = count * _MODERN_SLOT
                box_height = _MODERN_SLOT + 24.0
                writer.rect(x - box_width / 2.0, y - box_height / 2.0, box_width,
                            box_height, rx=6.0)
                writer.text(x, y - box_height / 2.0 + 16.0, label_for(node), size=12)
                for index, child in enumerate(node.edges):
                    slot_x = x - box_width / 2.0 + index * _MODERN_SLOT
                    slot_y = y + box_height / 2.0 - _MODERN_SLOT
                    fill = "#f0f0f0" if child.is_zero else phase_to_color(child.weight)
                    writer.rect(slot_x + 2, slot_y + 2, _MODERN_SLOT - 4,
                                _MODERN_SLOT - 4, fill=fill, stroke="#666666")
            else:
                writer.circle(x, y, _NODE_RADIUS)
                writer.text(x, y + 4.5, label_for(node), size=13)

    if uses_terminal:
        term_x, term_y = layout.terminal
        writer.rect(term_x - _TERMINAL_SIZE / 2.0, term_y - _TERMINAL_SIZE / 2.0,
                    _TERMINAL_SIZE, _TERMINAL_SIZE)
        writer.text(term_x, term_y + 4.5, "1", size=13)

    if title:
        writer.text(layout.width / 2.0, 20.0, title, size=14)
    body = "\n  ".join(writer.elements)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{layout.width:.0f}" '
        f'height="{layout.height:.0f}" viewBox="0 0 {layout.width:.0f} '
        f'{layout.height:.0f}">\n  {body}\n</svg>'
    )


def color_wheel_svg(size: float = 200.0, segments: int = 72) -> str:
    """The HLS color wheel legend of paper Fig. 7(b)."""
    center = size / 2.0
    outer = size * 0.42
    inner = size * 0.18
    writer = _SvgWriter()
    for segment in range(segments):
        start = 2.0 * math.pi * segment / segments
        end = 2.0 * math.pi * (segment + 1) / segments
        color = hls_wheel_color((start + end) / 2.0)
        # SVG y grows downward; negate the angle so the wheel runs
        # counter-clockwise like the mathematical phase convention.
        points = [
            (center + inner * math.cos(-start), center + inner * math.sin(-start)),
            (center + outer * math.cos(-start), center + outer * math.sin(-start)),
            (center + outer * math.cos(-end), center + outer * math.sin(-end)),
            (center + inner * math.cos(-end), center + inner * math.sin(-end)),
        ]
        writer.polygon(points, fill=color)
    for label, angle in (("1", 0.0), ("i", 0.5 * math.pi), ("-1", math.pi),
                         ("-i", 1.5 * math.pi)):
        x = center + (outer + 14.0) * math.cos(-angle)
        y = center + (outer + 14.0) * math.sin(-angle) + 4.0
        writer.text(x, y, label, size=13)
    body = "\n  ".join(writer.elements)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size:.0f}" '
        f'height="{size:.0f}" viewBox="0 0 {size:.0f} {size:.0f}">\n  {body}\n</svg>'
    )
