"""Per-qubit Bloch-sphere views.

Complements the decision-diagram renderings with the physicist's picture:
each qubit's reduced state (obtained via the partial trace, so it works
for mixed and entangled states alike) is drawn as a vector in the Bloch
ball.  Entangled or noisy qubits show up as vectors of length < 1 —
another way to *see* what paper Ex. 1 states ("the state of the
individual qubits cannot" be described in isolation).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dd import density
from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import VisualizationError

#: Bloch vector (x, y, z).
BlochVector = Tuple[float, float, float]

_RADIUS = 60.0
_BOX = 170.0


def bloch_vector_of_matrix(rho: np.ndarray) -> BlochVector:
    """Bloch coordinates of a single-qubit density matrix."""
    rho = np.asarray(rho, dtype=complex)
    if rho.shape != (2, 2):
        raise VisualizationError("expected a 2x2 density matrix")
    x = 2.0 * rho[0, 1].real
    y = 2.0 * rho[1, 0].imag
    z = (rho[0, 0] - rho[1, 1]).real
    return (x, y, z)


def qubit_bloch_vector(
    package: DDPackage, state: Edge, qubit: int, is_density: bool = False
) -> BlochVector:
    """Bloch vector of one qubit of a state (vector DD) or density DD."""
    rho = state if is_density else density.density_from_state(package, state)
    num_qubits = package.num_qubits(rho)
    traced = [q for q in range(num_qubits) if q != qubit]
    reduced = density.partial_trace(package, rho, traced)
    return bloch_vector_of_matrix(package.to_matrix(reduced, 1))


def all_bloch_vectors(
    package: DDPackage, state: Edge, is_density: bool = False
) -> List[BlochVector]:
    """Bloch vectors of every qubit, index 0 first."""
    num_qubits = package.num_qubits(state)
    return [
        qubit_bloch_vector(package, state, qubit, is_density=is_density)
        for qubit in range(num_qubits)
    ]


def _project(x: float, y: float, z: float) -> Tuple[float, float]:
    """Simple oblique projection: x to the right, z up, y into the page."""
    screen_x = x * 1.0 + y * 0.45
    screen_y = -z * 1.0 + y * 0.30
    return screen_x, screen_y


def bloch_svg(
    vectors: Sequence[BlochVector],
    labels: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render one Bloch ball per vector, side by side (q0 leftmost)."""
    if not vectors:
        raise VisualizationError("at least one Bloch vector is required")
    if labels is None:
        labels = [f"q{index}" for index in range(len(vectors))]
    top = 28.0 if title else 8.0
    width = len(vectors) * _BOX + 10.0
    height = _BOX + top + 8.0
    parts: List[str] = []
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="18" font-size="13" '
            f'text-anchor="middle" font-family="Helvetica, sans-serif">'
            f"{title}</text>"
        )
    for index, (vector, label) in enumerate(zip(vectors, labels)):
        cx = 10.0 + index * _BOX + _BOX / 2.0
        cy = top + _BOX / 2.0
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{_RADIUS:.1f}" '
            f'fill="none" stroke="#999999" stroke-width="1" />'
        )
        # Equator ellipse for depth.
        parts.append(
            f'<ellipse cx="{cx:.1f}" cy="{cy:.1f}" rx="{_RADIUS:.1f}" '
            f'ry="{_RADIUS * 0.3:.1f}" fill="none" stroke="#cccccc" '
            f'stroke-width="0.8" />'
        )
        # Axes.
        for axis, (ax, ay, az) in (("x", (1, 0, 0)), ("y", (0, 1, 0)),
                                   ("z", (0, 0, 1))):
            dx, dy = _project(ax, ay, az)
            parts.append(
                f'<line x1="{cx:.1f}" y1="{cy:.1f}" '
                f'x2="{cx + dx * _RADIUS:.1f}" y2="{cy + dy * _RADIUS:.1f}" '
                f'stroke="#dddddd" stroke-width="0.8" />'
            )
            parts.append(
                f'<text x="{cx + dx * (_RADIUS + 10):.1f}" '
                f'y="{cy + dy * (_RADIUS + 10) + 3:.1f}" font-size="9" '
                f'text-anchor="middle" fill="#888888">{axis}</text>'
            )
        # The state vector itself.
        x, y, z = vector
        length = math.sqrt(x * x + y * y + z * z)
        dx, dy = _project(x, y, z)
        parts.append(
            f'<line x1="{cx:.1f}" y1="{cy:.1f}" '
            f'x2="{cx + dx * _RADIUS:.1f}" y2="{cy + dy * _RADIUS:.1f}" '
            f'stroke="#c02020" stroke-width="2.2" />'
        )
        parts.append(
            f'<circle cx="{cx + dx * _RADIUS:.1f}" '
            f'cy="{cy + dy * _RADIUS:.1f}" r="3.2" fill="#c02020" />'
        )
        parts.append(
            f'<text x="{cx:.1f}" y="{top + _BOX - 2:.1f}" font-size="11" '
            f'text-anchor="middle" font-family="Helvetica, sans-serif">'
            f"{label}  |r| = {length:.2f}</text>"
        )
    body = "\n  ".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
        f"\n  {body}\n</svg>"
    )
