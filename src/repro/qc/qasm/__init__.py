"""OpenQASM 2.0 frontend.

The paper's tool loads circuits "in either .qasm or .real format"
(Sec. IV-B).  This subpackage provides a recursive-descent OpenQASM 2.0
parser (lexer in :mod:`tokens`, parser in :mod:`parser`) supporting:

* ``qreg``/``creg`` declarations (multiple registers are concatenated),
* the ``U``/``CX`` primitives and the full ``qelib1.inc`` gate set,
* user ``gate`` definitions with parameter expressions (recursively
  expanded), ``opaque`` declarations (rejected when applied),
* register broadcasting (``h q;`` applies H to every qubit of ``q``),
* ``measure``, ``reset``, ``barrier`` and ``if (c == v)`` conditions,

plus an exporter back to OpenQASM text.
"""

from repro.qc.qasm.parser import parse_qasm, parse_qasm_file
from repro.qc.qasm.exporter import circuit_to_qasm

__all__ = ["circuit_to_qasm", "parse_qasm", "parse_qasm_file"]
