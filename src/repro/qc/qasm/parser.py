"""Recursive-descent parser for OpenQASM 2.0.

Produces a :class:`repro.qc.circuit.QuantumCircuit`.  The complete
``qelib1.inc`` gate set is built in (the include statement is accepted and
is a no-op), user ``gate`` definitions are expanded recursively, and the
special operations of paper Sec. IV-B (measure, reset, barrier,
classically-controlled gates) map to the corresponding IR operations.

Qubit mapping: quantum registers are concatenated in declaration order;
``q[0]`` of the first register is line 0 (the least-significant qubit
``q_0`` in the paper's big-endian convention).  Classical registers are
concatenated likewise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ParseError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, Operation, ResetOp
from repro.qc.qasm.tokens import Token, TokenType, tokenize

# ----------------------------------------------------------------------
# expression AST
# ----------------------------------------------------------------------
_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
    "acos": math.acos,
    "asin": math.asin,
    "atan": math.atan,
}


class Expr:
    """Base class of parameter-expression AST nodes."""

    def evaluate(self, env: Dict[str, float]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    value: float

    def evaluate(self, env):
        return self.value


@dataclass(frozen=True)
class Pi(Expr):
    def evaluate(self, env):
        return math.pi


@dataclass(frozen=True)
class Param(Expr):
    name: str
    line: int

    def evaluate(self, env):
        if self.name not in env:
            raise ParseError(f"unknown parameter {self.name!r}", self.line)
        return env[self.name]


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def evaluate(self, env):
        value = self.operand.evaluate(env)
        return -value if self.op == "-" else value


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, env):
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            return left / right
        return left**right  # "^"


@dataclass(frozen=True)
class Func(Expr):
    name: str
    argument: Expr

    def evaluate(self, env):
        return _FUNCTIONS[self.name](self.argument.evaluate(env))


# ----------------------------------------------------------------------
# gate definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _GateCall:
    name: str
    params: Tuple[Expr, ...]
    qargs: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class _GateBarrier:
    qargs: Tuple[str, ...]


@dataclass(frozen=True)
class _GateDef:
    name: str
    params: Tuple[str, ...]
    qargs: Tuple[str, ...]
    body: Tuple[Union[_GateCall, _GateBarrier], ...]


#: Argument reference: (register name, index or None for the whole register).
_Argument = Tuple[str, Optional[int]]

_MAX_EXPANSION_DEPTH = 64


class _QasmParser:
    def __init__(self, source: str, name: str = "qasm"):
        self.tokens = tokenize(source)
        self.position = 0
        self.name = name
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, Tuple[int, int]] = {}
        self.num_qubits = 0
        self.num_clbits = 0
        self.gate_defs: Dict[str, _GateDef] = {}
        self.opaque_gates: set = set()
        self.operations: List[Operation] = []

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _next(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._next()
        if token.type is not TokenType.SYMBOL or token.text != symbol:
            raise self._error(f"expected {symbol!r}, found {token.text!r}", token)
        return token

    def _expect_id(self, keyword: Optional[str] = None) -> Token:
        token = self._next()
        if token.type is not TokenType.ID:
            raise self._error(f"expected identifier, found {token.text!r}", token)
        if keyword is not None and token.text != keyword:
            raise self._error(f"expected {keyword!r}, found {token.text!r}", token)
        return token

    def _expect_int(self) -> int:
        token = self._next()
        if token.type is not TokenType.INT:
            raise self._error(f"expected integer, found {token.text!r}", token)
        return int(token.text)

    def _at_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token.type is TokenType.SYMBOL and token.text == symbol

    def _at_id(self, keyword: str) -> bool:
        token = self._peek()
        return token.type is TokenType.ID and token.text == keyword

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse(self) -> QuantumCircuit:
        self._expect_id("OPENQASM")
        version = self._next()
        if version.text not in ("2.0", "2"):
            raise self._error(f"unsupported OpenQASM version {version.text!r}", version)
        self._expect_symbol(";")
        while self._peek().type is not TokenType.EOF:
            self._statement()
        if self.num_qubits == 0:
            raise ParseError("the program declares no quantum register")
        circuit = QuantumCircuit(self.num_qubits, self.num_clbits, name=self.name)
        for operation in self.operations:
            circuit.append(operation)
        return circuit

    def _statement(self) -> None:
        token = self._peek()
        if token.type is not TokenType.ID:
            raise self._error(f"unexpected token {token.text!r}")
        keyword = token.text
        if keyword == "include":
            self._include()
        elif keyword == "qreg":
            self._register(quantum=True)
        elif keyword == "creg":
            self._register(quantum=False)
        elif keyword == "gate":
            self._gate_definition()
        elif keyword == "opaque":
            self._opaque()
        elif keyword == "barrier":
            self._barrier()
        elif keyword == "measure":
            self._measure()
        elif keyword == "reset":
            self._reset()
        elif keyword == "if":
            self._if_statement()
        else:
            self._gate_application(condition=None)

    def _include(self) -> None:
        self._expect_id("include")
        filename = self._next()
        if filename.type is not TokenType.STRING:
            raise self._error("expected a string after include", filename)
        if filename.text != "qelib1.inc":
            raise self._error(
                f"cannot include {filename.text!r}; only qelib1.inc is built in",
                filename,
            )
        self._expect_symbol(";")

    def _register(self, quantum: bool) -> None:
        self._next()  # qreg / creg
        name_token = self._expect_id()
        name = name_token.text
        if name in self.qregs or name in self.cregs:
            raise self._error(f"register {name!r} already declared", name_token)
        self._expect_symbol("[")
        size = self._expect_int()
        self._expect_symbol("]")
        self._expect_symbol(";")
        if size <= 0:
            raise self._error(f"register {name!r} must have positive size", name_token)
        if quantum:
            self.qregs[name] = (self.num_qubits, size)
            self.num_qubits += size
        else:
            self.cregs[name] = (self.num_clbits, size)
            self.num_clbits += size

    # ------------------------------------------------------------------
    # gate definitions
    # ------------------------------------------------------------------
    def _gate_definition(self) -> None:
        self._expect_id("gate")
        name = self._expect_id().text
        params: Tuple[str, ...] = ()
        if self._at_symbol("("):
            self._next()
            params = tuple(self._id_list()) if not self._at_symbol(")") else ()
            self._expect_symbol(")")
        qargs = tuple(self._id_list())
        self._expect_symbol("{")
        body: List[Union[_GateCall, _GateBarrier]] = []
        while not self._at_symbol("}"):
            token = self._peek()
            if token.type is not TokenType.ID:
                raise self._error(f"unexpected token {token.text!r} in gate body")
            if token.text == "barrier":
                self._next()
                body.append(_GateBarrier(tuple(self._id_list())))
                self._expect_symbol(";")
                continue
            call_name = self._next().text
            call_params: Tuple[Expr, ...] = ()
            if self._at_symbol("("):
                self._next()
                if not self._at_symbol(")"):
                    call_params = tuple(self._expression_list())
                self._expect_symbol(")")
            call_qargs = tuple(self._id_list())
            self._expect_symbol(";")
            body.append(_GateCall(call_name, call_params, call_qargs, token.line))
        self._expect_symbol("}")
        self.gate_defs[name] = _GateDef(name, params, qargs, tuple(body))

    def _opaque(self) -> None:
        self._expect_id("opaque")
        name = self._expect_id().text
        if self._at_symbol("("):
            self._next()
            if not self._at_symbol(")"):
                self._id_list()
            self._expect_symbol(")")
        self._id_list()
        self._expect_symbol(";")
        self.opaque_gates.add(name)

    def _id_list(self) -> List[str]:
        names = [self._expect_id().text]
        while self._at_symbol(","):
            self._next()
            names.append(self._expect_id().text)
        return names

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _barrier(self) -> None:
        self._expect_id("barrier")
        arguments = self._argument_list()
        self._expect_symbol(";")
        lines: List[int] = []
        for argument in arguments:
            lines.extend(self._qubit_lines(argument))
        self.operations.append(BarrierOp(lines=tuple(lines)))

    def _measure(self) -> None:
        self._expect_id("measure")
        source = self._argument()
        self._expect_symbol("->")
        destination = self._argument()
        self._expect_symbol(";")
        qubits = self._qubit_lines(source)
        clbits = self._clbit_lines(destination)
        if len(qubits) != len(clbits):
            raise ParseError(
                f"measure size mismatch: {len(qubits)} qubits vs {len(clbits)} bits"
            )
        for qubit, clbit in zip(qubits, clbits):
            self.operations.append(MeasureOp(qubit=qubit, clbit=clbit))

    def _reset(self) -> None:
        self._expect_id("reset")
        argument = self._argument()
        self._expect_symbol(";")
        for qubit in self._qubit_lines(argument):
            self.operations.append(ResetOp(qubit=qubit))

    def _if_statement(self) -> None:
        self._expect_id("if")
        self._expect_symbol("(")
        creg_token = self._expect_id()
        creg = creg_token.text
        if creg not in self.cregs:
            raise self._error(f"unknown classical register {creg!r}", creg_token)
        self._expect_symbol("==")
        value = self._expect_int()
        self._expect_symbol(")")
        offset, size = self.cregs[creg]
        condition = (tuple(range(offset, offset + size)), value)
        token = self._peek()
        if token.type is TokenType.ID and token.text in ("measure", "reset"):
            raise self._error("conditioned measure/reset is not supported", token)
        self._gate_application(condition=condition)

    def _argument(self) -> _Argument:
        name = self._expect_id().text
        index: Optional[int] = None
        if self._at_symbol("["):
            self._next()
            index = self._expect_int()
            self._expect_symbol("]")
        return name, index

    def _argument_list(self) -> List[_Argument]:
        arguments = [self._argument()]
        while self._at_symbol(","):
            self._next()
            arguments.append(self._argument())
        return arguments

    def _qubit_lines(self, argument: _Argument) -> List[int]:
        name, index = argument
        if name not in self.qregs:
            raise ParseError(f"unknown quantum register {name!r}")
        offset, size = self.qregs[name]
        if index is None:
            return list(range(offset, offset + size))
        if not 0 <= index < size:
            raise ParseError(f"index {index} out of range for register {name!r}")
        return [offset + index]

    def _clbit_lines(self, argument: _Argument) -> List[int]:
        name, index = argument
        if name not in self.cregs:
            raise ParseError(f"unknown classical register {name!r}")
        offset, size = self.cregs[name]
        if index is None:
            return list(range(offset, offset + size))
        if not 0 <= index < size:
            raise ParseError(f"index {index} out of range for register {name!r}")
        return [offset + index]

    # ------------------------------------------------------------------
    # gate applications
    # ------------------------------------------------------------------
    def _gate_application(self, condition) -> None:
        name_token = self._expect_id()
        name = name_token.text
        params: List[float] = []
        if self._at_symbol("("):
            self._next()
            if not self._at_symbol(")"):
                for expression in self._expression_list():
                    params.append(expression.evaluate({}))
            self._expect_symbol(")")
        arguments = self._argument_list()
        self._expect_symbol(";")
        for lines in self._broadcast(arguments, name_token):
            self._emit(name, params, lines, condition, name_token, depth=0)

    def _broadcast(
        self, arguments: Sequence[_Argument], token: Token
    ) -> List[List[int]]:
        """Expand whole-register arguments into per-qubit applications."""
        expanded = [self._qubit_lines(argument) for argument in arguments]
        sizes = {len(lines) for lines in expanded if len(lines) > 1}
        # Single-qubit arguments always broadcast; full registers must agree.
        register_sizes = {
            len(self._qubit_lines(argument))
            for argument in arguments
            if argument[1] is None
        }
        register_sizes.discard(1)
        if len(register_sizes) > 1:
            raise self._error("mismatched register sizes in broadcast", token)
        repeat = register_sizes.pop() if register_sizes else 1
        if repeat == 1 and sizes:
            raise self._error("indexed and register arguments mismatch", token)
        applications = []
        for step in range(repeat):
            lines = []
            for argument, qubits in zip(arguments, expanded):
                if argument[1] is None and len(qubits) > 1:
                    lines.append(qubits[step])
                else:
                    lines.append(qubits[0])
            applications.append(lines)
        return applications

    def _emit(
        self,
        name: str,
        params: Sequence[float],
        lines: Sequence[int],
        condition,
        token: Token,
        depth: int,
    ) -> None:
        if depth > _MAX_EXPANSION_DEPTH:
            raise self._error(
                f"gate expansion too deep (cycle involving {name!r}?)", token
            )
        definition = self.gate_defs.get(name)
        if definition is not None:
            self._expand(definition, params, lines, condition, token, depth)
            return
        builder = _NATIVE_GATES.get(name)
        if builder is not None:
            expected_params, expected_qubits = builder.arity
            if len(params) != expected_params:
                raise self._error(
                    f"gate {name!r} takes {expected_params} parameter(s), "
                    f"got {len(params)}",
                    token,
                )
            if len(lines) != expected_qubits:
                raise self._error(
                    f"gate {name!r} takes {expected_qubits} qubit(s), "
                    f"got {len(lines)}",
                    token,
                )
            self.operations.extend(builder.build(tuple(params), tuple(lines), condition))
            return
        if name in self.opaque_gates:
            raise self._error(f"cannot apply opaque gate {name!r}", token)
        raise self._error(f"unknown gate {name!r}", token)

    def _expand(
        self,
        definition: _GateDef,
        params: Sequence[float],
        lines: Sequence[int],
        condition,
        token: Token,
        depth: int,
    ) -> None:
        if len(params) != len(definition.params):
            raise self._error(
                f"gate {definition.name!r} takes {len(definition.params)} "
                f"parameter(s), got {len(params)}",
                token,
            )
        if len(lines) != len(definition.qargs):
            raise self._error(
                f"gate {definition.name!r} takes {len(definition.qargs)} "
                f"qubit(s), got {len(lines)}",
                token,
            )
        env = dict(zip(definition.params, params))
        binding = dict(zip(definition.qargs, lines))
        for item in definition.body:
            if isinstance(item, _GateBarrier):
                self.operations.append(
                    BarrierOp(lines=tuple(binding[name] for name in item.qargs))
                )
                continue
            values = [expression.evaluate(env) for expression in item.params]
            try:
                mapped = [binding[name] for name in item.qargs]
            except KeyError as missing:
                raise ParseError(
                    f"unknown qubit argument {missing.args[0]!r} in gate "
                    f"{definition.name!r}",
                    item.line,
                ) from None
            self._emit(item.name, values, mapped, condition, token, depth + 1)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expression_list(self) -> List[Expr]:
        expressions = [self._expression()]
        while self._at_symbol(","):
            self._next()
            expressions.append(self._expression())
        return expressions

    def _expression(self) -> Expr:
        left = self._term()
        while self._at_symbol("+") or self._at_symbol("-"):
            op = self._next().text
            left = BinOp(op, left, self._term())
        return left

    def _term(self) -> Expr:
        left = self._factor()
        while self._at_symbol("*") or self._at_symbol("/"):
            op = self._next().text
            left = BinOp(op, left, self._factor())
        return left

    def _factor(self) -> Expr:
        base = self._base()
        if self._at_symbol("^"):
            self._next()
            return BinOp("^", base, self._factor())  # right-associative
        return base

    def _base(self) -> Expr:
        token = self._next()
        if token.type in (TokenType.REAL, TokenType.INT):
            return Num(float(token.text))
        if token.type is TokenType.SYMBOL and token.text == "-":
            return UnOp("-", self._base())
        if token.type is TokenType.SYMBOL and token.text == "+":
            return UnOp("+", self._base())
        if token.type is TokenType.SYMBOL and token.text == "(":
            inner = self._expression()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.ID:
            if token.text == "pi":
                return Pi()
            if token.text in _FUNCTIONS:
                self._expect_symbol("(")
                argument = self._expression()
                self._expect_symbol(")")
                return Func(token.text, argument)
            return Param(token.text, token.line)
        raise self._error(f"unexpected token {token.text!r} in expression", token)


# ----------------------------------------------------------------------
# native gate builders (qelib1.inc and the U/CX primitives)
# ----------------------------------------------------------------------
class _Native:
    """A built-in gate: arity plus an operation builder."""

    def __init__(self, num_params: int, num_qubits: int, build):
        self.arity = (num_params, num_qubits)
        self._build = build

    def build(self, params, lines, condition) -> List[GateOp]:
        return self._build(params, lines, condition)


def _simple(gate: str, with_params: bool = False):
    def build(params, lines, condition):
        return [
            GateOp(
                gate=gate,
                params=params if with_params else (),
                targets=(lines[-1],),
                controls=tuple(lines[:-1]),
                condition=condition,
            )
        ]

    return build


def _swap_like(gate: str):
    def build(params, lines, condition):
        *controls, a, b = lines
        high, low = (a, b) if a > b else (b, a)
        return [
            GateOp(
                gate=gate,
                targets=(high, low),
                controls=tuple(controls),
                condition=condition,
            )
        ]

    return build


def _identity_like(params, lines, condition):
    return [GateOp(gate="id", targets=(lines[0],), condition=condition)]


def _rzz(params, lines, condition):
    (theta,) = params
    a, b = lines
    return [
        GateOp(gate="x", targets=(b,), controls=(a,), condition=condition),
        GateOp(gate="u1", params=(theta,), targets=(b,), condition=condition),
        GateOp(gate="x", targets=(b,), controls=(a,), condition=condition),
    ]


_NATIVE_GATES: Dict[str, _Native] = {
    # primitives
    "U": _Native(3, 1, _simple("u3", with_params=True)),
    "CX": _Native(0, 2, _simple("x")),
    # single-qubit, no parameters
    "id": _Native(0, 1, _simple("id")),
    "x": _Native(0, 1, _simple("x")),
    "y": _Native(0, 1, _simple("y")),
    "z": _Native(0, 1, _simple("z")),
    "h": _Native(0, 1, _simple("h")),
    "s": _Native(0, 1, _simple("s")),
    "sdg": _Native(0, 1, _simple("sdg")),
    "t": _Native(0, 1, _simple("t")),
    "tdg": _Native(0, 1, _simple("tdg")),
    "sx": _Native(0, 1, _simple("sx")),
    "sxdg": _Native(0, 1, _simple("sxdg")),
    # single-qubit, parametrized
    "rx": _Native(1, 1, _simple("rx", with_params=True)),
    "ry": _Native(1, 1, _simple("ry", with_params=True)),
    "rz": _Native(1, 1, _simple("rz", with_params=True)),
    "p": _Native(1, 1, _simple("p", with_params=True)),
    "u1": _Native(1, 1, _simple("u1", with_params=True)),
    "u2": _Native(2, 1, _simple("u2", with_params=True)),
    "u3": _Native(3, 1, _simple("u3", with_params=True)),
    "u": _Native(3, 1, _simple("u3", with_params=True)),
    "u0": _Native(1, 1, _identity_like),
    # controlled
    "cx": _Native(0, 2, _simple("x")),
    "cy": _Native(0, 2, _simple("y")),
    "cz": _Native(0, 2, _simple("z")),
    "ch": _Native(0, 2, _simple("h")),
    "csx": _Native(0, 2, _simple("sx")),
    "crx": _Native(1, 2, _simple("rx", with_params=True)),
    "cry": _Native(1, 2, _simple("ry", with_params=True)),
    "crz": _Native(1, 2, _simple("rz", with_params=True)),
    "cp": _Native(1, 2, _simple("p", with_params=True)),
    "cu1": _Native(1, 2, _simple("p", with_params=True)),
    "cu3": _Native(3, 2, _simple("u3", with_params=True)),
    "ccx": _Native(0, 3, _simple("x")),
    # two-qubit
    "swap": _Native(0, 2, _swap_like("swap")),
    "iswap": _Native(0, 2, _swap_like("iswap")),
    "iswapdg": _Native(0, 2, _swap_like("iswapdg")),
    "cswap": _Native(0, 3, _swap_like("swap")),
    "rzz": _Native(1, 2, _rzz),
}


def parse_qasm(source: str, name: str = "qasm") -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a circuit."""
    return _QasmParser(source, name=name).parse()


_MAX_INCLUDE_DEPTH = 8
_INCLUDE_PATTERN = __import__("re").compile(
    r'^\s*include\s+"([^"]+)"\s*;\s*$', __import__("re").MULTILINE
)


def _resolve_includes(source: str, directory: str, depth: int = 0) -> str:
    """Textually splice ``include "file";`` directives found next to the
    including file.  ``qelib1.inc`` stays untouched (built in); missing
    files are also left for the parser to report."""
    import os

    if depth > _MAX_INCLUDE_DEPTH:
        raise ParseError("include nesting too deep (cycle?)")

    def replace(match):
        filename = match.group(1)
        if filename == "qelib1.inc":
            return match.group(0)
        candidate = os.path.join(directory, filename)
        if not os.path.exists(candidate):
            return match.group(0)  # parser will raise a clear error
        with open(candidate, "r", encoding="utf-8") as handle:
            included = handle.read()
        return _resolve_includes(
            included, os.path.dirname(candidate), depth + 1
        )

    return _INCLUDE_PATTERN.sub(replace, source)


def parse_qasm_file(path: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file into a circuit (named after the file).

    ``include`` directives naming files next to ``path`` are spliced in
    (``qelib1.inc`` is built in and needs no file).
    """
    import os

    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    source = _resolve_includes(source, os.path.dirname(os.path.abspath(path)))
    name = os.path.splitext(os.path.basename(path))[0]
    return parse_qasm(source, name=name)
