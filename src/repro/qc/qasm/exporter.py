"""Serialization of circuits back to OpenQASM 2.0 text.

Emits a single quantum register ``q`` and classical register ``c``.
Negative controls (not expressible in OpenQASM 2.0) are exported by
conjugating the control line with ``x`` gates; multi-controlled gates
beyond the standard library raise.
"""

from __future__ import annotations

from typing import List

from repro.errors import CircuitError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, ResetOp

#: (base gate, number of positive controls) -> qasm name
_EXPORT_NAMES = {
    ("id", 0): "id",
    ("x", 0): "x",
    ("x", 1): "cx",
    ("x", 2): "ccx",
    ("y", 0): "y",
    ("y", 1): "cy",
    ("z", 0): "z",
    ("z", 1): "cz",
    ("h", 0): "h",
    ("h", 1): "ch",
    ("s", 0): "s",
    ("sdg", 0): "sdg",
    ("t", 0): "t",
    ("tdg", 0): "tdg",
    ("sx", 0): "sx",
    ("sx", 1): "csx",
    ("sxdg", 0): "sxdg",
    ("rx", 0): "rx",
    ("rx", 1): "crx",
    ("ry", 0): "ry",
    ("ry", 1): "cry",
    ("rz", 0): "rz",
    ("rz", 1): "crz",
    ("p", 0): "p",
    ("p", 1): "cp",
    ("u1", 0): "u1",
    ("u1", 1): "cu1",
    ("u2", 0): "u2",
    ("u3", 0): "u3",
    ("u3", 1): "cu3",
    ("u", 0): "u3",
    ("u", 1): "cu3",
    ("swap", 0): "swap",
    ("swap", 1): "cswap",
    ("iswap", 0): "iswap",
    ("iswapdg", 0): "iswapdg",
}


def _format_params(params) -> str:
    if not params:
        return ""
    return "(" + ",".join(repr(float(value)) for value in params) + ")"


def _gate_line(operation: GateOp) -> str:
    key = (operation.gate, len(operation.controls))
    name = _EXPORT_NAMES.get(key)
    if name is None:
        raise CircuitError(
            f"gate {operation.gate!r} with {len(operation.controls)} control(s) "
            "has no OpenQASM 2.0 representation"
        )
    # qasm argument order: controls first, then targets; for multi-target
    # gates the IR stores (high, low) which maps directly.
    lines = list(operation.controls) + list(operation.targets)
    arguments = ",".join(f"q[{line}]" for line in lines)
    return f"{name}{_format_params(operation.params)} {arguments};"


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Render ``circuit`` as OpenQASM 2.0 source text."""
    out: List[str] = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits:
        out.append(f"creg c[{circuit.num_clbits}];")
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            if set(operation.lines) == set(range(circuit.num_qubits)):
                out.append("barrier q;")
            else:
                arguments = ",".join(f"q[{line}]" for line in operation.lines)
                out.append(f"barrier {arguments};")
            continue
        if isinstance(operation, MeasureOp):
            out.append(f"measure q[{operation.qubit}] -> c[{operation.clbit}];")
            continue
        if isinstance(operation, ResetOp):
            out.append(f"reset q[{operation.qubit}];")
            continue
        if isinstance(operation, GateOp):
            prefix = ""
            if operation.condition is not None:
                clbits, value = operation.condition
                if tuple(clbits) != tuple(range(circuit.num_clbits)):
                    raise CircuitError(
                        "only conditions on the full classical register can "
                        "be exported to OpenQASM 2.0"
                    )
                prefix = f"if(c=={value}) "
            flips = [f"x q[{line}];" for line in operation.negative_controls]
            if flips and operation.condition is not None:
                raise CircuitError(
                    "cannot export a conditioned gate with negative controls"
                )
            out.extend(flips)
            positive = GateOp(
                gate=operation.gate,
                params=operation.params,
                targets=operation.targets,
                controls=operation.controls + operation.negative_controls,
            )
            out.append(prefix + _gate_line(positive))
            out.extend(flips)
            continue
        raise CircuitError(f"cannot export operation {operation!r}")
    return "\n".join(out) + "\n"
