"""Lexer for OpenQASM 2.0."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError


class TokenType(enum.Enum):
    ID = "identifier"
    REAL = "real"
    INT = "integer"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "end of input"


#: Multi-character symbols must be listed before their prefixes.
_SYMBOLS = ("->", "==", "(", ")", "[", "]", "{", "}", ";", ",", "+", "-",
            "*", "/", "^")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.type.name} {self.text!r} @{self.line}:{self.column}>"


def tokenize(source: str) -> List[Token]:
    """Turn OpenQASM source text into a token list (ending with EOF)."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    position = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and source[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = source[position]
        if char in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            advance((end - position) if end != -1 else (length - position))
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position)
            if end == -1:
                raise ParseError("unterminated block comment", line, column)
            advance(end + 2 - position)
            continue
        if char == '"':
            end = source.find('"', position + 1)
            if end == -1:
                raise ParseError("unterminated string literal", line, column)
            text = source[position + 1 : end]
            yield Token(TokenType.STRING, text, line, column)
            advance(end + 1 - position)
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length and source[position + 1].isdigit()
        ):
            start = position
            start_line, start_column = line, column
            seen_dot = False
            seen_exp = False
            scan = position
            while scan < length:
                current = source[scan]
                if current.isdigit():
                    scan += 1
                elif current == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    scan += 1
                elif current in "eE" and not seen_exp and scan > start:
                    seen_exp = True
                    scan += 1
                    if scan < length and source[scan] in "+-":
                        scan += 1
                else:
                    break
            text = source[start:scan]
            kind = TokenType.REAL if (seen_dot or seen_exp) else TokenType.INT
            yield Token(kind, text, start_line, start_column)
            advance(scan - position)
            continue
        if char.isalpha() or char == "_":
            start = position
            start_line, start_column = line, column
            scan = position
            while scan < length and (source[scan].isalnum() or source[scan] == "_"):
                scan += 1
            yield Token(TokenType.ID, source[start:scan], start_line, start_column)
            advance(scan - position)
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, position):
                yield Token(TokenType.SYMBOL, symbol, line, column)
                advance(len(symbol))
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column)
    yield Token(TokenType.EOF, "", line, column)
