"""Circuit operations.

Gates (:class:`GateOp`) apply a unitary; the *special operations* of paper
Sec. IV-B do not directly correspond to a unitary matrix:

* :class:`BarrierOp` — a breakpoint for the step controls;
* :class:`MeasureOp` — collapses one qubit into a classical bit;
* :class:`ResetOp` — probabilistic reset of a qubit to |0>.

Gates may carry a *classical condition* ``(clbits, value)`` implementing
OpenQASM's ``if (c == value)`` construct: the gate is applied only if the
named classical bits (LSB first) currently hold ``value``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import CircuitError
from repro.qc import gates as gate_library


@dataclass(frozen=True)
class Operation:
    """Base class for everything that can appear in a circuit."""

    @property
    def is_unitary(self) -> bool:
        return False

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All qubit lines this operation touches."""
        raise NotImplementedError


@dataclass(frozen=True)
class GateOp(Operation):
    """A (possibly controlled, possibly classically conditioned) gate.

    ``gate`` names a base gate of :mod:`repro.qc.gates`; ``targets`` are its
    target lines in big-endian order (most significant first for two-qubit
    gates); ``controls`` / ``negative_controls`` are additional lines on
    which the gate is conditioned (|1> resp. |0>).
    """

    gate: str
    params: Tuple[float, ...] = ()
    targets: Tuple[int, ...] = ()
    controls: Tuple[int, ...] = ()
    negative_controls: Tuple[int, ...] = ()
    condition: Optional[Tuple[Tuple[int, ...], int]] = None

    def __post_init__(self):
        num_params, num_targets = gate_library.gate_signature(self.gate)
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        object.__setattr__(self, "targets", tuple(int(q) for q in self.targets))
        object.__setattr__(self, "controls", tuple(int(q) for q in self.controls))
        object.__setattr__(
            self, "negative_controls", tuple(int(q) for q in self.negative_controls)
        )
        if len(self.params) != num_params:
            raise CircuitError(
                f"gate {self.gate!r} takes {num_params} parameter(s), "
                f"got {len(self.params)}"
            )
        if len(self.targets) != num_targets:
            raise CircuitError(
                f"gate {self.gate!r} takes {num_targets} target(s), "
                f"got {len(self.targets)}"
            )
        lines = self.qubits
        if len(set(lines)) != len(lines):
            raise CircuitError(f"operation uses a qubit line twice: {lines}")

    @property
    def is_unitary(self) -> bool:
        # A conditioned gate is not a unitary of the quantum system alone.
        return self.condition is None

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.targets + self.controls + self.negative_controls

    @property
    def num_controls(self) -> int:
        return len(self.controls) + len(self.negative_controls)

    def matrix(self):
        """The base gate's (local) unitary matrix, controls excluded."""
        return gate_library.gate_matrix(self.gate, self.params)

    def matrix_readonly(self):
        """Shared write-protected gate matrix for hot read-only paths."""
        return gate_library.gate_matrix_readonly(self.gate, self.params)

    def inverse(self) -> "GateOp":
        """The inverse gate (same lines, inverted base gate)."""
        if self.condition is not None:
            raise CircuitError("classically-controlled gates cannot be inverted")
        name, params = gate_library.inverse_gate(self.gate, self.params)
        return GateOp(
            gate=name,
            params=params,
            targets=self.targets,
            controls=self.controls,
            negative_controls=self.negative_controls,
        )

    def label(self) -> str:
        """Short human-readable label (used by the visualization layer)."""
        name = self.gate.upper()
        if self.params:
            rendered = ", ".join(_format_angle(p) for p in self.params)
            name = f"{name}({rendered})"
        return name


@dataclass(frozen=True)
class MeasureOp(Operation):
    """Measure ``qubit`` into classical bit ``clbit`` (paper Sec. IV-B)."""

    qubit: int
    clbit: int

    @property
    def qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class ResetOp(Operation):
    """Discard ``qubit`` and re-initialize it to |0> (paper Sec. IV-B)."""

    qubit: int

    @property
    def qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class BarrierOp(Operation):
    """A breakpoint marker (paper Sec. IV-B); no effect on the state."""

    lines: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.lines


def _format_angle(value: float) -> str:
    """Render an angle compactly as a fraction of pi where possible."""
    import math

    if value == 0.0:
        return "0"
    for denominator in (1, 2, 3, 4, 6, 8, 16, 32):
        for sign in (1.0, -1.0):
            if abs(value - sign * math.pi / denominator) < 1e-12:
                prefix = "-" if sign < 0 else ""
                return f"{prefix}pi" if denominator == 1 else f"{prefix}pi/{denominator}"
    return f"{value:.4g}"
