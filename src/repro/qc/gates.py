"""The standard gate library.

Provides the matrices of all gates used by the paper and by OpenQASM 2.0's
``qelib1.inc``: the Paulis, Hadamard, the phase family ``S``/``T``/``P``
(paper Ex. 10: ``S = P(pi/2)``, ``T = P(pi/4)``), rotations, the IBM
``U1``/``U2``/``U3`` family, and the two-qubit primitives SWAP and iSWAP.
Controlled versions are not separate gates here — the circuit IR attaches
control lines to a base gate (paper Ex. 4: "a negation ... applied to a
target qubit if and only if certain control qubits are in state |1>").

All matrices follow the big-endian qubit order of the paper (footnote 1).
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import GateError

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _mat(rows) -> np.ndarray:
    return np.array(rows, dtype=complex)


def _rx(theta: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return _mat([[cos, -1j * sin], [-1j * sin, cos]])


def _ry(theta: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return _mat([[cos, -sin], [sin, cos]])


def _rz(theta: float) -> np.ndarray:
    return _mat([[cmath.exp(-0.5j * theta), 0.0], [0.0, cmath.exp(0.5j * theta)]])


def _phase(lam: float) -> np.ndarray:
    return _mat([[1.0, 0.0], [0.0, cmath.exp(1j * lam)]])


def _u2(phi: float, lam: float) -> np.ndarray:
    return _SQRT2_INV * _mat(
        [
            [1.0, -cmath.exp(1j * lam)],
            [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
        ]
    )


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return _mat(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ]
    )


#: name -> (number of parameters, number of target qubits)
_SIGNATURES: Dict[str, Tuple[int, int]] = {
    "id": (0, 1),
    "x": (0, 1),
    "y": (0, 1),
    "z": (0, 1),
    "h": (0, 1),
    "s": (0, 1),
    "sdg": (0, 1),
    "t": (0, 1),
    "tdg": (0, 1),
    "sx": (0, 1),
    "sxdg": (0, 1),
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "p": (1, 1),
    "u1": (1, 1),
    "u2": (2, 1),
    "u3": (3, 1),
    "u": (3, 1),
    "swap": (0, 2),
    "iswap": (0, 2),
    "iswapdg": (0, 2),
}

_FIXED_MATRICES: Dict[str, np.ndarray] = {
    "id": _mat([[1, 0], [0, 1]]),
    "x": _mat([[0, 1], [1, 0]]),
    "y": _mat([[0, -1j], [1j, 0]]),
    "z": _mat([[1, 0], [0, -1]]),
    "h": _SQRT2_INV * _mat([[1, 1], [1, -1]]),
    "s": _mat([[1, 0], [0, 1j]]),
    "sdg": _mat([[1, 0], [0, -1j]]),
    "t": _mat([[1, 0], [0, cmath.exp(0.25j * math.pi)]]),
    "tdg": _mat([[1, 0], [0, cmath.exp(-0.25j * math.pi)]]),
    "sx": 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]),
    "sxdg": 0.5 * _mat([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]]),
    "swap": _mat([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]),
    "iswap": _mat([[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]),
    "iswapdg": _mat([[1, 0, 0, 0], [0, 0, -1j, 0], [0, -1j, 0, 0], [0, 0, 0, 1]]),
}

#: Gates that are their own inverse.
_SELF_INVERSE = frozenset({"id", "x", "y", "z", "h", "swap"})

#: Fixed gates whose inverse is another fixed gate.
_INVERSE_PAIRS = {
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
    "iswap": "iswapdg",
    "iswapdg": "iswap",
}

#: Parametrized gates inverted by negating every parameter.
_NEGATE_PARAMS = frozenset({"rx", "ry", "rz", "p", "u1"})


def is_known_gate(name: str) -> bool:
    """Whether ``name`` is a gate of the standard library."""
    return name in _SIGNATURES


def gate_signature(name: str) -> Tuple[int, int]:
    """Return ``(num_params, num_targets)`` for gate ``name``."""
    signature = _SIGNATURES.get(name)
    if signature is None:
        raise GateError(f"unknown gate {name!r}")
    return signature


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """The unitary matrix of a base gate (2x2 or 4x4)."""
    return gate_matrix_readonly(name, params).copy()


#: Interned gate matrices: building (and re-canonicalizing) the same phase
#: matrix on every application dominates steady-state gate dispatch.
_MATRIX_CACHE: dict = {}


def gate_matrix_readonly(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Like :func:`gate_matrix`, but a shared write-protected instance.

    Callers must not mutate the result; the hot gate-application path uses
    this to skip rebuilding the matrix of a repeated gate.
    """
    if type(params) is tuple:
        # Cached keys were validated when first built, so a hit needs no
        # re-validation (GateOp always passes its normalized float tuple).
        cached = _MATRIX_CACHE.get((name, params))
        if cached is not None:
            return cached
    num_params, _ = gate_signature(name)
    params = tuple(float(value) for value in params)
    if len(params) != num_params:
        raise GateError(
            f"gate {name!r} takes {num_params} parameter(s), got {len(params)}"
        )
    cached = _MATRIX_CACHE.get((name, params))
    if cached is not None:
        return cached
    fixed = _FIXED_MATRICES.get(name)
    if fixed is not None:
        matrix = fixed.copy()
    elif name == "rx":
        matrix = _rx(params[0])
    elif name == "ry":
        matrix = _ry(params[0])
    elif name == "rz":
        matrix = _rz(params[0])
    elif name in ("p", "u1"):
        matrix = _phase(params[0])
    elif name == "u2":
        matrix = _u2(params[0], params[1])
    elif name in ("u3", "u"):
        matrix = _u3(params[0], params[1], params[2])
    else:  # pragma: no cover - guarded by gate_signature above
        raise GateError(f"unknown gate {name!r}")
    matrix.setflags(write=False)
    if len(_MATRIX_CACHE) > 4096:
        _MATRIX_CACHE.clear()
    _MATRIX_CACHE[(name, params)] = matrix
    return matrix


def inverse_gate(name: str, params: Sequence[float] = ()) -> Tuple[str, Tuple[float, ...]]:
    """Name and parameters of the inverse of a base gate.

    Used by :meth:`QuantumCircuit.inverse` — and hence by the ``G (G')^-1``
    verification scheme (paper Sec. III-C).
    """
    params = tuple(float(value) for value in params)
    gate_signature(name)  # validates the name
    if name in _SELF_INVERSE:
        return name, params
    paired = _INVERSE_PAIRS.get(name)
    if paired is not None:
        return paired, params
    if name in _NEGATE_PARAMS:
        return name, tuple(-value for value in params)
    if name == "u2":
        phi, lam = params
        return "u3", (-math.pi / 2.0, -lam, -phi)
    if name in ("u3", "u"):
        theta, phi, lam = params
        return name, (-theta, -lam, -phi)
    raise GateError(f"gate {name!r} has no symbolic inverse")


def is_unitary(matrix: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Whether ``matrix`` is unitary (paper footnote 2)."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(
        np.allclose(matrix @ matrix.conj().T, identity, atol=tolerance)
        and np.allclose(matrix.conj().T @ matrix, identity, atol=tolerance)
    )
