"""Generators for well-known circuits.

Includes every circuit the paper uses — the Bell-pair circuit of Fig. 1(c),
the ``n``-qubit QFT of Fig. 5(a) and its *compiled* version in the spirit of
Fig. 5(b) (controlled phases and SWAPs decomposed into primitive gates, with
barriers after each original gate, which the alternating verification
strategy of Ex. 12 exploits) — plus the usual suspects for benchmarking
decision-diagram compactness: GHZ, W, Grover, Bernstein-Vazirani and random
circuits.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import CircuitError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp


def bell_pair() -> QuantumCircuit:
    """The two-qubit circuit of paper Fig. 1(c): H on q1, then CNOT."""
    circuit = QuantumCircuit(2, 2, name="bell")
    circuit.h(1)
    circuit.cx(1, 0)
    return circuit


def ghz_state(num_qubits: int) -> QuantumCircuit:
    """GHZ preparation: H on the top qubit, then a CNOT cascade."""
    if num_qubits < 2:
        raise CircuitError("GHZ needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(num_qubits - 1)
    for qubit in range(num_qubits - 1, 0, -1):
        circuit.cx(qubit, qubit - 1)
    return circuit


def w_state(num_qubits: int) -> QuantumCircuit:
    """W-state preparation via an excitation-splitting CRY/CX chain.

    Starting from ``|0...01>``, step ``i`` keeps probability ``1/(n-i)`` of
    the remaining mass on qubit ``i`` and passes the rest upward, yielding
    equal amplitudes on all one-hot basis states.
    """
    if num_qubits < 2:
        raise CircuitError("the W state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"w_{num_qubits}")
    circuit.x(0)
    for qubit in range(num_qubits - 1):
        remaining = num_qubits - qubit
        theta = 2.0 * math.acos(math.sqrt(1.0 / remaining))
        circuit.cry(theta, qubit, qubit + 1)
        circuit.cx(qubit + 1, qubit)
    return circuit


def qft(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """The Quantum Fourier Transform of paper Fig. 5(a).

    For each qubit from the most significant down: a Hadamard followed by
    controlled phase rotations ``P(pi/2^d)`` from each less-significant
    qubit at distance ``d`` (``S = P(pi/2)``, ``T = P(pi/4)``; paper Ex. 10),
    finished by the qubit-reversal SWAPs.
    """
    if num_qubits < 1:
        raise CircuitError("the QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits - 1, -1, -1):
        circuit.h(target)
        for control in range(target - 1, -1, -1):
            distance = target - control
            circuit.cp(math.pi / (2**distance), control, target)
    if include_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    return circuit


def qft_compiled(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """A compiled QFT in the spirit of paper Fig. 5(b).

    Controlled phases and SWAPs are not native to current devices (paper
    Ex. 10), so each is decomposed into phase gates and CNOTs:

    * ``cp(lam) c,t  ->  p(lam/2) c; cx c,t; p(-lam/2) t; cx c,t; p(lam/2) t``
    * ``swap a,b     ->  cx a,b; cx b,a; cx a,b``

    A barrier is placed after the expansion of each abstract gate — exactly
    the breakpoints the alternating verification of Ex. 12 steps to.
    """
    abstract = qft(num_qubits, include_swaps=include_swaps)
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}_compiled")
    for operation in abstract:
        if isinstance(operation, GateOp) and operation.gate == "p" and operation.controls:
            (lam,) = operation.params
            control = operation.controls[0]
            target = operation.targets[0]
            circuit.p(lam / 2.0, control)
            circuit.cx(control, target)
            circuit.p(-lam / 2.0, target)
            circuit.cx(control, target)
            circuit.p(lam / 2.0, target)
        elif isinstance(operation, GateOp) and operation.gate == "swap":
            high, low = operation.targets
            circuit.cx(high, low)
            circuit.cx(low, high)
            circuit.cx(high, low)
        elif isinstance(operation, BarrierOp):
            continue
        else:
            circuit.append(operation)
        circuit.barrier()
    return circuit


def grover(num_qubits: int, marked: int, iterations: Optional[int] = None) -> QuantumCircuit:
    """Grover search marking basis state ``marked`` on ``num_qubits`` qubits.

    Uses phase oracles (multi-controlled Z with negative controls selecting
    the marked bit pattern) and the standard diffusion operator.
    """
    if num_qubits < 2:
        raise CircuitError("Grover search needs at least two qubits")
    if not 0 <= marked < (1 << num_qubits):
        raise CircuitError(f"marked state {marked} out of range")
    if iterations is None:
        iterations = max(1, int(math.floor(math.pi / 4.0 * math.sqrt(2**num_qubits))))
    circuit = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}_{marked}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    bits = [(marked >> qubit) & 1 for qubit in range(num_qubits)]
    positive = [q for q in range(1, num_qubits) if bits[q] == 1]
    negative = [q for q in range(1, num_qubits) if bits[q] == 0]
    for _ in range(iterations):
        # Oracle: flip the phase of |marked>.
        if bits[0] == 0:
            circuit.x(0)
        circuit.gate("z", [0], controls=positive, negative_controls=negative)
        if bits[0] == 0:
            circuit.x(0)
        circuit.barrier()
        # Diffusion: reflect about the uniform superposition.  Up to a global
        # phase this is a phase flip of |0...0>, conjugated by Hadamards.
        for qubit in range(num_qubits):
            circuit.h(qubit)
        circuit.x(0)
        circuit.gate("z", [0], negative_controls=list(range(1, num_qubits)))
        circuit.x(0)
        for qubit in range(num_qubits):
            circuit.h(qubit)
        circuit.barrier()
    return circuit


def bernstein_vazirani(secret: str) -> QuantumCircuit:
    """Bernstein-Vazirani for the given secret bit string.

    Data qubits are ``q_n .. q_1`` (big-endian, matching ``secret``); the
    ancilla is ``q_0``, prepared in |->.  After the final Hadamards the data
    qubits hold the secret deterministically; the classical register read
    big-endian (``c_{m-1} ... c_0``) spells the secret.
    """
    if not secret or any(c not in "01" for c in secret):
        raise CircuitError(f"invalid secret {secret!r}")
    num_data = len(secret)
    circuit = QuantumCircuit(num_data + 1, num_data, name=f"bv_{secret}")
    circuit.x(0)
    for qubit in range(num_data + 1):
        circuit.h(qubit)
    circuit.barrier()
    for position, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(num_data - position, 0)
    circuit.barrier()
    for qubit in range(1, num_data + 1):
        circuit.h(qubit)
    for position in range(num_data):
        circuit.measure(num_data - position, num_data - 1 - position)
    return circuit


def qft_inverse(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """The inverse QFT (gates of :func:`qft` inverted and reversed)."""
    circuit = qft(num_qubits, include_swaps=include_swaps).inverse()
    circuit.name = f"qft_{num_qubits}_inverse"
    return circuit


def phase_estimation(num_counting: int, phase: float) -> QuantumCircuit:
    """Quantum phase estimation of ``U = P(2 pi phase)`` on its |1>
    eigenstate.

    Layout: counting register ``q_{m} .. q_1`` (big-endian), eigenstate on
    ``q_0``.  For ``phase = j / 2^m`` the measured counting register equals
    ``j`` deterministically; otherwise it concentrates on the nearest
    ``m``-bit approximation.  Exercises the QFT as the subroutine the paper
    calls "a popular building block in many quantum algorithms" (Ex. 10).
    """
    if num_counting < 1:
        raise CircuitError("phase estimation needs at least one counting qubit")
    num_qubits = num_counting + 1
    circuit = QuantumCircuit(
        num_qubits, num_counting, name=f"qpe_{num_counting}"
    )
    circuit.x(0)  # the |1> eigenstate of P
    for counting in range(1, num_qubits):
        circuit.h(counting)
    circuit.barrier()
    for counting in range(1, num_qubits):
        # q_counting has weight 2^(counting - 1) in the counting register.
        angle = 2.0 * math.pi * phase * (2 ** (counting - 1))
        circuit.cp(angle, counting, 0)
    circuit.barrier()
    # Inverse QFT on the counting register (lines shifted up by one).
    for operation in qft_inverse(num_counting):
        if isinstance(operation, GateOp):
            circuit.gate(
                operation.gate,
                [q + 1 for q in operation.targets],
                params=operation.params,
                controls=[q + 1 for q in operation.controls],
            )
    circuit.barrier()
    for counting in range(1, num_qubits):
        # Big-endian classical register: c_{m-1} ... c_0 reads the estimate.
        circuit.measure(counting, counting - 1)
    return circuit


def deutsch_jozsa(num_qubits: int, balanced_mask: Optional[int] = None) -> QuantumCircuit:
    """Deutsch-Jozsa on ``num_qubits`` data qubits.

    ``balanced_mask=None`` uses a constant oracle (f = 0); a non-zero mask
    ``s`` uses the balanced oracle ``f(x) = s . x``.  Measuring all data
    qubits as 0 certifies a constant function.  Data qubits are
    ``q_n .. q_1``, the phase ancilla is ``q_0``.
    """
    if num_qubits < 1:
        raise CircuitError("Deutsch-Jozsa needs at least one data qubit")
    if balanced_mask is not None and not 0 < balanced_mask < (1 << num_qubits):
        raise CircuitError(
            f"balanced mask {balanced_mask} out of range (must be non-zero)"
        )
    circuit = QuantumCircuit(
        num_qubits + 1,
        num_qubits,
        name=f"dj_{num_qubits}_{'const' if balanced_mask is None else balanced_mask}",
    )
    circuit.x(0)
    for qubit in range(num_qubits + 1):
        circuit.h(qubit)
    circuit.barrier()
    if balanced_mask is not None:
        for bit in range(num_qubits):
            if balanced_mask & (1 << bit):
                circuit.cx(bit + 1, 0)
    circuit.barrier()
    for qubit in range(1, num_qubits + 1):
        circuit.h(qubit)
    for qubit in range(1, num_qubits + 1):
        circuit.measure(qubit, qubit - 1)
    return circuit


_RANDOM_SINGLE = ("h", "x", "y", "z", "s", "t", "sdg", "tdg", "sx")
_RANDOM_PARAM = ("rx", "ry", "rz", "p")


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    two_qubit_probability: float = 0.3,
) -> QuantumCircuit:
    """A random circuit of ``depth`` layers (for scaling benchmarks)."""
    if num_qubits < 1:
        raise CircuitError("random circuits need at least one qubit")
    if not 0.0 <= two_qubit_probability <= 1.0:
        raise CircuitError("two_qubit_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        qubit = int(rng.integers(num_qubits))
        if num_qubits >= 2 and rng.random() < two_qubit_probability:
            other = int(rng.integers(num_qubits - 1))
            if other >= qubit:
                other += 1
            circuit.cx(qubit, other)
        elif rng.random() < 0.5:
            name = _RANDOM_SINGLE[int(rng.integers(len(_RANDOM_SINGLE)))]
            circuit.gate(name, [qubit])
        else:
            name = _RANDOM_PARAM[int(rng.integers(len(_RANDOM_PARAM)))]
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            circuit.gate(name, [qubit], params=[angle])
    return circuit


def qft_matrix(num_qubits: int) -> np.ndarray:
    """The dense QFT matrix ``(1/sqrt(N)) omega^(jk)`` (paper Fig. 5(c))."""
    size = 1 << num_qubits
    omega = np.exp(2j * np.pi / size)
    indices = np.arange(size)
    return np.power(omega, np.outer(indices, indices)) / math.sqrt(size)
