"""Quantum-circuit substrate: gates, circuit IR, file formats, generators.

The circuit model mirrors the paper's Sec. II: a circuit is a sequence of
operations on ``n`` qubits (big-endian, ``q_{n-1}`` most significant) and
``m`` classical bits; gates carry an optional set of (positive/negative)
controls, and the *special operations* of Sec. IV-B — measurement, reset,
barrier, and classically-controlled gates — are first-class citizens.
"""

from repro.qc.circuit import QuantumCircuit
from repro.qc.gates import gate_matrix, inverse_gate, is_known_gate
from repro.qc.hashing import circuit_digest
from repro.qc.operations import (
    BarrierOp,
    GateOp,
    MeasureOp,
    Operation,
    ResetOp,
)

__all__ = [
    "BarrierOp",
    "GateOp",
    "MeasureOp",
    "Operation",
    "QuantumCircuit",
    "ResetOp",
    "circuit_digest",
    "gate_matrix",
    "inverse_gate",
    "is_known_gate",
]
