"""The quantum-circuit IR.

A :class:`QuantumCircuit` is a named sequence of operations over ``n``
qubits and ``m`` classical bits (paper Sec. II: "quantum computations are
just sequences of quantum operations").  Builder methods cover the complete
standard gate library, including the gates of the paper's examples
(Hadamard, controlled-NOT, controlled phase, SWAP, Toffoli).

Qubit indices follow the paper's big-endian convention: ``q_{n-1}`` is the
most-significant qubit (drawn as the *top* wire in the paper's figures).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CircuitError
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, Operation, ResetOp


class QuantumCircuit:
    """A sequence of quantum operations on qubits and classical bits."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit"):
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        if num_clbits < 0:
            raise CircuitError("the number of classical bits cannot be negative")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self._operations: List[Operation] = []

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def operations(self) -> Tuple[Operation, ...]:
        return tuple(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __getitem__(self, index):
        return self._operations[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantumCircuit {self.name!r}: {self.num_qubits} qubits, "
            f"{len(self._operations)} operations>"
        )

    # ------------------------------------------------------------------
    # generic append
    # ------------------------------------------------------------------
    def append(self, operation: Operation) -> "QuantumCircuit":
        """Append an operation after validating its lines."""
        for qubit in operation.qubits:
            self._check_qubit(qubit)
        if isinstance(operation, MeasureOp):
            self._check_clbit(operation.clbit)
        if isinstance(operation, GateOp) and operation.condition is not None:
            clbits, value = operation.condition
            for clbit in clbits:
                self._check_clbit(clbit)
            if value < 0 or value >= (1 << len(clbits)):
                raise CircuitError(
                    f"condition value {value} out of range for {len(clbits)} bits"
                )
        self._operations.append(operation)
        return self

    def gate(
        self,
        name: str,
        targets: Sequence[int],
        params: Sequence[float] = (),
        controls: Sequence[int] = (),
        negative_controls: Sequence[int] = (),
        condition: Optional[Tuple[Sequence[int], int]] = None,
    ) -> "QuantumCircuit":
        """Append an arbitrary library gate."""
        packed = None
        if condition is not None:
            clbits, value = condition
            packed = (tuple(int(b) for b in clbits), int(value))
        return self.append(
            GateOp(
                gate=name,
                params=tuple(params),
                targets=tuple(targets),
                controls=tuple(controls),
                negative_controls=tuple(negative_controls),
                condition=packed,
            )
        )

    # ------------------------------------------------------------------
    # single-qubit gates
    # ------------------------------------------------------------------
    def i(self, qubit: int) -> "QuantumCircuit":
        return self.gate("id", [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.gate("x", [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.gate("y", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.gate("z", [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.gate("h", [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.gate("s", [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.gate("sdg", [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.gate("t", [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.gate("tdg", [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.gate("sx", [qubit])

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        return self.gate("sxdg", [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.gate("rx", [qubit], params=[theta])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.gate("ry", [qubit], params=[theta])

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.gate("rz", [qubit], params=[theta])

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate ``P(lambda)`` (paper Ex. 10)."""
        return self.gate("p", [qubit], params=[lam])

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.gate("u2", [qubit], params=[phi, lam])

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.gate("u3", [qubit], params=[theta, phi, lam])

    # ------------------------------------------------------------------
    # controlled and two-qubit gates
    # ------------------------------------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-NOT (paper Fig. 1(b))."""
        return self.gate("x", [target], controls=[control])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.gate("y", [target], controls=[control])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.gate("z", [target], controls=[control])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.gate("h", [target], controls=[control])

    def cs(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-S, i.e. controlled ``P(pi/2)`` (paper Fig. 5(a))."""
        return self.gate("s", [target], controls=[control])

    def ct(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-T, i.e. controlled ``P(pi/4)`` (paper Fig. 5(a))."""
        return self.gate("t", [target], controls=[control])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase rotation (paper Ex. 10)."""
        return self.gate("p", [target], params=[lam], controls=[control])

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.gate("rx", [target], params=[theta], controls=[control])

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.gate("ry", [target], params=[theta], controls=[control])

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.gate("rz", [target], params=[theta], controls=[control])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP gate (paper Ex. 10); targets stored more-significant first."""
        high, low = (qubit_a, qubit_b) if qubit_a > qubit_b else (qubit_b, qubit_a)
        return self.gate("swap", [high, low])

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        high, low = (qubit_a, qubit_b) if qubit_a > qubit_b else (qubit_b, qubit_a)
        return self.gate("iswap", [high, low])

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Toffoli gate."""
        return self.gate("x", [target], controls=[control_a, control_b])

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled NOT."""
        return self.gate("x", [target], controls=list(controls))

    def cswap(self, control: int, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Fredkin gate."""
        high, low = (qubit_a, qubit_b) if qubit_a > qubit_b else (qubit_b, qubit_a)
        return self.gate("swap", [high, low], controls=[control])

    # ------------------------------------------------------------------
    # special operations (paper Sec. IV-B)
    # ------------------------------------------------------------------
    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self.append(MeasureOp(qubit=qubit, clbit=clbit))

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit of the same index."""
        if self.num_clbits < self.num_qubits:
            raise CircuitError("measure_all needs one classical bit per qubit")
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        return self.append(ResetOp(qubit=qubit))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        lines = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        return self.append(BarrierOp(lines=lines))

    # ------------------------------------------------------------------
    # whole-circuit transformations
    # ------------------------------------------------------------------
    def inverse(self) -> "QuantumCircuit":
        """The inverse circuit ``G^-1`` (gates inverted, order reversed).

        Only defined for purely unitary circuits; barriers are preserved in
        place (reversed), non-unitary operations raise.  Used by the
        alternating verification scheme (paper Sec. III-C).
        """
        result = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}^-1")
        for operation in reversed(self._operations):
            if isinstance(operation, BarrierOp):
                result.append(operation)
            elif isinstance(operation, GateOp):
                result.append(operation.inverse())
            else:
                raise CircuitError(
                    "cannot invert a circuit containing measurements or resets"
                )
        return result

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """A new circuit applying ``self`` first, then ``other``."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError("composed circuits must have equal qubit counts")
        result = QuantumCircuit(
            self.num_qubits,
            max(self.num_clbits, other.num_clbits),
            f"{self.name}+{other.name}",
        )
        for operation in self._operations:
            result.append(operation)
        for operation in other._operations:
            result.append(operation)
        return result

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        result = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        result._operations = list(self._operations)
        return result

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        """Number of gate operations (barriers/measures/resets excluded)."""
        return sum(1 for op in self._operations if isinstance(op, GateOp))

    def count_ops(self) -> Dict[str, int]:
        """Histogram of operations by kind/gate name."""
        counts: Dict[str, int] = {}
        for operation in self._operations:
            if isinstance(operation, GateOp):
                key = operation.gate
                if operation.num_controls:
                    key = "c" * operation.num_controls + key
            elif isinstance(operation, MeasureOp):
                key = "measure"
            elif isinstance(operation, ResetOp):
                key = "reset"
            else:
                key = "barrier"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth over gate/measure/reset operations.

        Barriers force a new layer on the lines they cover (that is their
        scheduling role) but do not count as a layer themselves.
        """
        levels = [0] * self.num_qubits
        depth = 0
        for operation in self._operations:
            lines = operation.qubits
            if not lines:
                continue
            if isinstance(operation, BarrierOp):
                barrier_level = max(levels[q] for q in lines)
                for qubit in lines:
                    levels[qubit] = barrier_level
                continue
            level = max(levels[qubit] for qubit in lines) + 1
            for qubit in lines:
                levels[qubit] = level
            depth = max(depth, level)
        return depth

    @property
    def has_nonunitary_operations(self) -> bool:
        """Whether the circuit contains measure/reset/conditioned gates."""
        return any(
            not op.is_unitary and not isinstance(op, BarrierOp)
            for op in self._operations
        )

    def to_qasm(self) -> str:
        """Serialize to OpenQASM 2.0 (see :mod:`repro.qc.qasm.exporter`)."""
        from repro.qc.qasm.exporter import circuit_to_qasm

        return circuit_to_qasm(self)

    def digest(self) -> str:
        """Canonical content hash (see :mod:`repro.qc.hashing`).

        Independent of the circuit name and stable under a QASM roundtrip;
        any gate/parameter/wiring change changes the digest.
        """
        from repro.qc.hashing import circuit_digest

        return circuit_digest(self)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise CircuitError(
                f"qubit {qubit} out of range for {self.num_qubits} qubits"
            )

    def _check_clbit(self, clbit: int) -> None:
        if not 0 <= clbit < self.num_clbits:
            raise CircuitError(
                f"classical bit {clbit} out of range for {self.num_clbits} bits"
            )
