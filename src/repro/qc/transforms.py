"""Circuit transformations.

Utilities for rewriting circuits while preserving (or permuting) their
functionality:

* :func:`permute_qubits` / :func:`reverse_qubits` — relabel the qubit
  lines.  Decision diagrams are canonic only "with respect to a given
  variable order" (paper Sec. III-C); permuting lines changes that order
  and can change DD sizes dramatically (see ``bench_variable_order``).
* :func:`remove_barriers` — strip scheduling barriers.
* :func:`decompose_to_primitives` — rewrite controlled phases, SWAPs,
  Toffolis and arbitrary multi-controlled X/Z/P gates into {H, P, CX} +
  single-qubit gates, the compilation step of paper Ex. 10 as a reusable
  pass (``library.qft_compiled`` is this pass applied to the QFT).
* :func:`emit_mcp` / :func:`emit_mcx` — ancilla-free recursive
  decomposition of multi-controlled phase/NOT gates (exact, no global
  phase slack), usable standalone.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import CircuitError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, Operation, ResetOp


def permute_qubits(
    circuit: QuantumCircuit, permutation: Sequence[int]
) -> QuantumCircuit:
    """Relabel qubit lines: old line ``q`` becomes ``permutation[q]``.

    ``permutation`` must be a permutation of ``range(num_qubits)``.  The
    result computes the conjugated functionality ``P U P^-1`` where ``P``
    is the corresponding wire permutation.
    """
    mapping = [int(line) for line in permutation]
    if sorted(mapping) != list(range(circuit.num_qubits)):
        raise CircuitError(
            f"not a permutation of {circuit.num_qubits} lines: {permutation}"
        )
    result = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, f"{circuit.name}_permuted"
    )
    for operation in circuit:
        result.append(_remap(operation, mapping))
    return result


def reverse_qubits(circuit: QuantumCircuit) -> QuantumCircuit:
    """Flip the qubit order (line ``q`` becomes ``n-1-q``)."""
    n = circuit.num_qubits
    return permute_qubits(circuit, [n - 1 - q for q in range(n)])


def _remap(operation: Operation, mapping: Sequence[int]) -> Operation:
    if isinstance(operation, BarrierOp):
        return BarrierOp(lines=tuple(sorted(mapping[q] for q in operation.lines)))
    if isinstance(operation, MeasureOp):
        return MeasureOp(qubit=mapping[operation.qubit], clbit=operation.clbit)
    if isinstance(operation, ResetOp):
        return ResetOp(qubit=mapping[operation.qubit])
    if isinstance(operation, GateOp):
        targets = tuple(mapping[q] for q in operation.targets)
        if operation.gate in ("swap", "iswap", "iswapdg") and len(targets) == 2:
            # Keep the high-line-first convention for symmetric two-qubit
            # gates; iswap is symmetric as well.
            targets = tuple(sorted(targets, reverse=True))
        return GateOp(
            gate=operation.gate,
            params=operation.params,
            targets=targets,
            controls=tuple(mapping[q] for q in operation.controls),
            negative_controls=tuple(
                mapping[q] for q in operation.negative_controls
            ),
            condition=operation.condition,
        )
    raise CircuitError(f"cannot remap operation {operation!r}")  # pragma: no cover


def remove_barriers(circuit: QuantumCircuit) -> QuantumCircuit:
    """A copy of ``circuit`` without barrier statements."""
    result = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, circuit.name
    )
    for operation in circuit:
        if not isinstance(operation, BarrierOp):
            result.append(operation)
    return result


def decompose_to_primitives(
    circuit: QuantumCircuit, barrier_per_gate: bool = False
) -> QuantumCircuit:
    """Rewrite into primitive gates (paper Ex. 10's compilation step).

    * controlled phase  ``cp(l) c,t -> p(l/2) c; cx; p(-l/2) t; cx; p(l/2) t``
    * SWAP              ``swap a,b  -> cx a,b; cx b,a; cx a,b``
    * Toffoli           standard 6-CNOT + T/Tdg decomposition
    * everything else with at most one control passes through.

    With ``barrier_per_gate`` a barrier follows each original gate — the
    breakpoints the compilation-flow verification strategy steps to.
    """
    result = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, f"{circuit.name}_compiled"
    )
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            continue
        emitted = _decompose_one(result, operation)
        if barrier_per_gate and emitted:
            result.barrier()
    return result


def emit_mcp(
    circuit: QuantumCircuit,
    lam: float,
    controls: Sequence[int],
    target: int,
) -> None:
    """Emit an exact multi-controlled phase ``P(lam)`` using {P, CP, CX}.

    The phase gate is symmetric in all its lines, which admits the
    ancilla-free recursion ``C^n P(l) = CP(l/2)(c_n, t) . C^{n-1}X(.., c_n)
    . CP(-l/2)(c_n, t) . C^{n-1}X(.., c_n) . C^{n-1}P(l/2)(.., t)``.
    Gate count is O(2^n) — exponential, but exact and ancilla-free.
    """
    controls = list(controls)
    if not controls:
        circuit.p(lam, target)
        return
    if len(controls) == 1:
        circuit.cp(lam, controls[0], target)
        return
    last = controls[-1]
    rest = controls[:-1]
    circuit.cp(lam / 2.0, last, target)
    emit_mcx(circuit, rest, last)
    circuit.cp(-lam / 2.0, last, target)
    emit_mcx(circuit, rest, last)
    emit_mcp(circuit, lam / 2.0, rest, target)


def emit_mcx(
    circuit: QuantumCircuit, controls: Sequence[int], target: int
) -> None:
    """Emit an exact multi-controlled X using {H, P, CP, CX}.

    Uses ``X = H Z H`` exactly, so ``C^n X = H(t) . C^n P(pi) . H(t)``.
    """
    controls = list(controls)
    if not controls:
        circuit.x(target)
        return
    if len(controls) == 1:
        circuit.cx(controls[0], target)
        return
    circuit.h(target)
    emit_mcp(circuit, math.pi, controls, target)
    circuit.h(target)


def emit_mcx_with_ancillas(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> None:
    """Emit a multi-controlled X using clean |0> ancillas (Toffoli chain).

    With ``k`` controls and at least ``k - 2`` clean ancillas, the standard
    AND-accumulation chain needs only ``2(k - 2) + 1`` Toffolis — *linear*
    in the control count, versus the exponential ancilla-free recursion of
    :func:`emit_mcx`.  The ancillas are returned to |0> (uncomputed).

    Contract: the emitted gates equal ``C^k X (x) I`` only on inputs whose
    ancillas are |0>; on other ancilla inputs the unitaries differ (this is
    inherent to clean-ancilla constructions).  Use
    :func:`check_equivalence_ancillary` to verify such circuits.
    """
    controls = list(controls)
    ancillas = list(ancillas)
    if len(set(controls + [target] + ancillas)) != (
        len(controls) + 1 + len(ancillas)
    ):
        raise CircuitError("controls, target and ancillas must be distinct")
    if len(controls) <= 2:
        circuit.gate("x", [target], controls=controls)
        return
    needed = len(controls) - 2
    if len(ancillas) < needed:
        raise CircuitError(
            f"{len(controls)} controls need {needed} clean ancillas, "
            f"got {len(ancillas)}"
        )
    used = ancillas[:needed]
    # Accumulate: a0 = c0 AND c1; a_i = a_{i-1} AND c_{i+1}.
    circuit.ccx(controls[0], controls[1], used[0])
    for index in range(needed - 1):
        circuit.ccx(used[index], controls[index + 2], used[index + 1])
    circuit.ccx(used[-1], controls[-1], target)
    # Uncompute.
    for index in range(needed - 2, -1, -1):
        circuit.ccx(used[index], controls[index + 2], used[index + 1])
    circuit.ccx(controls[0], controls[1], used[0])


def _decompose_one(result: QuantumCircuit, operation: Operation) -> bool:
    if not isinstance(operation, GateOp):
        result.append(operation)
        return True
    if operation.negative_controls:
        # Conjugate each negative control with X, then treat it positively.
        for line in operation.negative_controls:
            result.x(line)
        positive = GateOp(
            gate=operation.gate,
            params=operation.params,
            targets=operation.targets,
            controls=operation.controls + operation.negative_controls,
            condition=operation.condition,
        )
        _decompose_one(result, positive)
        for line in operation.negative_controls:
            result.x(line)
        return True
    controls = operation.controls
    if operation.gate in ("p", "u1") and len(controls) == 1:
        (lam,) = operation.params
        control = controls[0]
        target = operation.targets[0]
        result.p(lam / 2.0, control)
        result.cx(control, target)
        result.p(-lam / 2.0, target)
        result.cx(control, target)
        result.p(lam / 2.0, target)
        return True
    if operation.gate == "swap" and not controls:
        high, low = operation.targets
        result.cx(high, low)
        result.cx(low, high)
        result.cx(high, low)
        return True
    if operation.gate == "x" and len(controls) == 2:
        a, b = controls
        target = operation.targets[0]
        result.h(target)
        result.cx(b, target)
        result.tdg(target)
        result.cx(a, target)
        result.t(target)
        result.cx(b, target)
        result.tdg(target)
        result.cx(a, target)
        result.t(b)
        result.t(target)
        result.h(target)
        result.cx(a, b)
        result.t(a)
        result.tdg(b)
        result.cx(a, b)
        return True
    if operation.gate == "x" and len(controls) > 2:
        emit_mcx(result, controls, operation.targets[0])
        return True
    if operation.gate == "z" and len(controls) > 1:
        emit_mcp(result, math.pi, controls, operation.targets[0])
        return True
    if operation.gate in ("p", "u1") and len(controls) > 1:
        emit_mcp(result, operation.params[0], controls, operation.targets[0])
        return True
    if operation.gate == "swap" and controls:
        # cswap via the standard Fredkin pattern, extra controls on the
        # middle multi-controlled X (cf. dd_builder._controlled_swap_dd).
        line_b, line_c = operation.targets
        result.cx(line_c, line_b)
        _decompose_one(
            result,
            GateOp(gate="x", targets=(line_c,),
                   controls=tuple(controls) + (line_b,)),
        )
        result.cx(line_c, line_b)
        return True
    if operation.num_controls > 1 or (
        operation.num_controls == 1 and len(operation.targets) > 1
    ):
        raise CircuitError(
            f"no primitive decomposition for {operation.gate!r} with "
            f"{operation.num_controls} control(s)"
        )
    result.append(operation)
    return True
