"""Parser for the RevLib ``.real`` reversible-circuit format.

The paper's tool accepts circuit files "in either .qasm or .real format"
(Sec. IV-B).  ``.real`` describes reversible circuits over NOT, CNOT,
Toffoli (``t<n>``), Fredkin (``f<n>``), Peres and V/V+ gates:

.. code-block:: text

    .version 2.0
    .numvars 3
    .variables a b c
    .constants --0
    .garbage -- -
    .begin
    t3 a b c
    t2 a b
    t1 a
    .end

Variables map to qubit lines in declaration order: the first variable is
the *most significant* qubit (line ``n-1``), matching RevLib's convention
of listing the top wire first and the paper's big-endian ordering.
Negative-control polarity markers (``-`` prefix on a control, RevLib 2.0)
are supported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.qc.circuit import QuantumCircuit


def parse_real(source: str, name: str = "real") -> QuantumCircuit:
    """Parse RevLib ``.real`` source text into a circuit."""
    variables: List[str] = []
    num_vars: Optional[int] = None
    constants: Optional[str] = None
    gates: List[Tuple[str, List[str], int]] = []
    in_body = False
    ended = False
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            directive, _, remainder = line.partition(" ")
            directive = directive.lower()
            remainder = remainder.strip()
            if directive == ".version":
                continue
            if directive == ".numvars":
                try:
                    num_vars = int(remainder)
                except ValueError:
                    raise ParseError(f"invalid .numvars {remainder!r}", line_number)
                continue
            if directive == ".variables":
                variables = remainder.split()
                continue
            if directive in (".inputs", ".outputs", ".inputbus", ".outputbus",
                             ".state", ".module", ".garbage", ".define"):
                continue
            if directive == ".constants":
                constants = remainder.replace(" ", "")
                continue
            if directive == ".begin":
                in_body = True
                continue
            if directive == ".end":
                ended = True
                break
            raise ParseError(f"unknown directive {directive!r}", line_number)
        if not in_body:
            raise ParseError(f"gate before .begin: {line!r}", line_number)
        parts = line.split()
        gates.append((parts[0].lower(), parts[1:], line_number))
    if not ended and in_body:
        raise ParseError("missing .end directive")
    if num_vars is None:
        raise ParseError("missing .numvars directive")
    if not variables:
        variables = [f"x{i}" for i in range(num_vars)]
    if len(variables) != num_vars:
        raise ParseError(
            f".numvars says {num_vars} but .variables lists {len(variables)}"
        )
    # First declared variable = most significant qubit (top wire).
    line_of: Dict[str, int] = {
        variable: num_vars - 1 - position for position, variable in enumerate(variables)
    }
    circuit = QuantumCircuit(num_vars, name=name)
    if constants is not None:
        if len(constants) != num_vars:
            raise ParseError(
                f".constants length {len(constants)} does not match "
                f"{num_vars} variables"
            )
        for position, value in enumerate(constants):
            if value == "1":
                circuit.x(num_vars - 1 - position)
            elif value not in "0-":
                raise ParseError(f"invalid constant marker {value!r}")
    for gate_name, operands, line_number in gates:
        _append_gate(circuit, gate_name, operands, line_of, line_number)
    return circuit


def _resolve(
    operands: List[str], line_of: Dict[str, int], line_number: int
) -> Tuple[List[int], List[int]]:
    """Split operands into (positive-control/target lines, negative lines)."""
    positive: List[int] = []
    negative: List[int] = []
    for operand in operands:
        inverted = operand.startswith("-")
        variable = operand[1:] if inverted else operand
        if variable not in line_of:
            raise ParseError(f"unknown variable {variable!r}", line_number)
        (negative if inverted else positive).append(line_of[variable])
    return positive, negative


def _append_gate(
    circuit: QuantumCircuit,
    gate_name: str,
    operands: List[str],
    line_of: Dict[str, int],
    line_number: int,
) -> None:
    kind = gate_name[0]
    if gate_name in ("v", "v+"):
        positive, negative = _resolve(operands, line_of, line_number)
        base = "sxdg" if gate_name.endswith("+") else "sx"
        circuit.gate(
            base, [positive[-1]], controls=positive[:-1], negative_controls=negative
        )
        return
    if kind in ("t", "f", "p", "v") and len(gate_name) > 1:
        try:
            declared = int(gate_name[1:].rstrip("+"))
        except ValueError:
            raise ParseError(f"unknown gate {gate_name!r}", line_number)
        if declared != len(operands):
            raise ParseError(
                f"gate {gate_name!r} expects {declared} operands, "
                f"got {len(operands)}",
                line_number,
            )
    if kind == "t":  # Toffoli family: t1 = NOT, t2 = CNOT, t<n> = MCT
        positive, negative = _resolve(operands, line_of, line_number)
        target = positive[-1]
        circuit.gate(
            "x", [target], controls=positive[:-1], negative_controls=negative
        )
        return
    if kind == "f":  # Fredkin family: last two operands are swapped
        positive, negative = _resolve(operands, line_of, line_number)
        if len(positive) < 2:
            raise ParseError("Fredkin gates need two positive targets", line_number)
        a, b = positive[-2], positive[-1]
        high, low = (a, b) if a > b else (b, a)
        circuit.gate(
            "swap", [high, low], controls=positive[:-2], negative_controls=negative
        )
        return
    if kind == "v":  # controlled sqrt-of-NOT with a count suffix (v3, v3+)
        positive, negative = _resolve(operands, line_of, line_number)
        base = "sxdg" if gate_name.endswith("+") else "sx"
        circuit.gate(
            base, [positive[-1]], controls=positive[:-1], negative_controls=negative
        )
        return
    if kind == "p":  # Peres: p3 a b c = t3 a b c ; t2 a b
        positive, negative = _resolve(operands, line_of, line_number)
        if len(positive) != 3 or negative:
            raise ParseError("Peres gates take three positive lines", line_number)
        a, b, c = positive
        circuit.gate("x", [c], controls=[a, b])
        circuit.gate("x", [b], controls=[a])
        return
    raise ParseError(f"unknown gate {gate_name!r}", line_number)


def parse_real_file(path: str) -> QuantumCircuit:
    """Parse a ``.real`` file into a circuit (named after the file)."""
    import os

    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    return parse_real(source, name=name)
