"""Canonical circuit hashing.

:func:`circuit_digest` computes a SHA-256 digest over a canonical
serialization of a :class:`~repro.qc.circuit.QuantumCircuit`.  The digest
identifies the *computation*, not the object:

* it is independent of the circuit's display name;
* it is stable under an OpenQASM export/parse roundtrip (the exporter
  writes exact ``repr(float)`` parameters, so no precision is lost);
* control sets are order-insensitive (``controls=(2, 1)`` and
  ``controls=(1, 2)`` denote the same gate), while target order is kept
  because it is semantically meaningful for multi-target gates;
* any change to a gate, parameter, control line, classical condition,
  measurement, reset or barrier changes the digest.

The service layer (:mod:`repro.service`) keys its result cache on this
digest, so two clients uploading the same circuit — even via different
textual routes — share one cached simulation/verification result.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, Operation, ResetOp

__all__ = ["circuit_digest", "operation_fingerprint"]


def _canonical_float(value: float) -> str:
    # Normalize the one representation quirk repr() keeps: -0.0 vs 0.0.
    value = float(value)
    if value == 0.0:
        value = 0.0
    return repr(value)


def _canonical_lines(lines: Iterable[int]) -> str:
    return ",".join(str(int(line)) for line in lines)


def operation_fingerprint(operation: Operation) -> str:
    """One canonical line of text per operation (the digest's alphabet)."""
    if isinstance(operation, GateOp):
        parts = [
            "gate",
            operation.gate,
            "p=" + ",".join(_canonical_float(p) for p in operation.params),
            "t=" + _canonical_lines(operation.targets),
            "c=" + _canonical_lines(sorted(operation.controls)),
            "n=" + _canonical_lines(sorted(operation.negative_controls)),
        ]
        if operation.condition is not None:
            clbits, value = operation.condition
            parts.append(f"if={_canonical_lines(clbits)}=={int(value)}")
        return "|".join(parts)
    if isinstance(operation, MeasureOp):
        return f"measure|q={operation.qubit}|c={operation.clbit}"
    if isinstance(operation, ResetOp):
        return f"reset|q={operation.qubit}"
    if isinstance(operation, BarrierOp):
        return "barrier|l=" + _canonical_lines(operation.lines)
    raise TypeError(f"unknown operation kind: {operation!r}")  # pragma: no cover


def circuit_digest(circuit: QuantumCircuit) -> str:
    """Canonical, name-independent SHA-256 hex digest of ``circuit``."""
    hasher = hashlib.sha256()
    hasher.update(
        f"qdd-circuit-v1|q={circuit.num_qubits}|c={circuit.num_clbits}\n".encode()
    )
    for operation in circuit:
        hasher.update(operation_fingerprint(operation).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()
