"""Building decision diagrams from circuit operations.

This module turns :class:`~repro.qc.operations.GateOp` instances into matrix
DDs on the full system (paper Ex. 3: local gate matrices are "extended to
the full system size using tensor products" — here performed directly on
the diagram), and whole unitary circuits into their functionality
``U = U_{m-1} ... U_0`` (paper Sec. II / III-C).
"""

from __future__ import annotations

from typing import Optional

from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import CircuitError, GateError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp


def gate_to_dd(package: DDPackage, operation: GateOp, num_qubits: int) -> Edge:
    """Matrix DD of a single gate embedded into ``num_qubits`` lines.

    Classical conditions are ignored here — the simulator decides whether to
    apply the gate at all; the DD is always that of the underlying unitary.
    Results are cached per package: repeated gates (Grover iterations, the
    CNOT cascades of GHZ circuits, ...) are built once.
    """
    cache = getattr(package, "_gate_dd_cache", None)
    if cache is None:
        cache = {}
        package._gate_dd_cache = cache
    key = (
        operation.gate,
        operation.params,
        operation.targets,
        operation.controls,
        operation.negative_controls,
        num_qubits,
    )
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = _build_gate_dd(package, operation, num_qubits)
    if len(cache) > 4096:
        cache.clear()
    cache[key] = result
    return result


def _build_gate_dd(package: DDPackage, operation: GateOp, num_qubits: int) -> Edge:
    matrix = operation.matrix_readonly()
    targets = operation.targets
    if matrix.shape == (2, 2):
        if operation.num_controls == 0:
            return package.single_qubit_gate(num_qubits, matrix, targets[0])
        return package.controlled_gate(
            num_qubits,
            matrix,
            targets[0],
            controls=operation.controls,
            negative_controls=operation.negative_controls,
        )
    if matrix.shape == (4, 4):
        high, low = targets
        if operation.num_controls == 0:
            return package.two_qubit_gate(num_qubits, matrix, high, low)
        if operation.gate == "swap":
            return _controlled_swap_dd(package, operation, num_qubits)
        raise GateError(
            f"controlled two-qubit gate {operation.gate!r} is not supported; "
            "decompose it into controlled single-qubit gates and CNOTs"
        )
    raise GateError(  # pragma: no cover - library only has 2x2/4x4 gates
        f"unsupported gate matrix shape {matrix.shape}"
    )


def _controlled_swap_dd(
    package: DDPackage, operation: GateOp, num_qubits: int
) -> Edge:
    """Controlled SWAP via ``cx(c,b); ccx(ctrls+b, c); cx(c,b)``.

    Uses the standard Fredkin decomposition (as in qelib1.inc), with all
    extra controls attached to the middle Toffoli.
    """
    import numpy as np

    x_matrix = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
    line_b, line_c = operation.targets
    outer = package.controlled_gate(num_qubits, x_matrix, line_b, controls=[line_c])
    inner = package.controlled_gate(
        num_qubits,
        x_matrix,
        line_c,
        controls=tuple(operation.controls) + (line_b,),
        negative_controls=operation.negative_controls,
    )
    return package.multiply(outer, package.multiply(inner, outer))


def circuit_to_dd(
    package: DDPackage,
    circuit: QuantumCircuit,
    initial: Optional[Edge] = None,
) -> Edge:
    """Functionality of a unitary circuit as a matrix DD.

    Consecutively multiplies the gate DDs onto ``initial`` (the identity by
    default), i.e. computes ``U = U_{m-1} ... U_0 . initial``.  Barriers are
    skipped; non-unitary operations raise, matching the verification tool's
    restriction (paper Sec. IV-C).
    """
    if circuit.has_nonunitary_operations:
        raise CircuitError(
            "only purely unitary circuits have a functionality matrix; "
            "remove measurements, resets and classical conditions"
        )
    result = initial if initial is not None else package.identity(circuit.num_qubits)
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            continue
        gate_dd = gate_to_dd(package, operation, circuit.num_qubits)
        result = package.multiply(gate_dd, result)
    return result


def apply_gate(
    package: DDPackage, state: Edge, operation: GateOp, num_qubits: int
) -> Edge:
    """Apply one gate to a state DD (one simulation step, paper Sec. III-B).

    With ``package.use_apply_kernels`` (the default) the gate is applied
    directly by the kernels of :mod:`repro.dd.apply` — no full-system gate
    DD is constructed.  Gates without a direct kernel, and packages with
    the flag off, take the legacy matrix path (gate DD + multiply), which
    is retained as the differential-testing oracle.
    """
    if getattr(package, "use_apply_kernels", False):
        from repro.dd import apply as apply_kernels

        result = apply_kernels.apply_operation(package, state, operation, num_qubits)
        if result is not None:
            return result
    gate_dd = gate_to_dd(package, operation, num_qubits)
    return package.multiply(gate_dd, state)
