"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so downstream users can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DDError(ReproError):
    """Error in the decision-diagram package (invalid structure or operand)."""


class DimensionMismatchError(DDError):
    """Two decision diagrams of incompatible qubit counts were combined."""


class SanitizerError(DDError):
    """The DD sanitizer found a structural-invariant violation.

    ``report`` (when available) is the
    :class:`repro.sanitizer.core.SanitizeReport` listing every violation.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class InvalidStateError(DDError):
    """A vector that is not a valid quantum state was supplied or produced."""


class CircuitError(ReproError):
    """Error while building or manipulating a quantum circuit."""


class GateError(CircuitError):
    """An unknown gate was requested or a gate received bad arguments."""


class ParseError(ReproError):
    """Error while parsing an input file (OpenQASM or RevLib ``.real``)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """Error during circuit simulation (e.g. stepping past the end)."""


class VerificationError(ReproError):
    """Error during equivalence checking (e.g. mismatched qubit counts)."""


class VisualizationError(ReproError):
    """Error while rendering a decision diagram."""


class ServiceError(ReproError):
    """Error raised by the HTTP service layer (:mod:`repro.service`)."""


class BadRequestError(ServiceError):
    """A malformed service request (missing field, invalid value, bad JSON)."""


class NotFoundError(ServiceError):
    """The requested route or resource does not exist."""


class SessionNotFoundError(NotFoundError):
    """The referenced service session does not exist (or has expired)."""


class SessionLimitError(ServiceError):
    """The session store is full and nothing is evictable (backpressure)."""


class RequestTooLargeError(ServiceError):
    """The request body exceeds the configured size limit."""


class RateLimitedError(ServiceError):
    """The client exceeded the configured request rate."""


class JobTimeoutError(ServiceError):
    """A worker-pool job did not finish within the configured timeout."""


class ServiceUnavailableError(ServiceError):
    """The service is temporarily unable to take the request (try later).

    ``retry_after`` is the suggested back-off in seconds; the HTTP layer
    surfaces it as a ``Retry-After`` response header.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class TablePressureError(ServiceUnavailableError):
    """The DD tables are at their memory budget; the request was shed."""


class CampaignError(ReproError):
    """A campaign could not be planned, executed, or aggregated."""


class CampaignSpecError(CampaignError):
    """A campaign spec file is malformed or semantically invalid."""


class CampaignGateError(CampaignError):
    """A gated metric drifted beyond its tolerance versus the baseline."""
