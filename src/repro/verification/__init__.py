"""Equivalence checking of quantum circuits (paper Sec. III-C / IV-C).

Two approaches are provided:

* :func:`~repro.verification.checker.check_equivalence_construct` builds the
  functionality ``U`` of both circuits and compares the canonical root
  pointers (paper Ex. 11);
* :func:`~repro.verification.alternating.check_equivalence_alternating`
  exploits reversibility: if ``G`` and ``G'`` are equivalent, ``G (G')^-1``
  is the identity, and interleaving the gate applications keeps the diagram
  close to the identity throughout (paper Ex. 12 — max 9 nodes instead of
  21 for the three-qubit QFT).

:mod:`~repro.verification.stimuli` adds simulation-based checking with
random stimuli as a fast falsification pass.
"""

from repro.verification.alternating import (
    AlternatingResult,
    ApplicationStrategy,
    check_equivalence_alternating,
)
from repro.verification.checker import (
    EquivalenceResult,
    build_functionality,
    check_equivalence_construct,
)
from repro.verification.ancillary import (
    AncillaryResult,
    check_equivalence_ancillary,
)
from repro.verification.stimuli import check_equivalence_stimuli

__all__ = [
    "AlternatingResult",
    "AncillaryResult",
    "ApplicationStrategy",
    "EquivalenceResult",
    "build_functionality",
    "check_equivalence_alternating",
    "check_equivalence_ancillary",
    "check_equivalence_construct",
    "check_equivalence_stimuli",
]
