"""Construction-based equivalence checking.

The functionality of a circuit ``G = g_0 ... g_{m-1}`` is the unitary
``U = U_{m-1} ... U_0`` (paper Sec. II).  Decision diagrams are canonic with
respect to a variable order and normalization scheme, so "the equivalence of
two decision diagrams can be concluded by comparing their root pointers (and
the corresponding edge weight)" — paper Sec. III-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import VerificationError
from repro.qc.circuit import QuantumCircuit
from repro.qc.dd_builder import circuit_to_dd
from repro.qc.operations import BarrierOp


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check.

    ``equivalent`` means strict equality of the functionalities;
    ``equivalent_up_to_global_phase`` tolerates a scalar phase factor
    (physically indistinguishable).  ``max_nodes`` is the peak size of any
    intermediate decision diagram (terminal excluded), the cost measure of
    paper Ex. 12.
    """

    equivalent: bool
    equivalent_up_to_global_phase: bool
    method: str
    max_nodes: int
    global_phase: Optional[complex] = None

    def __bool__(self) -> bool:
        return self.equivalent_up_to_global_phase


def build_functionality(
    package: DDPackage, circuit: QuantumCircuit, track_peak: bool = False
):
    """Build the functionality DD; optionally return the peak node count.

    With ``track_peak`` the return value is ``(edge, max_nodes)`` where the
    peak is taken over every intermediate product (as relevant for the
    comparison in paper Ex. 12).
    """
    if not track_peak:
        return circuit_to_dd(package, circuit)
    from repro.qc.dd_builder import gate_to_dd

    result = package.identity(circuit.num_qubits)
    peak = package.node_count(result)
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            continue
        gate_dd = gate_to_dd(package, operation, circuit.num_qubits)
        result = package.multiply(gate_dd, result)
        peak = max(peak, package.node_count(result))
    return result, peak


def _compare_roots(
    package: DDPackage, left: Edge, right: Edge, method: str, max_nodes: int
) -> EquivalenceResult:
    if left.node is not right.node:
        return EquivalenceResult(False, False, method, max_nodes)
    if left.weight == right.weight or package.complex_table.approx_equal(
        left.weight, right.weight
    ):
        return EquivalenceResult(True, True, method, max_nodes, complex(1.0))
    # Same canonical node: the functionalities differ by the weight ratio.
    phase = right.weight / left.weight
    up_to_phase = abs(abs(phase) - 1.0) < package.complex_table.tolerance
    return EquivalenceResult(
        False, up_to_phase, method, max_nodes, phase if up_to_phase else None
    )


def check_equivalence_construct(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    package: Optional[DDPackage] = None,
) -> EquivalenceResult:
    """Build both functionalities and compare root pointers (paper Ex. 11).

    Both circuits must be purely unitary and act on the same number of
    qubits with the same variable order (the tool's restriction, Sec. IV-C).
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise VerificationError(
            "circuits act on different numbers of qubits "
            f"({circuit_a.num_qubits} vs {circuit_b.num_qubits})"
        )
    if package is None:
        package = DDPackage()
    left, peak_a = build_functionality(package, circuit_a, track_peak=True)
    right, peak_b = build_functionality(package, circuit_b, track_peak=True)
    return _compare_roots(package, left, right, "construct", max(peak_a, peak_b))
