"""Alternating equivalence checking (paper Sec. III-C, Ex. 12; [20]).

If two circuits ``G`` and ``G'`` are equivalent, then ``G (G')^-1`` realizes
the identity.  Rather than building either functionality in full, we start
from the identity DD and interleave applications:

* a gate ``g_i`` of ``G`` multiplies from the left:  ``E <- g_i . E``;
* a gate ``g'_j`` of ``G'`` multiplies its inverse from the right:
  ``E <- E . (g'_j)^t`` (gates taken in original order).

After ``i`` gates of one and ``j`` of the other,
``E = (g_{i-1} ... g_0) . (g'_0^t ... g'_{j-1}^t)``, independent of the
interleaving — so any *application strategy* is sound, but a good one keeps
``E`` close to the identity (and therefore small) throughout.  The
strategies below include the compilation-flow scheme of Ex. 12: one gate
from the abstract circuit, then all gates of the compiled circuit up to the
next barrier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import VerificationError
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS
from repro.obs.tracing import Tracer, default_tracer
from repro.qc.circuit import QuantumCircuit
from repro.qc.dd_builder import gate_to_dd
from repro.qc.operations import BarrierOp, GateOp
from repro.verification.checker import EquivalenceResult, _compare_roots


class ApplicationStrategy(enum.Enum):
    """How gate applications from ``G`` and ``G'`` are interleaved."""

    #: All of ``G`` first, then all of ``G'`` (monolithic; the worst case).
    NAIVE = "naive"
    #: Strictly alternate one gate from each side.
    ONE_TO_ONE = "one-to-one"
    #: Keep the applied-gate counts proportional to the circuit lengths.
    PROPORTIONAL = "proportional"
    #: Greedily apply whichever side currently yields the smaller diagram.
    LOOKAHEAD = "lookahead"
    #: One gate from ``G``, then all gates of ``G'`` up to the next barrier
    #: (paper Ex. 12; suited to verifying compilation flows).
    COMPILATION_FLOW = "compilation-flow"


@dataclass(frozen=True)
class TraceEntry:
    """One recorded application during the alternating scheme."""

    side: str  # "G" or "G'"
    gate_index: int
    node_count: int


@dataclass(frozen=True)
class AlternatingResult(EquivalenceResult):
    """Equivalence result with the per-application node-count trace."""

    trace: Tuple[TraceEntry, ...] = field(default=())
    strategy: Optional[ApplicationStrategy] = None


class _Engine:
    """Applies gates to the evolving ``E`` and records the trace.

    Every committed application also feeds the package's metrics registry
    (application counters per side, live/peak node-count gauges and the
    node-count histogram that *is* the trajectory distribution), so paper
    Ex. 12's "at most 9 nodes" claim becomes a recorded metric.
    """

    def __init__(
        self,
        package: DDPackage,
        num_qubits: int,
        tracer: Optional[Tracer] = None,
    ):
        self.package = package
        self.num_qubits = num_qubits
        # The evolving E is a governor-registered root so a GC triggered
        # by an interleaved application never sweeps its weight.
        self.current = package.incref(package.identity(num_qubits))
        self.peak = package.node_count(self.current)
        self.trace: List[TraceEntry] = []
        self.tracer = tracer if tracer is not None else default_tracer()
        registry = package.registry
        self._obs_on = registry.enabled
        self._m_apps = {
            side: registry.counter("verify_applications_total", {"side": side})
            for side in ("G", "G'")
        }
        self._m_nodes = registry.gauge("verify_nodes")
        self._m_peak_nodes = registry.gauge("verify_peak_nodes")
        self._m_trajectory = registry.histogram(
            "verify_node_trajectory", DEFAULT_COUNT_BUCKETS
        )
        self._m_nodes.set(self.peak)
        self._m_peak_nodes.set_max(self.peak)

    def preview_left(self, gate: GateOp) -> Edge:
        if getattr(self.package, "use_apply_kernels", False):
            from repro.dd import apply as apply_kernels

            result = apply_kernels.apply_operation_matrix(
                self.package, self.current, gate, self.num_qubits, side="left"
            )
            if result is not None:
                return result
        gate_dd = gate_to_dd(self.package, gate, self.num_qubits)
        return self.package.multiply(gate_dd, self.current)

    def preview_right(self, gate: GateOp) -> Edge:
        inverse = gate.inverse()
        if getattr(self.package, "use_apply_kernels", False):
            from repro.dd import apply as apply_kernels

            result = apply_kernels.apply_operation_matrix(
                self.package, self.current, inverse, self.num_qubits, side="right"
            )
            if result is not None:
                return result
        inverse_dd = gate_to_dd(self.package, inverse, self.num_qubits)
        return self.package.multiply(self.current, inverse_dd)

    def commit(self, side: str, gate_index: int, result: Edge) -> None:
        self.package.decref(self.current)
        self.current = self.package.incref(result)
        count = self.package.node_count(result)
        self.peak = max(self.peak, count)
        self.trace.append(TraceEntry(side, gate_index, count))
        if self._obs_on:
            self._m_apps[side].inc()
            self._m_nodes.set(count)
            self._m_peak_nodes.set_max(count)
            self._m_trajectory.observe(count)

    def apply_left(self, gate: GateOp, gate_index: int) -> None:
        if not self.tracer.enabled:
            self.commit("G", gate_index, self.preview_left(gate))
            return
        with self.tracer.span(
            "verify.apply", side="G", gate=gate.label(), index=gate_index
        ) as span:
            self.commit("G", gate_index, self.preview_left(gate))
            span.set_attribute("nodes", self.trace[-1].node_count)

    def close(self) -> None:
        """Release the governor root registration for the evolving E."""
        if self.current is not None:
            self.package.decref(self.current)
            self.current = None

    def apply_right(self, gate: GateOp, gate_index: int) -> None:
        if not self.tracer.enabled:
            self.commit("G'", gate_index, self.preview_right(gate))
            return
        with self.tracer.span(
            "verify.apply", side="G'", gate=gate.label(), index=gate_index
        ) as span:
            self.commit("G'", gate_index, self.preview_right(gate))
            span.set_attribute("nodes", self.trace[-1].node_count)


def _unitary_gates(circuit: QuantumCircuit) -> List[GateOp]:
    gates: List[GateOp] = []
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            continue
        if not isinstance(operation, GateOp) or not operation.is_unitary:
            raise VerificationError(
                "equivalence checking requires purely unitary circuits "
                "(no measurements, resets or classical conditions)"
            )
        gates.append(operation)
    return gates


def _barrier_groups(circuit: QuantumCircuit) -> List[List[GateOp]]:
    """Unitary gates split into groups at barrier statements."""
    groups: List[List[GateOp]] = [[]]
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            if groups[-1]:
                groups.append([])
            continue
        if not isinstance(operation, GateOp) or not operation.is_unitary:
            raise VerificationError(
                "equivalence checking requires purely unitary circuits"
            )
        groups[-1].append(operation)
    if groups and not groups[-1]:
        groups.pop()
    return groups


def check_equivalence_alternating(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    strategy: ApplicationStrategy = ApplicationStrategy.PROPORTIONAL,
    package: Optional[DDPackage] = None,
) -> AlternatingResult:
    """Check ``circuit_a == circuit_b`` via the ``G (G')^-1`` scheme.

    Returns an :class:`AlternatingResult` whose ``max_nodes`` is the peak
    intermediate DD size — the quantity paper Ex. 12 reports (9 versus 21
    nodes for the three-qubit QFT pair).
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise VerificationError(
            "circuits act on different numbers of qubits "
            f"({circuit_a.num_qubits} vs {circuit_b.num_qubits})"
        )
    if package is None:
        package = DDPackage()
    engine = _Engine(package, circuit_a.num_qubits)
    left = _unitary_gates(circuit_a)
    with engine.tracer.span(
        "verify.run",
        left=circuit_a.name,
        right=circuit_b.name,
        strategy=strategy.value,
        qubits=circuit_a.num_qubits,
    ) as span:
        if strategy is ApplicationStrategy.COMPILATION_FLOW:
            _run_compilation_flow(engine, left, _barrier_groups(circuit_b))
        else:
            right = _unitary_gates(circuit_b)
            if strategy is ApplicationStrategy.NAIVE:
                _run_naive(engine, left, right)
            elif strategy is ApplicationStrategy.ONE_TO_ONE:
                _run_one_to_one(engine, left, right)
            elif strategy is ApplicationStrategy.PROPORTIONAL:
                _run_proportional(engine, left, right)
            elif strategy is ApplicationStrategy.LOOKAHEAD:
                _run_lookahead(engine, left, right)
            else:  # pragma: no cover - enum is exhaustive
                raise VerificationError(f"unknown strategy {strategy!r}")
        span.set_attribute("peak_nodes", engine.peak)
    identity = package.identity(circuit_a.num_qubits)
    base = _compare_roots(
        package, identity, engine.current, f"alternating-{strategy.value}",
        engine.peak,
    )
    engine.close()
    return AlternatingResult(
        equivalent=base.equivalent,
        equivalent_up_to_global_phase=base.equivalent_up_to_global_phase,
        method=base.method,
        max_nodes=base.max_nodes,
        global_phase=base.global_phase,
        trace=tuple(engine.trace),
        strategy=strategy,
    )


def _run_naive(engine: _Engine, left: Sequence[GateOp], right: Sequence[GateOp]):
    for index, gate in enumerate(left):
        engine.apply_left(gate, index)
    for index, gate in enumerate(right):
        engine.apply_right(gate, index)


def _run_one_to_one(engine: _Engine, left: Sequence[GateOp], right: Sequence[GateOp]):
    position = 0
    while position < len(left) or position < len(right):
        if position < len(left):
            engine.apply_left(left[position], position)
        if position < len(right):
            engine.apply_right(right[position], position)
        position += 1


def _run_proportional(engine: _Engine, left: Sequence[GateOp], right: Sequence[GateOp]):
    total_left, total_right = len(left), len(right)
    i = j = 0
    while i < total_left:
        engine.apply_left(left[i], i)
        i += 1
        # After i left gates, aim for j ~ i * (total_right / total_left).
        target = round(i * total_right / total_left)
        while j < min(target, total_right):
            engine.apply_right(right[j], j)
            j += 1
    while j < total_right:
        engine.apply_right(right[j], j)
        j += 1


def _run_lookahead(engine: _Engine, left: Sequence[GateOp], right: Sequence[GateOp]):
    i = j = 0
    package = engine.package
    while i < len(left) or j < len(right):
        if i >= len(left):
            engine.apply_right(right[j], j)
            j += 1
            continue
        if j >= len(right):
            engine.apply_left(left[i], i)
            i += 1
            continue
        candidate_left = engine.preview_left(left[i])
        candidate_right = engine.preview_right(right[j])
        if package.node_count(candidate_left) <= package.node_count(candidate_right):
            engine.commit("G", i, candidate_left)
            i += 1
        else:
            engine.commit("G'", j, candidate_right)
            j += 1


def _run_compilation_flow(
    engine: _Engine, left: Sequence[GateOp], groups: Sequence[Sequence[GateOp]]
):
    right_index = 0
    group_iter = iter(groups)
    for index, gate in enumerate(left):
        engine.apply_left(gate, index)
        group = next(group_iter, None)
        if group is None:
            continue
        for gate_b in group:
            engine.apply_right(gate_b, right_index)
            right_index += 1
    # Drain any remaining groups of G'.
    for group in group_iter:
        for gate_b in group:
            engine.apply_right(gate_b, right_index)
            right_index += 1
