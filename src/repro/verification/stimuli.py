"""Simulation-based equivalence checking with random stimuli.

Building full functionalities can blow up even on decision diagrams (paper
Sec. III-C: "decision diagrams can still grow exponentially large in the
worst case").  A cheap falsification pass simulates both circuits on the
same random input states and compares the outputs: a single fidelity < 1
proves non-equivalence, while agreement on many stimuli gives (only)
strong evidence of equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dd.package import DDPackage
from repro.errors import VerificationError
from repro.qc.circuit import QuantumCircuit
from repro.qc.dd_builder import apply_gate
from repro.qc.operations import BarrierOp, GateOp


@dataclass(frozen=True)
class StimuliResult:
    """Outcome of a stimuli-based check."""

    equivalent: bool  # "not falsified" - see class docstring
    stimuli_run: int
    first_failure: Optional[int] = None
    worst_fidelity: float = 1.0

    def __bool__(self) -> bool:
        return self.equivalent


def _simulate(package: DDPackage, circuit: QuantumCircuit, state):
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            continue
        if not isinstance(operation, GateOp) or not operation.is_unitary:
            raise VerificationError(
                "stimuli-based checking requires purely unitary circuits"
            )
        state = apply_gate(package, state, operation, circuit.num_qubits)
    return state


def check_equivalence_stimuli(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    num_stimuli: int = 16,
    seed: Optional[int] = None,
    package: Optional[DDPackage] = None,
    tolerance: float = 1e-9,
) -> StimuliResult:
    """Run both circuits on random computational basis states.

    Basis states are classical stimuli in the sense of [28]: cheap to
    prepare, and effective at catching functional differences.  The all-zero
    state is always included as the first stimulus.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise VerificationError(
            "circuits act on different numbers of qubits "
            f"({circuit_a.num_qubits} vs {circuit_b.num_qubits})"
        )
    if num_stimuli < 1:
        raise VerificationError("at least one stimulus is required")
    if package is None:
        package = DDPackage()
    rng = np.random.default_rng(seed)
    num_qubits = circuit_a.num_qubits
    dimension = 1 << num_qubits
    stimuli = [0]
    seen = {0}
    while len(stimuli) < min(num_stimuli, dimension):
        candidate = int(rng.integers(dimension))
        if candidate not in seen:
            seen.add(candidate)
            stimuli.append(candidate)
    worst = 1.0
    for index, basis in enumerate(stimuli):
        initial = package.basis_state(num_qubits, basis)
        out_a = _simulate(package, circuit_a, initial)
        out_b = _simulate(package, circuit_b, initial)
        fidelity = package.fidelity(out_a, out_b)
        worst = min(worst, fidelity)
        if fidelity < 1.0 - tolerance:
            return StimuliResult(
                equivalent=False,
                stimuli_run=index + 1,
                first_failure=basis,
                worst_fidelity=worst,
            )
    return StimuliResult(equivalent=True, stimuli_run=len(stimuli), worst_fidelity=worst)
