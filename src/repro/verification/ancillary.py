"""Equivalence checking with ancillary and garbage qubits.

The paper's tool "expects both algorithms/circuits to have the same number
of qubits and the same variable order" and defers anything richer to the
full equivalence-checking tool (Sec. IV-C).  This module provides that
richer check: circuits may differ in qubit count (the extra lines of the
larger circuit are *ancillaries*, initialized to |0>), and designated
*garbage* qubits are excluded from the comparison.

Method: functional comparison on the data-qubit computational basis.  For
each stimulus, both circuits run from |0>-initialized ancillaries, the
outputs are turned into density matrices, the garbage lines are traced
out, and the reduced states must match.  Checking the full basis is exact
for the (permutation-flavoured) circuits where ancillaries typically
appear; a configurable number of random product-state stimuli adds
falsification power for genuinely quantum differences (cf. [28]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dd import density
from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import VerificationError
from repro.qc.circuit import QuantumCircuit
from repro.qc.dd_builder import apply_gate
from repro.qc.operations import BarrierOp, GateOp


@dataclass(frozen=True)
class AncillaryResult:
    """Outcome of an ancillary/garbage-aware equivalence check."""

    equivalent: bool
    stimuli_run: int
    #: basis bits of the falsifying stimulus, or ("random", index) for a
    #: random product-state stimulus
    first_failure: Optional[tuple] = None
    max_deviation: float = 0.0

    def __bool__(self) -> bool:
        return self.equivalent


def _run(package: DDPackage, circuit: QuantumCircuit, state: Edge) -> Edge:
    for operation in circuit:
        if isinstance(operation, BarrierOp):
            continue
        if not isinstance(operation, GateOp) or not operation.is_unitary:
            raise VerificationError(
                "ancillary-aware checking requires purely unitary circuits"
            )
        state = apply_gate(package, state, operation, circuit.num_qubits)
    return state


def _reduced(
    package: DDPackage, state: Edge, garbage: Sequence[int], num_qubits: int
):
    rho = density.density_from_state(package, state)
    keep = [q for q in range(num_qubits) if q not in set(garbage)]
    if len(keep) == num_qubits:
        return rho
    return density.partial_trace(
        package, rho, [q for q in range(num_qubits) if q not in keep]
    )


def check_equivalence_ancillary(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    garbage_qubits: Sequence[int] = (),
    num_random_stimuli: int = 8,
    max_basis_stimuli: int = 64,
    seed: Optional[int] = None,
    package: Optional[DDPackage] = None,
    tolerance: float = 1e-9,
) -> AncillaryResult:
    """Check two circuits for equivalence modulo ancillaries and garbage.

    The data qubits are the first ``min(n_a, n_b)`` lines; the extra lines
    of the larger circuit are ancillaries initialized to |0>.  Qubit
    indices in ``garbage_qubits`` (in the *larger* circuit's indexing) are
    traced out before comparison.  Stimuli: every data-basis state (capped
    at ``max_basis_stimuli``, randomly subsampled beyond that) plus
    ``num_random_stimuli`` random product states.

    Note on garbage semantics: with superposition stimuli, a garbage line
    that became *entangled* with the data makes the traced-out outputs
    differ (mixed versus pure) — the circuits then genuinely differ as
    quantum channels, and this function reports non-equivalence.  For the
    classical garbage convention of reversible logic (outputs compared on
    computational basis inputs only), pass ``num_random_stimuli=0``.
    """
    if package is None:
        package = DDPackage()
    rng = np.random.default_rng(seed)
    num_qubits = max(circuit_a.num_qubits, circuit_b.num_qubits)
    num_data = min(circuit_a.num_qubits, circuit_b.num_qubits)
    garbage = tuple(int(q) for q in garbage_qubits)
    for qubit in garbage:
        if not 0 <= qubit < num_qubits:
            raise VerificationError(f"garbage qubit {qubit} out of range")
    # Ancillary lines are implicitly garbage for the smaller circuit's view
    # only if the caller says so; by default they must return to |0> and
    # are compared like everything else.
    big_a = _embed(circuit_a, num_qubits)
    big_b = _embed(circuit_b, num_qubits)

    stimuli = _basis_stimuli(num_data, max_basis_stimuli, rng)
    stimuli += [None] * num_random_stimuli  # None -> draw a random product state
    worst = 0.0
    for index, stimulus in enumerate(stimuli):
        if stimulus is None:
            angles = rng.uniform(0.0, 2.0 * np.pi, size=(num_data, 2))
            initial = _product_state(package, num_qubits, num_data, angles)
            label: tuple = ("random", index)
        else:
            bits = [0] * (num_qubits - num_data) + list(stimulus)
            initial = package.basis_state(num_qubits, bits)
            label = tuple(stimulus)
        out_a = _run(package, big_a, initial)
        out_b = _run(package, big_b, initial)
        rho_a = _reduced(package, out_a, garbage, num_qubits)
        rho_b = _reduced(package, out_b, garbage, num_qubits)
        deviation = _distance(package, rho_a, rho_b)
        worst = max(worst, deviation)
        if deviation > tolerance:
            return AncillaryResult(
                equivalent=False,
                stimuli_run=index + 1,
                first_failure=label,
                max_deviation=worst,
            )
    return AncillaryResult(
        equivalent=True, stimuli_run=len(stimuli), max_deviation=worst
    )


def _embed(circuit: QuantumCircuit, num_qubits: int) -> QuantumCircuit:
    if circuit.num_qubits == num_qubits:
        return circuit
    embedded = QuantumCircuit(num_qubits, circuit.num_clbits, circuit.name)
    for operation in circuit:
        embedded.append(operation)
    return embedded


def _basis_stimuli(num_data: int, cap: int, rng) -> List[Tuple[int, ...]]:
    total = 1 << num_data
    if total <= cap:
        values = range(total)
    else:
        chosen = set(int(v) for v in rng.choice(total, size=cap - 1, replace=False))
        chosen.add(0)
        values = sorted(chosen)
    return [
        tuple((value >> (num_data - 1 - k)) & 1 for k in range(num_data))
        for value in values
    ]


def _product_state(package, num_qubits, num_data, angles) -> Edge:
    """|0..0> on ancillaries, per-qubit random rotations on data lines."""
    import cmath
    import math

    amplitudes = np.array([1.0 + 0.0j])
    for qubit in range(num_qubits - 1, -1, -1):
        if qubit >= num_data:
            local = np.array([1.0, 0.0], dtype=complex)
        else:
            theta, phi = angles[qubit]
            local = np.array(
                [math.cos(theta / 2.0),
                 cmath.exp(1j * phi) * math.sin(theta / 2.0)]
            )
        amplitudes = np.kron(amplitudes, local)
    return package.from_state_vector(amplitudes)


def _distance(package: DDPackage, rho_a: Edge, rho_b: Edge) -> float:
    """Hilbert-Schmidt distance ``Tr((A - B)^2)`` of two Hermitian DDs."""
    negated = rho_b.scaled(
        package.complex_table.lookup(-1.0 + 0.0j), package.complex_table
    )
    diff = package.add(rho_a, negated)
    if diff.is_zero:
        return 0.0
    return abs(density.trace(package, package.multiply(diff, diff)))
