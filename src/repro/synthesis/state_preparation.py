"""State preparation from decision diagrams.

Under the L2 normalization scheme (paper footnote 3), each node of a state
DD stores the *local* branching amplitudes of its qubit: the |0>-edge
weight is real and non-negative, and the squared magnitudes of both edge
weights sum to 1.  That is precisely the data a preparation circuit needs:

* walking the diagram top-down, every node contributes one ``RY(theta)``
  with ``theta = 2 atan2(|w1|, w0)`` rotating its qubit into the correct
  superposition, plus one ``P(phi)`` for the |1>-branch phase;
* the gates are controlled on the path prefix (positive/negative controls
  on the already-prepared, more significant qubits), so sibling branches
  stay untouched;
* deterministic branches degenerate: ``w1 = 0`` needs no gate at all and
  ``w0 = 0`` needs only a (controlled) ``X``;
* when *every* reachable prefix at a level requires the identical rotation
  (maximal sharing — e.g. product states), the controls are dropped and
  the level costs a single gate.

The gate count therefore tracks the diagram's path structure: ``n`` gates
for basis/GHZ/product states, ``O(n^2)`` for W states, exponential only in
the dense worst case — mirroring the compactness story of paper Sec. III.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dd.edge import Edge
from repro.dd.normalization import NormalizationScheme
from repro.dd.package import DDPackage
from repro.errors import DDError, InvalidStateError
from repro.qc.circuit import QuantumCircuit

_ANGLE_EPS = 1e-12


@dataclass(frozen=True)
class _Rotation:
    """One pending prefix-controlled rotation."""

    qubit: int
    prefix: Tuple[Tuple[int, int], ...]  # ((line, bit), ...) above `qubit`
    theta: float
    phi: float

    @property
    def is_trivial(self) -> bool:
        return self.theta <= _ANGLE_EPS and abs(self.phi) <= _ANGLE_EPS


def synthesize_state_preparation(
    package: DDPackage,
    state: Edge,
    name: str = "prepare",
    optimize: bool = True,
) -> QuantumCircuit:
    """Synthesize a circuit ``C`` with ``C|0...0> = state`` (up to the
    state's global phase, carried by the root edge weight).

    ``state`` must be a normalized vector DD from a package using the L2
    normalization scheme.  With ``optimize``, levels whose reachable
    prefixes all need the same rotation are emitted uncontrolled.
    """
    if package.vector_scheme is not NormalizationScheme.L2:
        raise DDError(
            "state preparation reads local amplitudes off the diagram and "
            "therefore requires the L2 normalization scheme"
        )
    if state.is_zero:
        raise InvalidStateError("cannot prepare the zero vector")
    norm = package.norm_squared(state)
    if abs(norm - 1.0) > 1e-9:
        raise InvalidStateError(f"state must be normalized (norm^2 = {norm:.6g})")
    num_qubits = package.num_qubits(state)
    rotations: List[_Rotation] = []
    _collect(state.node, (), rotations)
    circuit = QuantumCircuit(num_qubits, name=name)
    uniform_levels = _uniform_levels(rotations) if optimize else set()
    emitted_uniform = set()
    for rotation in rotations:
        if rotation.is_trivial:
            continue
        if rotation.qubit in uniform_levels:
            if rotation.qubit in emitted_uniform:
                continue
            emitted_uniform.add(rotation.qubit)
            _emit_gates(circuit, rotation.qubit, (), (), rotation.theta, rotation.phi)
            continue
        controls = tuple(line for line, bit in rotation.prefix if bit == 1)
        negative = tuple(line for line, bit in rotation.prefix if bit == 0)
        _emit_gates(circuit, rotation.qubit, controls, negative,
                    rotation.theta, rotation.phi)
    return circuit


def _collect(
    node,
    prefix: Tuple[Tuple[int, int], ...],
    rotations: List[_Rotation],
) -> None:
    """DFS: record one rotation per (node, reaching prefix)."""
    if node.is_terminal:
        return
    qubit = node.var
    zero_edge, one_edge = node.edges
    if one_edge.is_zero:
        rotations.append(_Rotation(qubit, prefix, 0.0, 0.0))
        _collect(zero_edge.node, prefix + ((qubit, 0),), rotations)
        return
    if zero_edge.is_zero:
        rotations.append(_Rotation(qubit, prefix, math.pi, 0.0))
        _collect(one_edge.node, prefix + ((qubit, 1),), rotations)
        return
    theta = 2.0 * math.atan2(abs(one_edge.weight), zero_edge.weight.real)
    phi = cmath.phase(one_edge.weight)
    rotations.append(_Rotation(qubit, prefix, theta, phi))
    _collect(zero_edge.node, prefix + ((qubit, 0),), rotations)
    _collect(one_edge.node, prefix + ((qubit, 1),), rotations)


def _uniform_levels(rotations: List[_Rotation]) -> set:
    """Levels where every reachable prefix needs the identical rotation."""
    angles: Dict[int, set] = {}
    for rotation in rotations:
        angles.setdefault(rotation.qubit, set()).add(
            (round(rotation.theta, 12), round(rotation.phi, 12))
        )
    return {qubit for qubit, seen in angles.items() if len(seen) == 1}


def _emit_gates(
    circuit: QuantumCircuit,
    qubit: int,
    controls: Tuple[int, ...],
    negative: Tuple[int, ...],
    theta: float,
    phi: float,
) -> None:
    if abs(theta - math.pi) <= _ANGLE_EPS and abs(phi) <= _ANGLE_EPS:
        # A deterministic flip: prefer the plain X over RY(pi).
        circuit.gate("x", [qubit], controls=controls, negative_controls=negative)
        return
    if theta > _ANGLE_EPS:
        circuit.gate("ry", [qubit], params=[theta],
                     controls=controls, negative_controls=negative)
    if abs(phi) > _ANGLE_EPS:
        circuit.gate("p", [qubit], params=[phi],
                     controls=controls, negative_controls=negative)


def prepare_state(
    vector: Iterable[complex],
    package: Optional[DDPackage] = None,
    name: str = "prepare",
    optimize: bool = True,
) -> QuantumCircuit:
    """Convenience wrapper: synthesize preparation of a dense state vector.

    Returns the circuit; the intermediate DD is built with a fresh package
    unless one is supplied.
    """
    if package is None:
        package = DDPackage()
    state = package.from_state_vector(vector)
    return synthesize_state_preparation(package, state, name=name,
                                        optimize=optimize)
