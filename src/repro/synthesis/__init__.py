"""Synthesis — the third design task of the paper's introduction.

Besides simulation and verification, the paper lists *synthesis* among the
design tasks decision diagrams serve ([17]-[19]).  This subpackage
implements DD-driven **state preparation**: given a state's decision
diagram, emit a circuit that prepares it from |0...0>, reading the
rotation angles directly off the diagram's edge weights (possible because
the L2 normalization scheme stores, at every node, exactly the local
branching amplitudes).
"""

from repro.synthesis.state_preparation import (
    prepare_state,
    synthesize_state_preparation,
)

__all__ = ["prepare_state", "synthesize_state_preparation"]
