"""Command-line interface — ``qdd-tool`` / ``python -m repro``.

Sub-commands mirror the tool's features (paper Sec. IV):

* ``sim`` — step-through simulation of a ``.qasm``/``.real`` circuit with
  optional HTML/SVG export and sampling;
* ``verify`` — equivalence checking of two circuits (construction-based or
  any alternating strategy) with optional HTML export;
* ``render`` — render a circuit's state or functionality DD to SVG/DOT;
* ``wheel`` — emit the HLS color-wheel legend of Fig. 7(b).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.tool.session import SimulationSession, VerificationSession, load_circuit
from repro.verification import (
    ApplicationStrategy,
    check_equivalence_alternating,
    check_equivalence_construct,
)
from repro.vis.style import DDStyle


def _style_from_name(name: str) -> DDStyle:
    styles = {
        "classic": DDStyle.classic,
        "colored": DDStyle.colored,
        "modern": DDStyle.modern,
    }
    return styles[name]()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qdd-tool",
        description=(
            "Visualize decision diagrams for quantum computing: simulate "
            "and verify circuits while watching the diagrams evolve."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sim = commands.add_parser("sim", help="simulate a circuit step by step")
    sim.add_argument("circuit", help="path to a .qasm or .real file")
    sim.add_argument("--seed", type=int, default=None, help="measurement RNG seed")
    sim.add_argument("--shots", type=int, default=0,
                     help="sample this many shots from the final state")
    sim.add_argument("--style", choices=("classic", "colored", "modern"),
                     default="classic")
    sim.add_argument("--export", metavar="HTML",
                     help="write an interactive HTML step-through")
    sim.add_argument("--svg", metavar="FILE", help="write the final state DD as SVG")
    sim.add_argument("--steps", action="store_true",
                     help="print a log line per executed step")

    verify = commands.add_parser("verify", help="check two circuits for equivalence")
    verify.add_argument("left", help="first circuit (.qasm/.real)")
    verify.add_argument("right", help="second circuit (.qasm/.real)")
    verify.add_argument(
        "--strategy",
        choices=["construct"] + [s.value for s in ApplicationStrategy],
        default="proportional",
    )
    verify.add_argument("--export", metavar="HTML",
                        help="write an interactive HTML step-through "
                             "(compilation-flow order)")

    render = commands.add_parser("render", help="render a decision diagram")
    render.add_argument("circuit", help="path to a .qasm or .real file")
    render.add_argument("--functionality", action="store_true",
                        help="render the circuit's matrix DD instead of the "
                             "state reached from |0...0>")
    render.add_argument("--style", choices=("classic", "colored", "modern"),
                        default="classic")
    render.add_argument("--format", choices=("svg", "dot", "text"), default="svg")
    render.add_argument("-o", "--output", help="output file (default: stdout)")

    wheel = commands.add_parser("wheel", help="emit the HLS color wheel legend")
    wheel.add_argument("-o", "--output", help="output file (default: stdout)")

    synth = commands.add_parser(
        "synth", help="synthesize a state-preparation circuit from amplitudes"
    )
    synth.add_argument(
        "amplitudes",
        help="comma-separated amplitudes (python complex literals, e.g. "
             "'1,0,0,1'), or @FILE with one amplitude per line; "
             "automatically normalized",
    )
    synth.add_argument("-o", "--output",
                       help="write OpenQASM to this file (default: stdout)")
    synth.add_argument("--no-optimize", action="store_true",
                       help="disable the uniform-level control elision")

    convert = commands.add_parser(
        "convert", help="convert a circuit file (.real/.qasm) to OpenQASM"
    )
    convert.add_argument("circuit", help="input .qasm or .real file")
    convert.add_argument("-o", "--output",
                         help="output .qasm file (default: stdout)")

    stats = commands.add_parser(
        "stats",
        help="simulate a circuit and report the metrics registry "
             "(tables, operations, simulation)",
    )
    stats.add_argument("circuit", help="path to a .qasm or .real file")
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--json", action="store_true",
                       help="emit the registry snapshot as JSON")
    stats.add_argument("--prom", action="store_true",
                       help="emit the registry in Prometheus text format")
    stats.add_argument("--matrix-path", action="store_true",
                       help="use the legacy gate-DD + multiply path instead "
                            "of the direct apply kernels (for comparison)")

    sanitize = commands.add_parser(
        "sanitize",
        help="simulate a circuit with invariant checking at every operation "
             "and report the sanitizer verdict",
    )
    sanitize.add_argument("circuit", help="path to a .qasm or .real file")
    sanitize.add_argument("--seed", type=int, default=0,
                          help="measurement RNG seed")
    sanitize.add_argument("--every", type=int, default=1,
                          help="sanitize every N package operations "
                               "(default: 1, i.e. after every operation)")
    sanitize.add_argument("--json-out", metavar="FILE",
                          help="write the final sanitize report as JSON")

    trace = commands.add_parser(
        "trace",
        help="simulate a circuit under the tracer and print the span tree",
    )
    trace.add_argument("circuit", help="path to a .qasm or .real file")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--svg", metavar="FILE",
                       help="also write a per-step duration/node-count "
                            "timeline SVG")

    bloch = commands.add_parser(
        "bloch", help="render per-qubit Bloch spheres of the final state"
    )
    bloch.add_argument("circuit", help="path to a .qasm or .real file")
    bloch.add_argument("--seed", type=int, default=0)
    bloch.add_argument("-o", "--output",
                       help="output SVG file (default: stdout)")

    repl = commands.add_parser(
        "repl", help="interactive terminal session (the web tool as a REPL)"
    )
    repl.add_argument("circuit", nargs="?",
                      help="optionally load this circuit on startup")
    repl.add_argument("--seed", type=int, default=None)

    serve = commands.add_parser(
        "serve",
        help="run the multi-client JSON-over-HTTP visualization/simulation "
             "service (see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8137)
    serve.add_argument("--frontend", choices=("eventloop", "threaded"),
                       default="eventloop",
                       help="HTTP transport: non-blocking selectors event "
                            "loop (default) or one thread per connection")
    serve.add_argument("--handler-threads", type=int, default=0,
                       help="handler threads behind the event loop "
                            "(0 = sized from --workers)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker shards for /simulate and /verify; jobs "
                            "are routed to shards by consistent-hashing the "
                            "circuit digest (0 = run jobs inline)")
    serve.add_argument("--batch-max-jobs", type=int, default=256,
                       help="largest accepted POST /simulate/batch array")
    serve.add_argument("--max-sessions", type=int, default=64,
                       help="live-session cap before LRU eviction / 503")
    serve.add_argument("--session-ttl", type=float, default=600.0,
                       help="idle seconds after which a session expires")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="entries in the simulate/verify result cache")
    serve.add_argument("--max-body-bytes", type=int, default=1 << 20,
                       help="largest accepted request body")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       help="global requests/second cap (0 = unlimited)")
    serve.add_argument("--job-timeout", type=float, default=120.0,
                       help="seconds before a batch job returns 504")
    serve.add_argument("--request-deadline", type=float, default=0.0,
                       help="per-request wall-clock deadline in seconds; an "
                            "overrunning worker is killed and replaced "
                            "(0 = fall back to --job-timeout)")
    serve.add_argument("--budget-nodes", type=int, default=0,
                       help="per-worker DD node budget before garbage "
                            "collection kicks in (0 = unlimited)")
    serve.add_argument("--budget-bytes", type=int, default=0,
                       help="per-worker DD table byte budget (estimated) "
                            "before garbage collection kicks in "
                            "(0 = unlimited)")
    serve.add_argument("--max-streams", type=int, default=64,
                       help="concurrent SSE connections before 503")
    serve.add_argument("--stream-queue", type=int, default=256,
                       help="per-subscriber event buffer; oldest events are "
                            "dropped (and counted) when a client lags")
    serve.add_argument("--stream-history", type=int, default=1024,
                       help="events kept for Last-Event-ID replay")
    serve.add_argument("--heartbeat-interval", type=float, default=10.0,
                       help="seconds between SSE keep-alive comments")
    serve.add_argument("--metrics-interval", type=float, default=2.0,
                       help="seconds between /stream/metrics delta frames")

    from repro.campaign.cli import add_campaign_parser

    add_campaign_parser(commands)
    return parser


def _cmd_sim(args) -> int:
    session = SimulationSession(
        args.circuit, style=_style_from_name(args.style), seed=args.seed
    )
    while not session.simulator.at_end:
        record = session.forward()
        if args.steps:
            print(
                f"step {record.index + 1:3d}: {record.kind.value:12s} "
                f"nodes={record.node_count}"
            )
    print(f"final state DD ({session.simulator.node_count()} nodes):")
    print(session.current_text())
    if session.circuit.num_clbits:
        print(f"classical bits: {list(session.simulator.classical_bits)}")
    if args.shots:
        counts = session.sample_counts(args.shots, seed=args.seed)
        print(f"{args.shots} shots:")
        for outcome in sorted(counts):
            print(f"  |{outcome}>: {counts[outcome]}")
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(session.current_svg())
        print(f"wrote {args.svg}")
    if args.export:
        session.export_html(args.export)
        print(f"wrote {args.export}")
    return 0


def _cmd_verify(args) -> int:
    left = load_circuit(args.left)
    right = load_circuit(args.right)
    if args.strategy == "construct":
        result = check_equivalence_construct(left, right)
    else:
        result = check_equivalence_alternating(
            left, right, strategy=ApplicationStrategy(args.strategy)
        )
    verdict = (
        "equivalent"
        if result.equivalent
        else (
            "equivalent up to global phase"
            if result.equivalent_up_to_global_phase
            else "NOT equivalent"
        )
    )
    print(f"{left.name} vs {right.name}: {verdict}")
    print(f"method: {result.method}, peak nodes: {result.max_nodes}")
    if args.export:
        session = VerificationSession(left, right)
        session.run_compilation_flow()
        session.export_html(args.export)
        print(f"wrote {args.export}")
    return 0 if result.equivalent_up_to_global_phase else 1


def _cmd_render(args) -> int:
    from repro.dd.package import DDPackage
    from repro.qc.dd_builder import circuit_to_dd
    from repro.simulation.simulator import DDSimulator
    from repro.vis.ascii_art import dd_to_text
    from repro.vis.dot import dd_to_dot
    from repro.vis.svg import dd_to_svg

    circuit = load_circuit(args.circuit)
    package = DDPackage()
    if args.functionality:
        root = circuit_to_dd(package, circuit)
    else:
        simulator = DDSimulator(circuit, package=package, seed=0)
        simulator.run_all()
        root = simulator.state
    style = _style_from_name(args.style)
    if args.format == "svg":
        rendered = dd_to_svg(package, root, style)
    elif args.format == "dot":
        rendered = dd_to_dot(package, root, style)
    else:
        rendered = dd_to_text(package, root)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.output} ({package.node_count(root)} nodes)")
    else:
        print(rendered)
    return 0


def _parse_amplitudes(text: str):
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            entries = [line.strip() for line in handle if line.strip()]
    else:
        entries = [entry.strip() for entry in text.split(",") if entry.strip()]
    return [complex(entry.replace("i", "j")) for entry in entries]


def _cmd_synth(args) -> int:
    import numpy as np

    from repro.simulation.simulator import DDSimulator
    from repro.synthesis import prepare_state

    amplitudes = np.asarray(_parse_amplitudes(args.amplitudes), dtype=complex)
    norm = np.linalg.norm(amplitudes)
    if norm == 0.0:
        print("error: the zero vector cannot be prepared", file=sys.stderr)
        return 2
    amplitudes = amplitudes / norm
    circuit = prepare_state(amplitudes, optimize=not args.no_optimize)
    simulator = DDSimulator(circuit)
    simulator.run_all()
    fidelity = abs(np.vdot(simulator.statevector(), amplitudes)) ** 2
    qasm = circuit.to_qasm()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(qasm)
        print(f"wrote {args.output}: {circuit.num_gates} gates, "
              f"fidelity {fidelity:.12f}")
    else:
        print(qasm, end="")
        print(f"// {circuit.num_gates} gates, fidelity {fidelity:.12f}",
              file=sys.stderr)
    return 0


def _cmd_convert(args) -> int:
    circuit = load_circuit(args.circuit)
    qasm = circuit.to_qasm()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(qasm)
        print(f"wrote {args.output} ({len(circuit)} operations)")
    else:
        print(qasm, end="")
    return 0


def _cmd_stats(args) -> int:
    from repro import obs
    from repro.dd.package import DDPackage
    from repro.obs.tracing import Tracer
    from repro.simulation.simulator import DDSimulator

    circuit = load_circuit(args.circuit)
    # One fresh registry per run: the package's table/op metrics and the
    # simulator's step metrics land in the same place, so every exporter
    # reads one source of truth.
    registry = obs.MetricsRegistry()
    package = DDPackage(
        registry=registry, use_apply_kernels=not args.matrix_path
    )
    simulator = DDSimulator(
        circuit, package=package, seed=args.seed, tracer=Tracer(enabled=False)
    )
    simulator.run_all()
    if args.json:
        print(obs.to_json(registry))
        return 0
    if args.prom:
        print(obs.to_prometheus(registry), end="")
        return 0
    print(f"{circuit.name}: {circuit.num_qubits} qubits, "
          f"{len(circuit)} operations, final DD {simulator.node_count()} nodes "
          f"(peak {simulator.peak_node_count})")
    all_stats = package.stats()
    governance = all_stats.pop("governance", None)
    sanitizer = all_stats.pop("sanitizer", None)
    storage = all_stats.pop("storage", None)
    reorder = all_stats.pop("reorder", None)
    if storage:
        print(f"storage backend: {storage.get('backend', '?')}")
    print(f"{'table':16s} {'entries':>9s} {'hits':>10s} {'misses':>10s} "
          f"{'hit ratio':>10s}")
    for name, values in all_stats.items():
        ratio = values.get("hit_ratio")
        rendered = f"{ratio:10.3f}" if ratio is not None else " " * 10
        print(f"{name:16s} {values['entries']:9.0f} {values['hits']:10.0f} "
              f"{values['misses']:10.0f} {rendered}")
    if governance:
        print()
        print("governance:")
        for key, value in governance.items():
            print(f"  {key:24s} {value}")
    if sanitizer and sanitizer.get("runs"):
        print()
        print("sanitizer:")
        for key, value in sanitizer.items():
            print(f"  {key:24s} {value}")
    if reorder:
        print()
        print("reorder:")
        for key, value in reorder.items():
            print(f"  {key:24s} {value}")
    print()
    print(obs.run_report(registry, title=circuit.name))
    return 0


def _cmd_sanitize(args) -> int:
    import json as _json

    from repro.dd.package import DDPackage
    from repro.errors import SanitizerError
    from repro.simulation.simulator import DDSimulator

    circuit = load_circuit(args.circuit)
    package = DDPackage(sanitize_every=max(1, args.every))
    simulator = DDSimulator(circuit, package=package, seed=args.seed)
    violation_report = None
    try:
        simulator.run_all()
    except SanitizerError as error:
        violation_report = error.report
    final_report = violation_report or package.sanitize()
    if args.json_out:
        payload = dict(final_report.as_dict())
        payload["circuit"] = circuit.name
        payload["sanitize_every"] = package.sanitize_every
        payload["runs"] = package.sanitize_runs
        with open(args.json_out, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    print(f"{circuit.name}: {package.sanitize_runs} sanitizer run(s), "
          f"every {package.sanitize_every} operation(s)")
    print(final_report.summary())
    if not final_report.ok:
        for violation in final_report.violations:
            print(f"  {violation}")
        return 1
    return 0


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.dd.package import DDPackage
    from repro.simulation.simulator import DDSimulator

    circuit = load_circuit(args.circuit)
    tracer = obs.Tracer(enabled=True)
    package = DDPackage()
    simulator = DDSimulator(
        circuit, package=package, seed=args.seed, tracer=tracer
    )
    simulator.run_all()
    if not tracer.spans:
        print("no spans recorded (circuit has no operations?)")
        return 0
    root = tracer.spans[-1]
    print(obs.format_span_tree(root))
    if args.svg:
        from repro.vis.timeline import span_timeline_svg

        rendered = span_timeline_svg(
            root, title=f"Simulation timeline of {circuit.name}"
        )
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.svg}")
    return 0


def _cmd_bloch(args) -> int:
    from repro.dd.package import DDPackage
    from repro.simulation.simulator import DDSimulator
    from repro.vis.bloch import all_bloch_vectors, bloch_svg

    circuit = load_circuit(args.circuit)
    package = DDPackage()
    simulator = DDSimulator(circuit, package=package, seed=args.seed)
    simulator.run_all()
    vectors = all_bloch_vectors(package, simulator.state)
    rendered = bloch_svg(vectors, title=f"Final state of {circuit.name}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.output}")
        for qubit, (x, y, z) in enumerate(vectors):
            print(f"  q{qubit}: ({x:+.3f}, {y:+.3f}, {z:+.3f})")
    else:
        print(rendered)
    return 0


def _cmd_wheel(args) -> int:
    from repro.vis.svg import color_wheel_svg

    rendered = color_wheel_svg()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def _cmd_serve(args) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        frontend=args.frontend,
        handler_threads=args.handler_threads,
        batch_max_jobs=args.batch_max_jobs,
        workers=args.workers,
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl,
        cache_capacity=args.cache_size,
        max_body_bytes=args.max_body_bytes,
        rate_limit=args.rate_limit,
        job_timeout=args.job_timeout,
        request_deadline=args.request_deadline,
        budget_nodes=args.budget_nodes,
        budget_bytes=args.budget_bytes,
        max_streams=args.max_streams,
        stream_queue=args.stream_queue,
        stream_history=args.stream_history,
        heartbeat_interval=args.heartbeat_interval,
        metrics_interval=args.metrics_interval,
    )
    return serve(config)


def _cmd_campaign(args) -> int:
    from repro.campaign.cli import cmd_campaign

    return cmd_campaign(args)


def _cmd_repl(args) -> int:
    from repro.tool.repl import InteractiveTool, run_repl

    if args.circuit:
        tool = InteractiveTool(seed=args.seed)
        print(tool.execute(f"load {args.circuit}"))
        print("type 'help' for commands")
        while not tool.finished:
            try:
                line = input("qdd> ")
            except EOFError:
                break
            result = tool.execute(line)
            if result:
                print(result)
        return 0
    run_repl(sys.stdin, sys.stdout, seed=args.seed)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "sim": _cmd_sim,
        "verify": _cmd_verify,
        "render": _cmd_render,
        "wheel": _cmd_wheel,
        "synth": _cmd_synth,
        "convert": _cmd_convert,
        "stats": _cmd_stats,
        "sanitize": _cmd_sanitize,
        "trace": _cmd_trace,
        "bloch": _cmd_bloch,
        "repl": _cmd_repl,
        "serve": _cmd_serve,
        "campaign": _cmd_campaign,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        # Bad input (missing file, malformed QASM, invalid amplitudes, ...)
        # exits with a one-line diagnostic instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Unreadable inputs and unwritable outputs (permissions, missing
        # directories, paths that are directories) get the same treatment.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
