"""The tool layer — the offline equivalent of the paper's web tool.

:class:`~repro.tool.session.SimulationSession` and
:class:`~repro.tool.session.VerificationSession` reproduce the two tabs of
the tool (paper Sec. IV-B/IV-C) with the same navigation semantics; both
render every visited state as SVG and export an interactive HTML document.
:mod:`repro.tool.cli` exposes them on the command line (``qdd-tool``).
"""

from repro.tool.session import (
    SimulationSession,
    VerificationSession,
    load_circuit,
)

__all__ = ["SimulationSession", "VerificationSession", "load_circuit"]
