"""An interactive terminal version of the simulation tool.

The web tool's simulation tab as a text REPL: load an algorithm, step
forward and backward, hit breakpoints, answer measurement dialogs, inspect
the decision diagram / state vector / probabilities, and export the
session to HTML.  Every command returns its output as a string, so the
tool is fully scriptable (and testable) besides interactive use.

Commands (``help`` lists them at runtime)::

    load <path|inline qasm>   load a circuit into the algorithm box
    source                    show the circuit as ASCII art
    step [0|1]                one step forward (answering a dialog)
    back                      one step backward
    run                       forward to the next breakpoint
    end                       forward to the end (ignoring breakpoints)
    start                     rewind to the initial state
    show                      print the current DD
    style classic|colored|modern
    vector                    print the dense state vector
    probs <qubit>             measurement probabilities of one qubit
    sample <shots>            sample from the current state
    bloch                     per-qubit Bloch vectors
    export <file.html>        write the interactive HTML step-through
    stats                     DD package table statistics
    quit / exit
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional, TextIO

import numpy as np

from repro.errors import ReproError
from repro.tool.session import SimulationSession
from repro.vis.style import DDStyle

_STYLES = {
    "classic": DDStyle.classic,
    "colored": DDStyle.colored,
    "modern": DDStyle.modern,
}

_HELP = """commands:
  load <path>      load a .qasm/.real circuit
  source           show the circuit
  step [0|1]       one step forward (optional dialog answer)
  back             one step backward
  run              forward to the next breakpoint
  end              forward to the end
  start            rewind
  show             print the current decision diagram
  style <name>     classic | colored | modern
  vector           print the dense state vector
  probs <qubit>    measurement probabilities
  sample <shots>   sample from the current state
  bloch            per-qubit Bloch vectors
  export <file>    write the session as interactive HTML
  stats            DD package statistics
  quit             leave"""


class InteractiveTool:
    """The command interpreter behind the ``qdd-tool repl`` command."""

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._session: Optional[SimulationSession] = None
        self._style_name = "classic"
        self.finished = False

    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns the printable result."""
        parts = shlex.split(line.strip())
        if not parts:
            return ""
        command, arguments = parts[0].lower(), parts[1:]
        handler = self._handlers().get(command)
        if handler is None:
            return f"unknown command {command!r} - try 'help'"
        try:
            return handler(arguments)
        except ReproError as error:
            return f"error: {error}"
        except (ValueError, IndexError) as error:
            return f"error: {error}"

    def _handlers(self) -> Dict[str, Callable[[List[str]], str]]:
        return {
            "help": lambda a: _HELP,
            "load": self._load,
            "source": self._source,
            "step": self._step,
            "back": self._back,
            "run": self._run,
            "end": self._end,
            "start": self._start,
            "show": self._show,
            "style": self._style,
            "vector": self._vector,
            "probs": self._probs,
            "sample": self._sample,
            "bloch": self._bloch,
            "export": self._export,
            "stats": self._stats,
            "quit": self._quit,
            "exit": self._quit,
        }

    def _require_session(self) -> SimulationSession:
        if self._session is None:
            raise ReproError("no circuit loaded - use 'load <path>' first")
        return self._session

    # ------------------------------------------------------------------
    # command implementations
    # ------------------------------------------------------------------
    def _load(self, arguments: List[str]) -> str:
        if not arguments:
            raise ReproError("usage: load <path>")
        self._session = SimulationSession(
            " ".join(arguments), style=_STYLES[self._style_name](),
            seed=self._seed,
        )
        circuit = self._session.circuit
        return (
            f"loaded {circuit.name!r}: {circuit.num_qubits} qubits, "
            f"{len(circuit)} operations"
        )

    def _source(self, arguments: List[str]) -> str:
        from repro.vis.ascii_art import circuit_to_text

        return circuit_to_text(self._require_session().circuit)

    def _position_line(self) -> str:
        session = self._require_session()
        return (
            f"[{session.simulator.position}/{len(session.circuit)}] "
            f"{session.simulator.node_count()} nodes"
        )

    def _step(self, arguments: List[str]) -> str:
        session = self._require_session()
        outcome = int(arguments[0]) if arguments else None
        dialog = session.pending_dialog()
        if dialog is not None and outcome is None:
            kind, qubit, p0, p1 = dialog
            return (
                f"{kind} dialog on q{qubit}: P(0)={p0:.3f}, P(1)={p1:.3f} - "
                "answer with 'step 0' or 'step 1'"
            )
        record = session.forward(outcome=outcome)
        note = ""
        if record.outcome is not None:
            note = f" -> outcome {record.outcome} (p={record.probability:.3f})"
        return f"{record.kind.value}{note}  {self._position_line()}"

    def _back(self, arguments: List[str]) -> str:
        self._require_session().backward()
        return self._position_line()

    def _run(self, arguments: List[str]) -> str:
        records = self._require_session().to_end(stop_at_breakpoints=True)
        return f"executed {len(records)} step(s)  {self._position_line()}"

    def _end(self, arguments: List[str]) -> str:
        session = self._require_session()
        count = 0
        while not session.simulator.at_end:
            session.forward()
            count += 1
        return f"executed {count} step(s)  {self._position_line()}"

    def _start(self, arguments: List[str]) -> str:
        self._require_session().to_start()
        return self._position_line()

    def _show(self, arguments: List[str]) -> str:
        return self._require_session().current_text()

    def _style(self, arguments: List[str]) -> str:
        if not arguments or arguments[0] not in _STYLES:
            raise ReproError("usage: style classic|colored|modern")
        self._style_name = arguments[0]
        if self._session is not None:
            self._session.style = _STYLES[self._style_name]()
        return f"style set to {self._style_name}"

    def _vector(self, arguments: List[str]) -> str:
        session = self._require_session()
        if session.circuit.num_qubits > 8:
            raise ReproError("state vector display is limited to 8 qubits")
        amplitudes = session.simulator.statevector()
        lines = []
        for index, amplitude in enumerate(amplitudes):
            if abs(amplitude) < 1e-12:
                continue
            basis = format(index, f"0{session.circuit.num_qubits}b")
            lines.append(f"|{basis}>  {amplitude.real:+.4f}{amplitude.imag:+.4f}j")
        return "\n".join(lines) if lines else "(zero vector)"

    def _probs(self, arguments: List[str]) -> str:
        if not arguments:
            raise ReproError("usage: probs <qubit>")
        qubit = int(arguments[0])
        p0, p1 = self._require_session().simulator.probabilities(qubit)
        return f"q{qubit}: P(0)={p0:.4f}  P(1)={p1:.4f}"

    def _sample(self, arguments: List[str]) -> str:
        if not arguments:
            raise ReproError("usage: sample <shots>")
        shots = int(arguments[0])
        counts = self._require_session().sample_counts(shots)
        return "\n".join(
            f"|{outcome}>: {count}" for outcome, count in sorted(counts.items())
        )

    def _bloch(self, arguments: List[str]) -> str:
        from repro.vis.bloch import all_bloch_vectors

        session = self._require_session()
        vectors = all_bloch_vectors(
            session.simulator.package, session.simulator.state
        )
        lines = []
        for qubit, (x, y, z) in enumerate(vectors):
            length = float(np.sqrt(x * x + y * y + z * z))
            lines.append(
                f"q{qubit}: ({x:+.3f}, {y:+.3f}, {z:+.3f})  |r|={length:.3f}"
            )
        return "\n".join(lines)

    def _export(self, arguments: List[str]) -> str:
        if not arguments:
            raise ReproError("usage: export <file.html>")
        self._require_session().export_html(arguments[0])
        return f"wrote {arguments[0]}"

    def _stats(self, arguments: List[str]) -> str:
        session = self._require_session()
        all_stats = session.simulator.package.stats()
        governance = all_stats.pop("governance", None)
        sanitizer = all_stats.pop("sanitizer", None)
        storage = all_stats.pop("storage", None)
        reorder = all_stats.pop("reorder", None)
        lines = []
        if storage:
            lines.append(f"{'storage':16s} backend={storage.get('backend', '?')}")
        for name, values in all_stats.items():
            lines.append(
                f"{name:16s} entries={values['entries']:.0f} "
                f"hits={values['hits']:.0f} misses={values['misses']:.0f}"
            )
        if governance:
            rendered = " ".join(
                f"{key}={value}" for key, value in governance.items()
            )
            lines.append(f"{'governance':16s} {rendered}")
        if sanitizer and sanitizer.get("runs"):
            rendered = " ".join(
                f"{key}={value}" for key, value in sanitizer.items()
            )
            lines.append(f"{'sanitizer':16s} {rendered}")
        if reorder:
            rendered = " ".join(
                f"{key}={value}" for key, value in reorder.items()
            )
            lines.append(f"{'reorder':16s} {rendered}")
        return "\n".join(lines)

    def _quit(self, arguments: List[str]) -> str:
        self.finished = True
        return "bye"


def run_repl(
    input_stream: TextIO,
    output_stream: TextIO,
    seed: Optional[int] = None,
    prompt: str = "qdd> ",
    interactive: bool = True,
) -> None:
    """Drive an :class:`InteractiveTool` from a stream (stdin, a file, ...)."""
    tool = InteractiveTool(seed=seed)
    while not tool.finished:
        if interactive:
            output_stream.write(prompt)
            output_stream.flush()
        line = input_stream.readline()
        if not line:
            break
        result = tool.execute(line)
        if result:
            output_stream.write(result + "\n")
