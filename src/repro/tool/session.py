"""Interactive sessions — the web tool's tabs as Python objects.

The paper's tool has a *simulation* tab (algorithm box + decision-diagram
box + navigation buttons) and a *verification* tab (two algorithm boxes;
paper Sec. IV).  The classes here expose exactly those controls:

============================  =========================================
tool control                  session method
============================  =========================================
`->` (one step forward)       :meth:`SimulationSession.forward`
`<-` (one step backward)      :meth:`SimulationSession.backward`
fast-forward (to breakpoint)  :meth:`SimulationSession.to_end`
fast-backward                 :meth:`SimulationSession.to_start`
play/pause slide show         :meth:`SimulationSession.play`
measurement pop-up dialog     :meth:`SimulationSession.pending_dialog` +
                              the ``outcome`` argument of ``forward``
============================  =========================================

Every visited state is rendered to SVG, so a finished session can be
exported as a self-contained interactive HTML file — the offline
counterpart of the installation-free web tool.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Tuple, Union

from repro.dd.package import DDPackage
from repro.errors import ReproError, SimulationError, VerificationError
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import GateOp, MeasureOp, ResetOp
from repro.qc.qasm.parser import parse_qasm, parse_qasm_file
from repro.qc.real_format import parse_real, parse_real_file
from repro.simulation.simulator import DDSimulator, StepRecord
from repro.verification.alternating import _Engine
from repro.vis.html_export import Frame, write_html
from repro.vis.style import DDStyle
from repro.vis.svg import dd_to_svg
from repro.vis.ascii_art import dd_to_text


def load_circuit(source: Union[str, QuantumCircuit], name: str = "circuit") -> QuantumCircuit:
    """Load a circuit from a path, source text, or pass one through.

    Mirrors the tool's drag-and-drop box: ``.qasm`` and ``.real`` files are
    detected by extension; raw strings are parsed as OpenQASM if they
    contain ``OPENQASM`` and as ``.real`` if they contain ``.numvars``.
    """
    if isinstance(source, QuantumCircuit):
        return source
    if os.path.exists(source):
        if source.endswith(".real"):
            return parse_real_file(source)
        return parse_qasm_file(source)
    if "OPENQASM" in source:
        return parse_qasm(source, name=name)
    if ".numvars" in source:
        return parse_real(source, name=name)
    if source.endswith((".qasm", ".real")):
        # Looks like a circuit-file path, but the exists() check above
        # failed — say so instead of the generic message below.
        raise ReproError(f"no such file: {source}")
    raise ReproError(
        "could not interpret the input as a file path, OpenQASM source or "
        ".real source"
    )


class SimulationSession:
    """The simulation tab: step through a circuit, watch the DD evolve."""

    def __init__(
        self,
        circuit: Union[str, QuantumCircuit],
        style: Optional[DDStyle] = None,
        package: Optional[DDPackage] = None,
        seed: Optional[int] = None,
        outcome_chooser=None,
        include_statevector: bool = False,
    ):
        self.circuit = load_circuit(circuit)
        self.style = style if style is not None else DDStyle.classic()
        #: also render the underlying dense state vector next to each DD
        #: frame (the "connection to the underlying state vector" of the
        #: tool's modern mode); only sensible for small systems.
        self.include_statevector = (
            include_statevector and self.circuit.num_qubits <= 6
        )
        #: draw the circuit (with a progress marker) above every frame —
        #: the tool's algorithm box (paper Fig. 8 screenshots).
        self.include_circuit_diagram = self.circuit.num_qubits <= 12
        self.simulator = DDSimulator(
            self.circuit,
            package=package,
            seed=seed,
            outcome_chooser=outcome_chooser,
        )
        self._frames: List[Frame] = [self._frame("Initial state |0...0>")]

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def forward(self, outcome: Optional[int] = None) -> StepRecord:
        """One step forward; ``outcome`` answers a measurement/reset dialog."""
        record = self.simulator.step_forward(outcome=outcome)
        self._frames.append(self._frame(self._describe(record)))
        return record

    def backward(self) -> None:
        """One step backward."""
        self.simulator.step_backward()
        if len(self._frames) > 1:
            self._frames.pop()

    def to_end(self, stop_at_breakpoints: bool = True) -> List[StepRecord]:
        """Fast-forward to the end or the next special operation."""
        records = []
        while not self.simulator.at_end:
            record = self.forward()
            records.append(record)
            if stop_at_breakpoints and record.is_breakpoint:
                break
        return records

    def to_start(self) -> None:
        """Fast-backward to the initial state."""
        while not self.simulator.at_start:
            self.backward()

    def play(self) -> Iterator[StepRecord]:
        """Slide-show iterator over all remaining steps."""
        while not self.simulator.at_end:
            yield self.forward()

    def close(self) -> None:
        """Release the package-governor roots held by this session.

        Called by the service session store on expiry/eviction; idempotent.
        The session must not be navigated afterwards.
        """
        self.simulator.close()

    # ------------------------------------------------------------------
    # the measurement dialog (paper Sec. IV-B)
    # ------------------------------------------------------------------
    def pending_dialog(self) -> Optional[Tuple[str, int, float, float]]:
        """The dialog the tool would pop up for the *next* operation.

        Returns ``(kind, qubit, p0, p1)`` if the next operation is a
        measurement or reset of a qubit in superposition (both outcome
        probabilities non-zero), else ``None``.
        """
        if self.simulator.at_end:
            return None
        operation = self.circuit[self.simulator.position]
        if isinstance(operation, MeasureOp):
            kind, qubit = "measure", operation.qubit
        elif isinstance(operation, ResetOp):
            kind, qubit = "reset", operation.qubit
        else:
            return None
        p0, p1 = self.simulator.probabilities(qubit)
        if p0 == 0.0 or p1 == 0.0:
            return None
        return kind, qubit, p0, p1

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def state(self):
        return self.simulator.state

    def current_svg(self) -> str:
        """SVG of the current state DD in the session's style."""
        return dd_to_svg(self.simulator.package, self.simulator.state, self.style)

    def current_text(self) -> str:
        """Terminal rendering of the current state DD."""
        return dd_to_text(self.simulator.package, self.simulator.state)

    def sample_counts(self, shots: int, seed: Optional[int] = None) -> dict:
        return self.simulator.sample_counts(shots, seed=seed)

    @property
    def frames(self) -> Tuple[Frame, ...]:
        return tuple(self._frames)

    def export_html(self, path: str, title: Optional[str] = None) -> None:
        """Write the visited states as an interactive HTML step-through."""
        write_html(
            self._frames,
            path,
            title=title or f"Simulation of {self.circuit.name}",
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _frame(self, description: str) -> Frame:
        svg = self.current_svg()
        if self.include_circuit_diagram:
            from repro.vis.circuit_svg import circuit_to_svg

            svg = (
                circuit_to_svg(self.circuit, progress=self.simulator.position)
                + svg
            )
        if self.include_statevector:
            from repro.vis.array_view import statevector_svg

            svg = svg + statevector_svg(
                self.simulator.statevector(), title="state vector"
            )
        return Frame(
            svg=svg,
            title=f"Step {self.simulator.position} / {len(self.circuit)}",
            description=description,
            text=self.current_text(),
            node_count=self.simulator.node_count(),
            position=self.simulator.position,
        )

    def _describe(self, record: StepRecord) -> str:
        operation = record.operation
        if isinstance(operation, GateOp):
            verb = "Skipped (condition not met)" if record.kind.value == "gate-skipped" else "Applied"
            return f"{verb} {operation.label()} on {operation.qubits}"
        if isinstance(operation, MeasureOp):
            return (
                f"Measured q{operation.qubit}: outcome {record.outcome} "
                f"(probability {record.probability:.3f})"
            )
        if isinstance(operation, ResetOp):
            return (
                f"Reset q{operation.qubit} (observed {record.outcome}, "
                f"probability {record.probability:.3f})"
            )
        return "Barrier (breakpoint)"


class VerificationSession:
    """The verification tab: two algorithm boxes and one evolving DD.

    Gates of the left circuit multiply the diagram from one side, inverted
    gates of the right circuit from the other; the two circuits are
    equivalent exactly if the final diagram resembles the identity
    (paper Sec. IV-C / Ex. 15).
    """

    def __init__(
        self,
        circuit_left: Union[str, QuantumCircuit],
        circuit_right: Union[str, QuantumCircuit],
        style: Optional[DDStyle] = None,
        package: Optional[DDPackage] = None,
    ):
        self.left = load_circuit(circuit_left, name="G")
        self.right = load_circuit(circuit_right, name="G'")
        if self.left.num_qubits != self.right.num_qubits:
            raise VerificationError(
                "both circuits must have the same number of qubits "
                "(and the same variable order)"
            )
        self.style = style if style is not None else DDStyle.colored()
        self.package = package if package is not None else DDPackage()
        self._engine = _Engine(self.package, self.left.num_qubits)
        from repro.verification.alternating import _barrier_groups, _unitary_gates

        self._left_gates = _unitary_gates(self.left)
        self._right_groups = _barrier_groups(self.right)
        self._right_gates = [gate for group in self._right_groups for gate in group]
        self._left_position = 0
        self._right_position = 0
        self._frames: List[Frame] = [self._frame("Initial diagram: the identity")]

    # ------------------------------------------------------------------
    # navigation (per-side step controls)
    # ------------------------------------------------------------------
    @property
    def left_position(self) -> int:
        return self._left_position

    @property
    def right_position(self) -> int:
        return self._right_position

    @property
    def left_total(self) -> int:
        return len(self._left_gates)

    @property
    def right_total(self) -> int:
        return len(self._right_gates)

    @property
    def left_remaining(self) -> int:
        return len(self._left_gates) - self._left_position

    @property
    def right_remaining(self) -> int:
        return len(self._right_gates) - self._right_position

    def apply_left(self, count: int = 1) -> None:
        """Apply ``count`` gates from the left circuit."""
        for _ in range(count):
            if self._left_position >= len(self._left_gates):
                raise SimulationError("no gates left in the left circuit")
            gate = self._left_gates[self._left_position]
            self._engine.apply_left(gate, self._left_position)
            self._left_position += 1
            self._frames.append(
                self._frame(f"Applied {gate.label()} from G (left)")
            )

    def apply_right(self, count: int = 1) -> None:
        """Apply ``count`` inverted gates from the right circuit."""
        for _ in range(count):
            if self._right_position >= len(self._right_gates):
                raise SimulationError("no gates left in the right circuit")
            gate = self._right_gates[self._right_position]
            self._engine.apply_right(gate, self._right_position)
            self._right_position += 1
            self._frames.append(
                self._frame(f"Applied {gate.label()}^-1 from G' (right)")
            )

    def apply_right_to_barrier(self) -> int:
        """Apply right gates up to the next barrier; returns how many."""
        applied = 0
        consumed = 0
        for group in self._right_groups:
            consumed += len(group)
            if consumed > self._right_position:
                target = consumed
                while self._right_position < target:
                    self.apply_right()
                    applied += 1
                break
        return applied

    def run_compilation_flow(self) -> None:
        """Paper Ex. 12: one gate from G, then right gates to the barrier."""
        while self._left_position < len(self._left_gates):
            self.apply_left()
            self.apply_right_to_barrier()
        while self._right_position < len(self._right_gates):
            self.apply_right()

    def close(self) -> None:
        """Release the package-governor root for the evolving diagram.

        Called by the service session store on expiry/eviction; idempotent.
        The session must not be navigated afterwards.
        """
        self._engine.close()

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return (
            self._left_position == len(self._left_gates)
            and self._right_position == len(self._right_gates)
        )

    def is_identity(self, up_to_global_phase: bool = True) -> bool:
        """Whether the current diagram resembles the identity."""
        identity = self.package.identity(self.left.num_qubits)
        current = self._engine.current
        if current.node is not identity.node:
            return False
        if up_to_global_phase:
            return abs(abs(current.weight) - 1.0) < self.package.complex_table.tolerance
        return self.package.complex_table.approx_equal(current.weight, identity.weight)

    @property
    def node_count(self) -> int:
        return self.package.node_count(self._engine.current)

    @property
    def peak_node_count(self) -> int:
        return self._engine.peak

    @property
    def current(self):
        return self._engine.current

    def current_svg(self) -> str:
        return dd_to_svg(self.package, self._engine.current, self.style)

    def current_text(self) -> str:
        return dd_to_text(self.package, self._engine.current)

    @property
    def frames(self) -> Tuple[Frame, ...]:
        return tuple(self._frames)

    def export_html(self, path: str, title: Optional[str] = None) -> None:
        write_html(
            self._frames,
            path,
            title=title or f"Verification: {self.left.name} vs {self.right.name}",
        )

    def trace_svg(self, title: Optional[str] = None) -> str:
        """Chart the node count after every application (Fig. 9's story
        told quantitatively: the diagram stays close to the identity)."""
        from repro.vis.trace_plot import trace_svg

        counts = [entry.node_count for entry in self._engine.trace]
        sides = [entry.side for entry in self._engine.trace]
        return trace_svg(
            counts,
            sides=sides,
            title=title or f"{self.left.name} vs {self.right.name}",
        )

    def _frame(self, description: str) -> Frame:
        status = f"{self.node_count} nodes"
        return Frame(
            svg=self.current_svg(),
            title=(
                f"G: {self._left_position}/{len(self._left_gates)}  |  "
                f"G': {self._right_position}/{len(self._right_gates)}  |  {status}"
            ),
            description=description,
            text=self.current_text(),
            node_count=self.node_count,
            position=self._left_position + self._right_position,
        )
