"""Normalization schemes for decision-diagram nodes.

To unify sub-vectors that only differ by a common factor, the weights of a
node's outgoing edges are normalized and the extracted factor is multiplied
onto the incoming edge (paper Sec. III-A).  Canonicity requires the rule to
be deterministic; two schemes are provided:

``L2``
    Divide the outgoing weights by the L2 norm of the weight vector and make
    the first non-zero weight real and non-negative.  This is the scheme of
    the paper's footnote 3 ([16]): every sub-tree then represents a vector of
    norm 1, so the squared magnitude of an edge weight *is* the probability
    of the corresponding measurement outcome, enabling single-path sampling.

``MAX_MAGNITUDE``
    Divide all outgoing weights by the weight of largest magnitude (ties
    broken towards the smallest index), which then becomes exactly 1.  This
    is the classic QMDD scheme and is used for matrix nodes, where an L2
    interpretation does not apply.
"""

from __future__ import annotations

import cmath
import enum
import math
from typing import Sequence, Tuple

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ZERO_EDGE
from repro.errors import DDError


class NormalizationScheme(enum.Enum):
    """Deterministic weight-extraction rules for node creation."""

    L2 = "l2"
    MAX_MAGNITUDE = "max-magnitude"


def _clean_edges(edges: Sequence[Edge], table: ComplexTable) -> Tuple[Edge, ...]:
    """Replace numerically-zero weights by the canonical zero stub.

    Clamps both component-wise sub-tolerance weights (the canonical-zero
    definition) and weights whose *magnitude* is below the tolerance, so a
    ``|w| < tolerance`` edge can never become a division pivot — dividing
    by such a weight amplifies its rounding noise into a garbage phase on
    every sibling edge.  Non-finite weights are rejected outright: they
    would otherwise silently win the max-magnitude pivot selection.
    """
    cleaned = []
    for edge in edges:
        weight = edge.weight
        if not (math.isfinite(weight.real) and math.isfinite(weight.imag)):
            raise DDError(f"non-finite edge weight {weight!r} in normalization")
        if (
            weight == ComplexTable.ZERO
            or table.is_zero(weight)
            or abs(weight) < table.tolerance
        ):
            cleaned.append(ZERO_EDGE)
        else:
            cleaned.append(edge)
    return tuple(cleaned)


def normalize(
    edges: Sequence[Edge],
    table: ComplexTable,
    scheme: NormalizationScheme,
) -> Tuple[complex, Tuple[Edge, ...]]:
    """Normalize a node's successor edges.

    Returns ``(common_factor, normalized_edges)`` such that scaling the
    normalized edges by ``common_factor`` recovers the original weights.
    If all edges are zero, the common factor is 0 and all edges are zero
    stubs (the caller then collapses the whole node to a zero stub).
    """
    edges = _clean_edges(edges, table)
    if all(edge.is_zero for edge in edges):
        return ComplexTable.ZERO, edges
    if scheme is NormalizationScheme.L2:
        return _normalize_l2(edges, table)
    return _normalize_max(edges, table)


def _normalize_l2(
    edges: Tuple[Edge, ...], table: ComplexTable
) -> Tuple[complex, Tuple[Edge, ...]]:
    norm = math.sqrt(sum(abs(edge.weight) ** 2 for edge in edges))
    first = next(index for index, edge in enumerate(edges) if not edge.is_zero)
    phase = cmath.phase(edges[first].weight)
    factor = table.lookup(cmath.rect(norm, phase))
    normalized = []
    for index, edge in enumerate(edges):
        if edge.is_zero:
            normalized.append(ZERO_EDGE)
        elif index == first:
            # Exactly real and non-negative by construction.
            weight = table.lookup(complex(abs(edge.weight) / norm, 0.0))
            normalized.append(Edge(edge.node, weight))
        else:
            normalized.append(Edge(edge.node, table.lookup(edge.weight / factor)))
    return factor, tuple(normalized)


def _normalize_max(
    edges: Tuple[Edge, ...], table: ComplexTable
) -> Tuple[complex, Tuple[Edge, ...]]:
    magnitudes = [abs(edge.weight) for edge in edges]
    # Tolerance-aware pivot: the first edge whose magnitude ties with the
    # maximum.  A plain argmax would let ~1e-16 rounding noise pick
    # different pivots for equal diagrams, breaking canonicity.
    maximum = max(magnitudes)
    # ">=" rather than ">": for large magnitudes the tolerance subtraction
    # is absorbed (maximum - tol == maximum) and a strict comparison would
    # match nothing.
    pivot = next(
        index
        for index, magnitude in enumerate(magnitudes)
        if magnitude >= maximum - table.tolerance
    )
    factor = edges[pivot].weight
    normalized = []
    for index, edge in enumerate(edges):
        if edge.is_zero:
            normalized.append(ZERO_EDGE)
        elif index == pivot:
            normalized.append(Edge(edge.node, ComplexTable.ONE))
        else:
            normalized.append(Edge(edge.node, table.lookup(edge.weight / factor)))
    return factor, tuple(normalized)
