"""JSON (de)serialization of decision diagrams.

Lets users persist a computed diagram (a state reached after a long
simulation, a verified functionality) and reload it later — including
into a *different* package instance, where hash consing rebuilds canonical
sharing.  The format is a flat node table:

.. code-block:: json

    {
      "kind": "vector",
      "num_qubits": 2,
      "root": {"node": 2, "weight": [1.0, 0.0]},
      "nodes": [
        {"id": 0, "var": 0, "edges": [{"node": null, "weight": [1.0, 0.0]},
                                       "zero"]},
        ...
      ]
    }

``null`` denotes the terminal, ``"zero"`` a zero stub.  Node ids are only
meaningful within one document.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.dd.edge import Edge, ZERO_EDGE
from repro.dd.node import MatrixNode, Node, TERMINAL
from repro.dd.package import DDPackage
from repro.errors import DDError

_FORMAT_VERSION = 1


def dd_to_dict(package: DDPackage, root: Edge, num_qubits: int = None) -> dict:
    """Serialize a (non-zero) DD rooted at ``root`` to plain data.

    ``num_qubits`` pins the document's qubit span explicitly; without it
    the span is inferred from the root level — which *undercounts* for
    identity-skipping matrix DDs whose top levels are skipped (and for
    the all-identity diagram, whose root is the terminal), so callers
    holding the true width should always pass it.  The document records
    the package's level-to-qubit order and skipping flag so a loader can
    refuse an incompatible package instead of silently permuting
    amplitudes.
    """
    root = package._resolve(root)
    if root.is_zero:
        raise DDError("cannot serialize the zero decision diagram")
    ids: Dict[Node, int] = {}
    nodes: List[dict] = []

    def visit(node: Node) -> int:
        if node in ids:
            return ids[node]
        # Children first so the node list is in topological (bottom-up) order.
        edges = []
        for edge in node.edges:
            if edge.is_zero:
                edges.append("zero")
            elif edge.node.is_terminal:
                edges.append(
                    {"node": None, "weight": [edge.weight.real, edge.weight.imag]}
                )
            else:
                child = visit(edge.node)
                edges.append(
                    {"node": child, "weight": [edge.weight.real, edge.weight.imag]}
                )
        identifier = len(nodes)
        ids[node] = identifier
        nodes.append({"id": identifier, "var": node.var, "edges": edges})
        return identifier

    if root.node.is_terminal:
        # Identity skipping can collapse a whole matrix DD (e.g. the
        # identity itself) to a weighted terminal edge.
        if not package.identity_skipping:
            raise DDError("cannot serialize a bare terminal diagram")
        root_id = None
        kind = "matrix"
    else:
        root_id = visit(root.node)
        kind = "matrix" if isinstance(root.node, MatrixNode) else "vector"
    if num_qubits is None:
        num_qubits = root.node.var + 1
    elif num_qubits < root.node.var + 1:
        raise DDError(
            f"num_qubits={num_qubits} is smaller than the root level span "
            f"({root.node.var + 1})"
        )
    return {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "num_qubits": num_qubits,
        "order": [package.qubit_at(level) for level in range(num_qubits)],
        "identity_skipping": bool(package.identity_skipping),
        "root": {"node": root_id, "weight": [root.weight.real, root.weight.imag]},
        "nodes": nodes,
    }


def dd_from_dict(package: DDPackage, data: dict) -> Edge:
    """Rebuild a DD in ``package`` from :func:`dd_to_dict` data.

    Normalization and hash consing re-establish the canonical form, so the
    result compares (by root pointer) with freshly built diagrams.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise DDError(f"unsupported DD format version {data.get('format')!r}")
    kind = data.get("kind")
    if kind not in ("vector", "matrix"):
        raise DDError(f"unknown DD kind {kind!r}")
    if bool(data.get("identity_skipping", False)) and not package.identity_skipping:
        raise DDError(
            "document was serialized with identity skipping; loading into "
            "a dense package would plant level-skipping edges "
            "(use DDPackage(identity_skipping=True))"
        )
    doc_order = data.get("order")
    if doc_order is not None:
        doc_order = [int(q) for q in doc_order]
        package_order = [package.qubit_at(level) for level in range(len(doc_order))]
        if doc_order != package_order:
            pristine = (
                package._order_is_identity
                and not package.governor.stats()["live_roots"]
            )
            if not pristine:
                raise DDError(
                    f"document qubit order {doc_order} does not match the "
                    f"package's current order {package_order}; reorder the "
                    "package (or load into a fresh one) first"
                )
            # A fresh package holds nothing whose readout the order could
            # change, so it adopts the document's order wholesale.
            package._ensure_order(len(doc_order))
            package._order[: len(doc_order)] = doc_order
            package._refresh_order_identity()
    make_node = (
        package.make_matrix_node if kind == "matrix" else package.make_vector_node
    )
    rebuilt: Dict[int, Edge] = {}
    for entry in data["nodes"]:
        edges = []
        for edge_data in entry["edges"]:
            edges.append(_edge_from(package, edge_data, rebuilt))
        rebuilt[int(entry["id"])] = make_node(int(entry["var"]), edges)
    root_data = data["root"]
    weight = complex(*root_data["weight"])
    if root_data["node"] is None:
        base = Edge(TERMINAL, package.complex_table.ONE)
    else:
        base = rebuilt.get(int(root_data["node"]))
    if base is None:
        raise DDError(f"root references unknown node {root_data['node']!r}")
    return base.scaled(package.complex_table.lookup(weight), package.complex_table)


def _edge_from(package: DDPackage, edge_data, rebuilt: Dict[int, Edge]) -> Edge:
    if edge_data == "zero":
        return ZERO_EDGE
    weight = package.complex_table.lookup(complex(*edge_data["weight"]))
    target = edge_data["node"]
    if target is None:
        return Edge(TERMINAL, weight)
    child = rebuilt.get(int(target))
    if child is None:
        raise DDError(
            f"edge references node {target!r} before its definition "
            "(the node list must be bottom-up)"
        )
    return child.scaled(weight, package.complex_table)


def save_dd(package: DDPackage, root: Edge, path: str) -> None:
    """Write a DD to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dd_to_dict(package, root), handle)


def load_dd(package: DDPackage, path: str) -> Edge:
    """Load a DD from a JSON file into ``package``."""
    with open(path, "r", encoding="utf-8") as handle:
        return dd_from_dict(package, json.load(handle))
