"""The decision-diagram package facade.

:class:`DDPackage` owns the complex table, the unique tables and the compute
tables, and exposes every operation the paper builds on:

* construction of state DDs (``zero_state``, ``basis_state``,
  ``from_state_vector``) and operation DDs (``identity``, ``from_matrix``,
  ``single_qubit_gate``, ``controlled_gate``, ``two_qubit_gate``);
* arithmetic — element-wise addition, matrix-vector and matrix-matrix
  multiplication (paper Fig. 4), tensor products by terminal replacement
  (paper Fig. 3) and conjugate transposition;
* queries — node counts (terminal excluded, as in the paper), amplitudes,
  dense reconstruction, inner products and norms.

All edge weights flowing through the package are canonicalized through the
complex table, so edges compare with plain ``==`` and two structurally equal
diagrams share the very same root node (canonicity; paper Sec. III-C).

Qubit/level convention follows the paper's big-endian notation: level ``n-1``
(the root) is the most-significant qubit ``q_{n-1}``, level ``0`` is ``q_0``.
"""

from __future__ import annotations

import os
import weakref
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE
from repro.dd.compute_table import ComputeTable
from repro.dd.edge import Edge, ONE_EDGE, ZERO_EDGE
from repro.dd.governance import GcStats, MemoryBudget, ResourceGovernor
from repro.dd.node import MatrixNode, Node, TERMINAL, VectorNode
from repro.dd.normalization import NormalizationScheme, normalize
from repro.dd.pool import WeightPool
from repro.dd.pooled import MATRIX, PooledEngine, PooledUniqueAdapter, VECTOR
from repro.dd.unique_table import UniqueTable
from repro.errors import DDError, DimensionMismatchError, InvalidStateError
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

_ID2 = np.eye(2, dtype=complex)

#: Elementary matrices |i><j| used to decompose two-qubit gates.
_ELEMENTARY = {
    (i, j): np.array(
        [[1.0 if (r, c) == (i, j) else 0.0 for c in (0, 1)] for r in (0, 1)],
        dtype=complex,
    )
    for i in (0, 1)
    for j in (0, 1)
}

BitString = Union[str, int, Sequence[int]]


def _bits_from(value: BitString, num_qubits: int) -> Tuple[int, ...]:
    """Normalize a basis-state designator to a big-endian bit tuple."""
    if isinstance(value, str):
        if len(value) != num_qubits or any(c not in "01" for c in value):
            raise DDError(f"invalid basis string {value!r} for {num_qubits} qubits")
        return tuple(int(c) for c in value)
    if isinstance(value, int):
        if not 0 <= value < (1 << num_qubits):
            raise DDError(f"basis index {value} out of range for {num_qubits} qubits")
        return tuple((value >> (num_qubits - 1 - k)) & 1 for k in range(num_qubits))
    bits = tuple(int(b) for b in value)
    if len(bits) != num_qubits or any(b not in (0, 1) for b in bits):
        raise DDError(f"invalid bit sequence {value!r} for {num_qubits} qubits")
    return bits


class DDPackage:
    """A self-contained decision-diagram package instance.

    Diagrams created by different packages must not be mixed: canonicity
    only holds within one package's unique tables.

    Parameters
    ----------
    tolerance:
        Complex-number identification tolerance.
    vector_scheme:
        Normalization scheme for vector nodes.  The default ``L2`` scheme
        (paper footnote 3) makes subtree norms 1, enabling single-path
        sampling; ``MAX_MAGNITUDE`` is provided for ablation.
    registry:
        Metrics registry receiving the package's table statistics and
        operation counters/timers.  Each package creates a private registry
        by default (so per-package statistics stay separate); pass one
        explicitly to aggregate several components into one report.
    use_apply_kernels:
        Route gate applications through the direct kernels of
        :mod:`repro.dd.apply` (no full-system gate DD is constructed).
        On by default; switch off to force the legacy matrix path, which
        is retained as the differential-testing oracle.
    budget:
        Memory budget enforced by the package's resource governor
        (:mod:`repro.dd.governance`).  The default budget has no limits:
        ``incref``/``decref``/``gc`` still work (so workers can force a
        collection between jobs), but no automatic collection triggers.
    sanitize_every:
        Run the structural sanitizer (:mod:`repro.sanitizer`) every N
        public operations, raising :class:`~repro.errors.SanitizerError`
        on the first violation.  ``0`` disables op-boundary sanitizing;
        ``None`` (the default) reads the ``REPRO_SANITIZE_EVERY``
        environment variable (unset/invalid means disabled).  While
        enabled, the sanitizer also runs after every garbage collection.
    event_bus:
        Optional :class:`repro.obs.events.EventBus` onto which the package
        publishes structured events: ``dd.gc`` per collection,
        ``dd.pressure`` per pressure-tier transition and ``dd.sanitize``
        per failing sanitizer run (the live dashboard's state feed).
    storage:
        DD storage backend.  ``"pooled"`` (the default) keeps nodes in
        flat index arrays behind an open-addressed unique table
        (:mod:`repro.dd.pooled`); ``"object"`` is the legacy one-heap-
        object-per-node core, retained as the differential-testing oracle.
        Both backends produce byte-for-byte identical canonical weights
        and isomorphic diagrams.  ``None`` reads the ``REPRO_DD_STORAGE``
        environment variable (unset means pooled).  Diagrams must never
        be mixed across packages, and hence across backends.
    reorder:
        Dynamic variable-reordering mode.  ``"off"`` (the default) keeps
        the level-to-qubit mapping fixed; ``"manual"`` enables explicit
        :meth:`reorder` calls (sifting, :mod:`repro.dd.reorder`);
        ``"pressure"`` additionally lets the resource governor sift the
        variable order on SOFT memory pressure, before it starts shedding
        compute-table entries.  ``None`` reads ``REPRO_DD_REORDER``.
    identity_skipping:
        Reduce matrix-DD nodes of the form ``(e, 0, 0, e)`` to ``e``
        (arXiv:2406.11959): an edge from level ``l`` straight to a node
        at level ``k < l - 1`` denotes identities on the skipped levels.
        Shrinks operation DDs that act trivially on many qubits (the
        common case during functionality construction and alternating
        verification).  Only matrix DDs skip; vector DDs stay dense.
        ``None`` reads ``REPRO_DD_IDENTITY_SKIPPING`` (``1``/``true``).
    """

    _OPERATION_NAMES = ("add", "multiply", "kron", "adjoint", "inner_product")

    _REORDER_MODES = ("off", "manual", "pressure")

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        vector_scheme: NormalizationScheme = NormalizationScheme.L2,
        cache_capacity: int = 1 << 16,
        registry: Optional[MetricsRegistry] = None,
        use_apply_kernels: bool = True,
        budget: Optional[MemoryBudget] = None,
        sanitize_every: Optional[int] = None,
        event_bus=None,
        storage: Optional[str] = None,
        reorder: Optional[str] = None,
        identity_skipping: Optional[bool] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Optional :class:`repro.obs.events.EventBus`: the governor
        #: publishes GC/pressure events onto it and :meth:`sanitize`
        #: publishes its verdicts, feeding the service's live streams.
        self.event_bus = event_bus
        self.use_apply_kernels = use_apply_kernels
        if storage is None:
            storage = os.environ.get("REPRO_DD_STORAGE", "").strip() or "pooled"
        if storage not in ("pooled", "object"):
            raise DDError(f"unknown DD storage backend {storage!r}")
        self.storage = storage
        if reorder is None:
            reorder = os.environ.get("REPRO_DD_REORDER", "").strip() or "off"
        if reorder not in self._REORDER_MODES:
            raise DDError(
                f"unknown reorder mode {reorder!r} "
                f"(expected one of: {', '.join(self._REORDER_MODES)})"
            )
        self.reorder_mode = reorder
        if identity_skipping is None:
            raw = os.environ.get("REPRO_DD_IDENTITY_SKIPPING", "").strip().lower()
            identity_skipping = raw in ("1", "true", "yes", "on")
        self.identity_skipping = bool(identity_skipping)
        # Level-to-qubit order map: ``_order[level]`` is the qubit hosted at
        # ``level``.  Grown lazily; the identity flag keeps the fast path of
        # every walk free of permutation work while no reorder has run.
        self._order: List[int] = []
        self._order_is_identity = True
        # Reorder root-translation map: old root node -> current Edge.  Edges
        # handed out before a reorder stay resolvable through it (see
        # :meth:`_resolve`); composition keeps every entry one hop deep.
        self._remap: Dict[object, Edge] = {}
        self._in_reorder = False
        self._reorder_pending = False
        self._reorder_cooldown = 0
        self._identity_skips = 0
        self._reorder_runs = 0
        self._reorder_swaps = 0
        if storage == "pooled":
            self.complex_table = WeightPool(tolerance, registry=self.registry)
        else:
            self.complex_table = ComplexTable(tolerance, registry=self.registry)
        self.vector_scheme = vector_scheme
        self._add_cache = ComputeTable("add", cache_capacity, registry=self.registry)
        self._mult_mv_cache = ComputeTable(
            "mult-mv", cache_capacity, registry=self.registry
        )
        self._mult_mm_cache = ComputeTable(
            "mult-mm", cache_capacity, registry=self.registry
        )
        self._kron_cache = ComputeTable("kron", cache_capacity, registry=self.registry)
        self._adjoint_cache = ComputeTable(
            "adjoint", cache_capacity, registry=self.registry
        )
        self._inner_cache = ComputeTable(
            "inner", cache_capacity, registry=self.registry
        )
        self._apply_cache = ComputeTable(
            "apply", cache_capacity, registry=self.registry
        )
        if storage == "pooled":
            self._pooled = PooledEngine(
                self.complex_table,
                vector_scheme,
                {
                    "add": self._add_cache,
                    "mult-mv": self._mult_mv_cache,
                    "mult-mm": self._mult_mm_cache,
                    "kron": self._kron_cache,
                    "adjoint": self._adjoint_cache,
                    "inner": self._inner_cache,
                    "apply": self._apply_cache,
                },
                identity_skipping=self.identity_skipping,
            )
            self._vector_unique = PooledUniqueAdapter(
                self._pooled, "vector", registry=self.registry
            )
            self._matrix_unique = PooledUniqueAdapter(
                self._pooled, "matrix", registry=self.registry
            )
        else:
            self._pooled = None
            self._vector_unique = UniqueTable(
                VectorNode, registry=self.registry, kind="vector"
            )
            self._matrix_unique = UniqueTable(
                MatrixNode, registry=self.registry, kind="matrix"
            )
        # Operation counters/timers cover only the *public* entry points;
        # the recursive workers below them stay uninstrumented so the hot
        # recursion pays nothing.
        self._obs_on = self.registry.enabled
        self._op_counters = {
            name: self.registry.counter("dd_ops_total", {"op": name})
            for name in self._OPERATION_NAMES
        }
        self._op_timers = {
            name: self.registry.histogram(
                "dd_op_seconds", DEFAULT_TIME_BUCKETS, {"op": name}
            )
            for name in self._OPERATION_NAMES
        }
        # Sanitizer state must exist before the governor: `collect()` calls
        # back into `_post_gc_sanitize()`.
        if sanitize_every is None:
            raw = os.environ.get("REPRO_SANITIZE_EVERY", "")
            try:
                sanitize_every = int(raw) if raw.strip() else 0
            except ValueError:
                sanitize_every = 0
        self.sanitize_every = max(0, int(sanitize_every))
        self._sanitize_ticks = 0
        self.sanitize_runs = 0
        self.sanitize_violations = 0
        self.last_sanitize_report = None
        self._m_sanitize_runs = self.registry.counter("dd_sanitize_runs_total")
        self._m_sanitize_violations = self.registry.counter(
            "dd_sanitize_violations_total"
        )
        self.governor = ResourceGovernor(
            self,
            budget if budget is not None else MemoryBudget(),
            self.registry,
            event_bus=event_bus,
        )
        # Occupancy is sampled at export time through a weakly-bound
        # collector, so a shared registry never keeps a package alive.
        ref = weakref.ref(self)
        self.registry.add_collector(
            lambda: None if ref() is None else ref()._collect_occupancy()
        )

    def _collect_occupancy(self) -> None:
        """Sample table occupancy into gauges (export-time collector)."""
        registry = self.registry
        registry.gauge("dd_complex_table_entries").set(len(self.complex_table))
        registry.gauge("dd_unique_table_entries", {"kind": "vector"}).set(
            len(self._vector_unique)
        )
        registry.gauge("dd_unique_table_entries", {"kind": "matrix"}).set(
            len(self._matrix_unique)
        )
        for table in self._compute_tables():
            registry.gauge(
                "dd_compute_table_entries", {"table": table.name}
            ).set(len(table))
        # Plain-int hot-path counters, synced into the registry at export
        # time so the recursions pay nothing while metrics are idle.
        registry.counter("dd_identity_skipped_total").set_value(
            self.identity_skip_count
        )
        registry.counter("dd_reorder_total").set_value(self._reorder_runs)
        registry.counter("dd_reorder_swaps_total").set_value(self._reorder_swaps)

    def _observe_op(self, name: str, start: float) -> None:
        self._op_counters[name].inc()
        self._op_timers[name].observe(perf_counter() - start)

    # ------------------------------------------------------------------
    # variable order
    # ------------------------------------------------------------------
    def _ensure_order(self, num_qubits: int) -> None:
        """Grow the level-to-qubit map to cover ``num_qubits`` levels."""
        while len(self._order) < num_qubits:
            self._order.append(len(self._order))

    def qubit_at(self, level: int) -> int:
        """The qubit hosted at ``level`` under the current variable order."""
        if self._order_is_identity or level >= len(self._order):
            return level
        return self._order[level]

    def level_of(self, qubit: int) -> int:
        """The level currently hosting ``qubit``."""
        if self._order_is_identity:
            return qubit
        try:
            return self._order.index(qubit)
        except ValueError:
            return qubit

    @property
    def qubit_order(self) -> List[int]:
        """Copy of the level-to-qubit map (index = level, value = qubit)."""
        return list(self._order) if self._order else []

    def _refresh_order_identity(self) -> None:
        self._order_is_identity = all(
            qubit == level for level, qubit in enumerate(self._order)
        )

    def _resolve(self, edge: Edge) -> Edge:
        """Translate an edge handed out before a reorder to its current root.

        Reordering rebuilds diagrams under the new variable order; edges the
        caller captured earlier keep pointing at the old structure.  Every
        public entry point funnels operands through this map so stale edges
        keep working.  A no-op (and near-free) while no reorder has run.
        """
        if not self._remap or edge.is_zero or edge.node.is_terminal:
            return edge
        res = self._remap.get(edge.node)
        if res is None:
            return edge
        if res.is_zero:
            return ZERO_EDGE
        return Edge(res.node, self.complex_table.lookup(edge.weight * res.weight))

    # ------------------------------------------------------------------
    # node creation (normalizing constructors)
    # ------------------------------------------------------------------
    def make_vector_node(self, var: int, edges: Sequence[Edge]) -> Edge:
        """Create (or reuse) a normalized vector node; returns its edge.

        The returned edge's weight is the common factor extracted by the
        normalization scheme.  If all successors are zero, the zero stub is
        returned instead of a node.
        """
        if var < 0:
            raise DDError("vector nodes require a non-negative level")
        if self._pooled is not None:
            return self._pooled.make_node_public(VECTOR, var, edges)
        factor, normalized = normalize(edges, self.complex_table, self.vector_scheme)
        if factor == ComplexTable.ZERO:
            return ZERO_EDGE
        node = self._vector_unique.get_or_create(var, normalized)
        return Edge(node, factor)

    def make_matrix_node(self, var: int, edges: Sequence[Edge]) -> Edge:
        """Create (or reuse) a normalized matrix node; returns its edge."""
        if var < 0:
            raise DDError("matrix nodes require a non-negative level")
        if self._pooled is not None:
            return self._pooled.make_node_public(MATRIX, var, edges)
        if self.identity_skipping:
            e0, e1, e2, e3 = edges
            if e1.is_zero and e2.is_zero and not e0.is_zero and e0 == e3:
                self._identity_skips += 1
                return e0
        factor, normalized = normalize(
            edges, self.complex_table, NormalizationScheme.MAX_MAGNITUDE
        )
        if factor == ComplexTable.ZERO:
            return ZERO_EDGE
        node = self._matrix_unique.get_or_create(var, normalized)
        return Edge(node, self.complex_table.lookup(factor))

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def zero_state(self, num_qubits: int) -> Edge:
        """The all-zero state |0...0> as a vector DD (paper Ex. 3)."""
        return self.basis_state(num_qubits, 0)

    def basis_state(self, num_qubits: int, bits: BitString) -> Edge:
        """The computational basis state |bits> as a vector DD."""
        if num_qubits <= 0:
            raise DDError("states require at least one qubit")
        bit_tuple = _bits_from(bits, num_qubits)
        edge = ONE_EDGE
        for var in range(num_qubits):
            bit = bit_tuple[num_qubits - 1 - self.qubit_at(var)]
            children = [ZERO_EDGE, ZERO_EDGE]
            children[bit] = edge
            edge = self.make_vector_node(var, children)
        return edge

    def from_state_vector(self, vector: Iterable[complex]) -> Edge:
        """Build a vector DD from a dense state vector of length ``2**n``.

        The recursive sub-vector decomposition of paper Sec. III-A; sharing
        happens automatically through the unique table.
        """
        array = np.asarray(list(vector), dtype=complex).reshape(-1)
        size = array.shape[0]
        num_qubits = int(size).bit_length() - 1
        if size < 2 or (1 << num_qubits) != size:
            raise InvalidStateError(f"state vector length {size} is not a power of two >= 2")
        array = self._permute_vector_axes(array, num_qubits)
        return self._vector_from_array(array, num_qubits - 1)

    def _permute_vector_axes(self, array: np.ndarray, num_qubits: int) -> np.ndarray:
        """Permute a dense state vector from qubit order into level order.

        The recursive array decompositions assign array axis ``k`` (MSB
        first) to level ``n-1-k``; under a non-identity variable order that
        level hosts qubit ``order[n-1-k]``, so the axes must be shuffled.
        """
        if self._order_is_identity:
            return array
        axes = [
            num_qubits - 1 - self.qubit_at(num_qubits - 1 - k)
            for k in range(num_qubits)
        ]
        return array.reshape([2] * num_qubits).transpose(axes).reshape(-1)

    def _vector_from_array(self, array: np.ndarray, var: int) -> Edge:
        if var < 0:
            value = complex(array[0])
            if self.complex_table.is_zero(value):
                return ZERO_EDGE
            return Edge(TERMINAL, self.complex_table.lookup(value))
        half = array.shape[0] // 2
        low = self._vector_from_array(array[:half], var - 1)
        high = self._vector_from_array(array[half:], var - 1)
        return self.make_vector_node(var, (low, high))

    # ------------------------------------------------------------------
    # matrix construction
    # ------------------------------------------------------------------
    def identity(self, num_qubits: int) -> Edge:
        """The identity operation on ``num_qubits`` qubits as a matrix DD."""
        if num_qubits <= 0:
            raise DDError("operations require at least one qubit")
        edge = ONE_EDGE
        for var in range(num_qubits):
            edge = self.make_matrix_node(var, (edge, ZERO_EDGE, ZERO_EDGE, edge))
        return edge

    def from_matrix(self, matrix: "np.ndarray | Sequence[Sequence[complex]]") -> Edge:
        """Build a matrix DD from a dense ``2**n x 2**n`` matrix.

        Splits into the four sub-matrices ``U_ij`` recursively (paper Ex. 7).
        """
        array = np.asarray(matrix, dtype=complex)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise DDError(f"expected a square matrix, got shape {array.shape}")
        size = array.shape[0]
        num_qubits = int(size).bit_length() - 1
        if size < 2 or (1 << num_qubits) != size:
            raise DDError(f"matrix dimension {size} is not a power of two >= 2")
        if not self._order_is_identity:
            axes = [
                num_qubits - 1 - self.qubit_at(num_qubits - 1 - k)
                for k in range(num_qubits)
            ]
            array = (
                array.reshape([2] * (2 * num_qubits))
                .transpose(axes + [num_qubits + a for a in axes])
                .reshape(size, size)
            )
        return self._matrix_from_array(array, num_qubits - 1)

    def _matrix_from_array(self, array: np.ndarray, var: int) -> Edge:
        if var < 0:
            value = complex(array[0, 0])
            if self.complex_table.is_zero(value):
                return ZERO_EDGE
            return Edge(TERMINAL, self.complex_table.lookup(value))
        half = array.shape[0] // 2
        blocks = (
            array[:half, :half],
            array[:half, half:],
            array[half:, :half],
            array[half:, half:],
        )
        children = tuple(self._matrix_from_array(block, var - 1) for block in blocks)
        return self.make_matrix_node(var, children)

    def _chain(self, num_qubits: int, factors: Dict[int, np.ndarray]) -> Edge:
        """Matrix DD for a tensor-product chain with 2x2 ``factors`` at the
        given qubit lines and identities everywhere else."""
        edge = ONE_EDGE
        for var in range(num_qubits):
            matrix = factors.get(self.qubit_at(var), _ID2)
            children: List[Edge] = []
            for i in (0, 1):
                for j in (0, 1):
                    value = complex(matrix[i, j])
                    if self.complex_table.is_zero(value) or edge.is_zero:
                        children.append(ZERO_EDGE)
                    else:
                        weight = self.complex_table.lookup(value * edge.weight)
                        children.append(Edge(edge.node, weight))
            edge = self.make_matrix_node(var, children)
        return edge

    def single_qubit_gate(
        self, num_qubits: int, matrix: np.ndarray, target: int
    ) -> Edge:
        """Matrix DD of a single-qubit gate embedded into ``num_qubits``
        qubits (identity on all other lines; paper Ex. 3 / Fig. 3)."""
        self._check_line(num_qubits, target)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2, 2):
            raise DDError(f"expected a 2x2 matrix, got shape {matrix.shape}")
        return self._chain(num_qubits, {target: matrix})

    def controlled_gate(
        self,
        num_qubits: int,
        matrix: np.ndarray,
        target: int,
        controls: Sequence[int] = (),
        negative_controls: Sequence[int] = (),
    ) -> Edge:
        """Matrix DD of a (multi-)controlled single-qubit gate.

        Uses the identity ``CU = I + P_c ⊗ (U - I)`` where ``P_c`` projects
        the control lines onto their active values: the gate acts only where
        all positive controls are |1> and all negative controls |0>.
        """
        self._check_line(num_qubits, target)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2, 2):
            raise DDError(f"expected a 2x2 matrix, got shape {matrix.shape}")
        lines = {target, *controls, *negative_controls}
        if len(lines) != 1 + len(controls) + len(negative_controls):
            raise DDError("target and control lines must be distinct")
        for line in lines:
            self._check_line(num_qubits, line)
        if not controls and not negative_controls:
            return self._chain(num_qubits, {target: matrix})
        factors: Dict[int, np.ndarray] = {target: matrix - _ID2}
        for control in controls:
            factors[control] = _ELEMENTARY[(1, 1)]
        for control in negative_controls:
            factors[control] = _ELEMENTARY[(0, 0)]
        return self._add(self.identity(num_qubits), self._chain(num_qubits, factors))

    def two_qubit_gate(
        self, num_qubits: int, matrix: np.ndarray, qubit_high: int, qubit_low: int
    ) -> Edge:
        """Matrix DD of an arbitrary two-qubit gate on any pair of lines.

        ``matrix`` is the 4x4 unitary in big-endian order with ``qubit_high``
        as the more significant of the two lines.  Decomposes into
        ``sum_ij |i><j|_high ⊗ B_ij_low`` (four tensor-product chains).
        """
        self._check_line(num_qubits, qubit_high)
        self._check_line(num_qubits, qubit_low)
        if qubit_high == qubit_low:
            raise DDError("two-qubit gates need two distinct lines")
        if qubit_high < qubit_low:
            raise DDError("qubit_high must be the more significant line")
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (4, 4):
            raise DDError(f"expected a 4x4 matrix, got shape {matrix.shape}")
        result = ZERO_EDGE
        for i in (0, 1):
            for j in (0, 1):
                block = matrix[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
                if np.allclose(block, 0.0, atol=self.complex_table.tolerance):
                    continue
                term = self._chain(
                    num_qubits,
                    {qubit_high: _ELEMENTARY[(i, j)], qubit_low: block},
                )
                result = self._add(result, term)
        return result

    @staticmethod
    def _check_line(num_qubits: int, line: int) -> None:
        if not 0 <= line < num_qubits:
            raise DDError(f"qubit line {line} out of range for {num_qubits} qubits")

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, left: Edge, right: Edge) -> Edge:
        """Element-wise sum of two vector or two matrix DDs (paper Fig. 4)."""
        self._maybe_gc()
        left = self._resolve(left)
        right = self._resolve(right)
        if not self._obs_on:
            return self._add(left, right)
        start = perf_counter()
        result = self._add(left, right)
        self._observe_op("add", start)
        return result

    def _add(self, left: Edge, right: Edge) -> Edge:
        if left.is_zero:
            return right
        if right.is_zero:
            return left
        engine = self._pooled
        if engine is not None:
            lt, rt = left.node.is_terminal, right.node.is_terminal
            if not lt and not rt and type(left.node) is not type(right.node):
                raise DDError("cannot add a vector DD and a matrix DD")
            probe = right.node if lt else left.node
            kind = MATRIX if isinstance(probe, MatrixNode) else VECTOR
            return engine.to_edge(
                kind,
                engine.add(kind, engine.from_edge(left), engine.from_edge(right)),
            )
        if left.node.is_terminal and right.node.is_terminal:
            total = left.weight + right.weight
            if self.complex_table.is_zero(total):
                return ZERO_EDGE
            return Edge(TERMINAL, self.complex_table.lookup(total))
        if self.identity_skipping and (
            left.node.is_terminal
            or right.node.is_terminal
            or left.node.var != right.node.var
        ):
            if isinstance(left.node, MatrixNode) or isinstance(
                right.node, MatrixNode
            ):
                return self._add_skipping(left, right)
        if left.node.var != right.node.var:
            raise DimensionMismatchError(
                f"cannot add DDs at levels {left.node.var} and {right.node.var}"
            )
        if type(left.node) is not type(right.node):
            raise DDError("cannot add a vector DD and a matrix DD")
        # Addition is commutative: order operands for better cache reuse.
        if right.node.uid < left.node.uid:
            left, right = right, left
        # Factor the left weight out: l + r = w_l * (l/w_l + r/w_l).
        ratio = self.complex_table.lookup(right.weight / left.weight)
        key = (left.node, right.node, ratio)
        cached = self._add_cache.lookup(key)
        if cached is None:
            children = tuple(
                self._add(
                    left.node.edges[index],
                    right.node.edges[index].scaled(ratio, self.complex_table),
                )
                for index in range(len(left.node.edges))
            )
            if isinstance(left.node, MatrixNode):
                cached = self.make_matrix_node(left.node.var, children)
            else:
                cached = self.make_vector_node(left.node.var, children)
            self._add_cache.insert(key, cached)
        return cached.scaled(left.weight, self.complex_table)

    @staticmethod
    def _is_matrix_like(node: Node) -> bool:
        return node.is_terminal or isinstance(node, MatrixNode)

    def _matrix_children_at(self, node: Node, var: int, weight) -> Tuple[Edge, ...]:
        """Children of ``weight * node`` viewed as a matrix node at ``var``.

        With identity skipping, a terminal or a node below ``var`` stands for
        ``I ⊗ ... ⊗ node`` — virtually a diagonal node ``(e, 0, 0, e)``.
        """
        if not node.is_terminal and node.var == var:
            if weight == ComplexTable.ONE:
                return tuple(node.edges)
            return tuple(
                edge.scaled(weight, self.complex_table) for edge in node.edges
            )
        unit = Edge(node, weight)
        return (unit, ZERO_EDGE, ZERO_EDGE, unit)

    def _add_skipping(self, left: Edge, right: Edge) -> Edge:
        """Matrix addition where either side skips levels (or is terminal)."""
        if not self._is_matrix_like(left.node) or not self._is_matrix_like(
            right.node
        ):
            raise DDError("cannot add a vector DD and a matrix DD")
        var = max(
            left.node.var if not left.node.is_terminal else -1,
            right.node.var if not right.node.is_terminal else -1,
        )
        if right.node.uid < left.node.uid:
            left, right = right, left
        ratio = self.complex_table.lookup(right.weight / left.weight)
        key = (left.node, right.node, ratio)
        cached = self._add_cache.lookup(key)
        if cached is None:
            lchildren = self._matrix_children_at(
                left.node, var, ComplexTable.ONE
            )
            rchildren = self._matrix_children_at(right.node, var, ratio)
            children = tuple(
                self._add(lchildren[index], rchildren[index])
                for index in range(4)
            )
            cached = self.make_matrix_node(var, children)
            self._add_cache.insert(key, cached)
        return cached.scaled(left.weight, self.complex_table)

    def multiply(self, operation: Edge, operand: Edge) -> Edge:
        """Matrix-vector or matrix-matrix product (paper Fig. 4).

        ``operation`` must be a matrix DD; ``operand`` may be a vector DD
        (simulation step) or a matrix DD (functionality construction).
        """
        self._maybe_gc()
        operation = self._resolve(operation)
        operand = self._resolve(operand)
        if not self._obs_on:
            return self._multiply(operation, operand)
        start = perf_counter()
        result = self._multiply(operation, operand)
        self._observe_op("multiply", start)
        return result

    def _multiply(self, operation: Edge, operand: Edge) -> Edge:
        if operation.is_zero or operand.is_zero:
            return ZERO_EDGE
        if not isinstance(operation.node, MatrixNode):
            if self.identity_skipping and operation.node.is_terminal:
                # A fully skipped operation (w * identity) rescales the
                # operand, whatever its kind.
                return Edge(
                    operand.node,
                    self.complex_table.lookup(operation.weight * operand.weight),
                )
            raise DDError("the first multiply operand must be a matrix DD")
        if isinstance(operand.node, MatrixNode) or (
            self.identity_skipping and operand.node.is_terminal
        ):
            # With identity skipping a terminal operand is a collapsed
            # identity matrix (vector DDs stay level-dense, so a terminal
            # state can only be the 0-qubit scalar, where the mm rescale
            # is the same answer).
            return self._multiply_mm(operation, operand)
        return self._multiply_mv(operation, operand)

    def _multiply_mv(self, m_edge: Edge, v_edge: Edge) -> Edge:
        if m_edge.is_zero or v_edge.is_zero:
            return ZERO_EDGE
        engine = self._pooled
        if engine is not None:
            return engine.to_edge(
                VECTOR,
                engine.multiply_mv(
                    engine.from_edge(m_edge), engine.from_edge(v_edge)
                ),
            )
        factor = self.complex_table.lookup(m_edge.weight * v_edge.weight)
        if m_edge.node.is_terminal and v_edge.node.is_terminal:
            return Edge(TERMINAL, factor)
        if self.identity_skipping and not v_edge.node.is_terminal:
            if m_edge.node.is_terminal:
                # w * I applied to the (dense) state: rescale only.
                return Edge(v_edge.node, factor)
            if m_edge.node.var < v_edge.node.var:
                return self._multiply_mv_skipping(m_edge, v_edge, factor)
        if m_edge.node.var != v_edge.node.var:
            raise DimensionMismatchError(
                f"matrix level {m_edge.node.var} does not match vector level "
                f"{v_edge.node.var}"
            )
        key = (m_edge.node, v_edge.node)
        cached = self._mult_mv_cache.lookup(key)
        if cached is None:
            children = []
            for i in (0, 1):
                partial = self._add(
                    self._multiply_mv(m_edge.node.edges[2 * i], v_edge.node.edges[0]),
                    self._multiply_mv(m_edge.node.edges[2 * i + 1], v_edge.node.edges[1]),
                )
                children.append(partial)
            cached = self.make_vector_node(m_edge.node.var, children)
            self._mult_mv_cache.insert(key, cached)
        return cached.scaled(factor, self.complex_table)

    def _multiply_mv_skipping(self, m_edge: Edge, v_edge: Edge, factor) -> Edge:
        """Matrix-vector product where the matrix skips the vector's level."""
        var = v_edge.node.var
        key = (m_edge.node, v_edge.node)
        cached = self._mult_mv_cache.lookup(key)
        if cached is None:
            mchildren = self._matrix_children_at(
                m_edge.node, var, ComplexTable.ONE
            )
            children = []
            for i in (0, 1):
                partial = self._add(
                    self._multiply_mv(mchildren[2 * i], v_edge.node.edges[0]),
                    self._multiply_mv(mchildren[2 * i + 1], v_edge.node.edges[1]),
                )
                children.append(partial)
            cached = self.make_vector_node(var, children)
            self._mult_mv_cache.insert(key, cached)
        return cached.scaled(factor, self.complex_table)

    def _multiply_mm(self, a_edge: Edge, b_edge: Edge) -> Edge:
        if a_edge.is_zero or b_edge.is_zero:
            return ZERO_EDGE
        engine = self._pooled
        if engine is not None:
            return engine.to_edge(
                MATRIX,
                engine.multiply_mm(
                    engine.from_edge(a_edge), engine.from_edge(b_edge)
                ),
            )
        factor = self.complex_table.lookup(a_edge.weight * b_edge.weight)
        if a_edge.node.is_terminal and b_edge.node.is_terminal:
            return Edge(TERMINAL, factor)
        if self.identity_skipping:
            # w * I absorbs into the other operand's weight.
            if a_edge.node.is_terminal:
                return Edge(b_edge.node, factor)
            if b_edge.node.is_terminal:
                return Edge(a_edge.node, factor)
            if a_edge.node.var != b_edge.node.var:
                return self._multiply_mm_skipping(a_edge, b_edge, factor)
        if a_edge.node.var != b_edge.node.var:
            raise DimensionMismatchError(
                f"cannot multiply matrix DDs at levels {a_edge.node.var} and "
                f"{b_edge.node.var}"
            )
        key = (a_edge.node, b_edge.node)
        cached = self._mult_mm_cache.lookup(key)
        if cached is None:
            children = []
            for i in (0, 1):
                for j in (0, 1):
                    entry = self._add(
                        self._multiply_mm(
                            a_edge.node.edges[2 * i], b_edge.node.edges[j]
                        ),
                        self._multiply_mm(
                            a_edge.node.edges[2 * i + 1], b_edge.node.edges[2 + j]
                        ),
                    )
                    children.append(entry)
            cached = self.make_matrix_node(a_edge.node.var, children)
            self._mult_mm_cache.insert(key, cached)
        return cached.scaled(factor, self.complex_table)

    def _multiply_mm_skipping(self, a_edge: Edge, b_edge: Edge, factor) -> Edge:
        """Matrix-matrix product across mismatched (skipped) levels."""
        var = max(a_edge.node.var, b_edge.node.var)
        key = (a_edge.node, b_edge.node)
        cached = self._mult_mm_cache.lookup(key)
        if cached is None:
            achildren = self._matrix_children_at(
                a_edge.node, var, ComplexTable.ONE
            )
            bchildren = self._matrix_children_at(
                b_edge.node, var, ComplexTable.ONE
            )
            children = []
            for i in (0, 1):
                for j in (0, 1):
                    entry = self._add(
                        self._multiply_mm(achildren[2 * i], bchildren[j]),
                        self._multiply_mm(achildren[2 * i + 1], bchildren[2 + j]),
                    )
                    children.append(entry)
            cached = self.make_matrix_node(var, children)
            self._mult_mm_cache.insert(key, cached)
        return cached.scaled(factor, self.complex_table)

    def kron(
        self, top: Edge, bottom: Edge, bottom_qubits: Optional[int] = None
    ) -> Edge:
        """Tensor product ``top ⊗ bottom`` by terminal replacement.

        The terminal of ``top`` is replaced by the root of ``bottom`` and the
        ``top`` levels are shifted above ``bottom``'s (paper Fig. 3).  Works
        for two vector DDs or two matrix DDs.  With identity skipping the
        span of a matrix DD is no longer ``root.var + 1``; pass
        ``bottom_qubits`` explicitly when ``bottom`` skips at its root.
        """
        self._maybe_gc()
        top = self._resolve(top)
        bottom = self._resolve(bottom)
        if not self._obs_on:
            return self._kron(top, bottom, bottom_qubits)
        start = perf_counter()
        result = self._kron(top, bottom, bottom_qubits)
        self._observe_op("kron", start)
        return result

    def _kron(
        self, top: Edge, bottom: Edge, bottom_qubits: Optional[int] = None
    ) -> Edge:
        if top.is_zero or bottom.is_zero:
            return ZERO_EDGE
        if (
            not top.node.is_terminal
            and not bottom.node.is_terminal
            and type(top.node) is not type(bottom.node)
        ):
            raise DDError("cannot tensor a vector DD with a matrix DD")
        shift = bottom.node.var + 1 if bottom_qubits is None else bottom_qubits
        engine = self._pooled
        if engine is not None:
            probe = bottom.node if top.node.is_terminal else top.node
            kind = MATRIX if isinstance(probe, MatrixNode) else VECTOR
            return engine.to_edge(
                kind,
                engine.kron(
                    kind, engine.from_edge(top), engine.from_edge(bottom), shift
                ),
            )
        factor = self.complex_table.lookup(top.weight * bottom.weight)
        result = self._kron_nodes(top.node, bottom.node, shift)
        return result.scaled(factor, self.complex_table)

    def _kron_nodes(self, top: Node, bottom: Node, shift: int) -> Edge:
        if top.is_terminal:
            return Edge(bottom, ComplexTable.ONE)
        key = (top, bottom, shift)
        cached = self._kron_cache.lookup(key)
        if cached is None:
            children = []
            for edge in top.edges:
                if edge.is_zero:
                    children.append(ZERO_EDGE)
                else:
                    sub = self._kron_nodes(edge.node, bottom, shift)
                    children.append(sub.scaled(edge.weight, self.complex_table))
            if isinstance(top, MatrixNode):
                cached = self.make_matrix_node(top.var + shift, children)
            else:
                cached = self.make_vector_node(top.var + shift, children)
            self._kron_cache.insert(key, cached)
        return cached

    # ------------------------------------------------------------------
    # direct gate application (no gate DD is constructed)
    # ------------------------------------------------------------------
    def apply_single_qubit_gate(
        self, state: Edge, matrix: np.ndarray, target: int
    ) -> Edge:
        """Apply a single-qubit gate directly to a vector DD.

        Unlike :meth:`single_qubit_gate` + :meth:`multiply`, no full-system
        matrix DD is built — the kernel recurses over the state diagram
        alone (:mod:`repro.dd.apply`).
        """
        from repro.dd import apply as apply_kernels

        self._check_line(self.num_qubits(state), target)
        return apply_kernels.apply_single_qubit(self, state, matrix, target)

    def apply_controlled_gate(
        self,
        state: Edge,
        matrix: np.ndarray,
        target: int,
        controls: Sequence[int] = (),
        negative_controls: Sequence[int] = (),
    ) -> Edge:
        """Apply a (multi-)controlled single-qubit gate directly to a
        vector DD (the direct counterpart of :meth:`controlled_gate`)."""
        from repro.dd import apply as apply_kernels

        num_qubits = self.num_qubits(state)
        for line in (target, *controls, *negative_controls):
            self._check_line(num_qubits, line)
        return apply_kernels.apply_controlled(
            self, state, matrix, target, controls, negative_controls
        )

    def apply_swap_gate(
        self,
        state: Edge,
        line_a: int,
        line_b: int,
        controls: Sequence[int] = (),
        negative_controls: Sequence[int] = (),
    ) -> Edge:
        """Apply a (controlled) SWAP directly to a vector DD."""
        from repro.dd import apply as apply_kernels

        num_qubits = self.num_qubits(state)
        for line in (line_a, line_b, *controls, *negative_controls):
            self._check_line(num_qubits, line)
        return apply_kernels.apply_swap(
            self, state, line_a, line_b, controls, negative_controls
        )

    def adjoint(self, operation: Edge) -> Edge:
        """Conjugate transpose of a matrix DD."""
        self._maybe_gc()
        operation = self._resolve(operation)
        if not self._obs_on:
            return self._adjoint(operation)
        start = perf_counter()
        result = self._adjoint(operation)
        self._observe_op("adjoint", start)
        return result

    def _adjoint(self, operation: Edge) -> Edge:
        if operation.is_zero:
            return ZERO_EDGE
        engine = self._pooled
        if engine is not None:
            if not operation.node.is_terminal and not isinstance(
                operation.node, MatrixNode
            ):
                raise DDError("adjoint is only defined for matrix DDs")
            return engine.to_edge(MATRIX, engine.adjoint(engine.from_edge(operation)))
        weight = self.complex_table.lookup(operation.weight.conjugate())
        result = self._adjoint_node(operation.node)
        return result.scaled(weight, self.complex_table)

    def _adjoint_node(self, node: Node) -> Edge:
        if node.is_terminal:
            return ONE_EDGE
        if not isinstance(node, MatrixNode):
            raise DDError("adjoint is only defined for matrix DDs")
        cached = self._adjoint_cache.lookup(node)
        if cached is None:
            transposed = (
                node.edges[0], node.edges[2], node.edges[1], node.edges[3]
            )
            children = tuple(self._adjoint(edge) for edge in transposed)
            cached = self.make_matrix_node(node.var, children)
            self._adjoint_cache.insert(node, cached)
        return cached

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @staticmethod
    def num_qubits(edge: Edge) -> int:
        """Number of qubits of a (non-zero) DD rooted at ``edge``."""
        return edge.node.var + 1

    def node_count(self, edge: Edge) -> int:
        """Number of non-terminal nodes reachable from ``edge``.

        The terminal is not counted, following the paper's convention
        (Ex. 6: the Bell-state DD "consists of 3 nodes").
        """
        edge = self._resolve(edge)
        if self._pooled is not None and not edge.node.is_terminal:
            node = edge.node
            if getattr(node, "_engine", None) is self._pooled:
                return self._pooled.count_nodes(node._KIND, node._index)
        seen = set()
        stack = [edge.node]
        while stack:
            node = stack.pop()
            if node.is_terminal or node in seen:
                continue
            seen.add(node)
            for child in node.edges:
                stack.append(child.node)
        return len(seen)

    def amplitude(self, state: Edge, basis: BitString, num_qubits: Optional[int] = None) -> complex:
        """Amplitude of ``|basis>`` in ``state`` (product of path weights)."""
        state = self._resolve(state)
        if num_qubits is None:
            num_qubits = self.num_qubits(state)
        bits = _bits_from(basis, num_qubits)
        if not self._order_is_identity:
            # Walk step k descends level n-1-k, which hosts qubit
            # order[n-1-k]; pick that qubit's bit from the big-endian input.
            bits = tuple(
                bits[num_qubits - 1 - self.qubit_at(num_qubits - 1 - k)]
                for k in range(num_qubits)
            )
        value = complex(1.0, 0.0)
        edge = state
        for bit in bits:
            if edge.is_zero:
                return ComplexTable.ZERO
            value *= edge.weight
            edge = edge.node.edges[bit]
        if edge.is_zero:
            return ComplexTable.ZERO
        return self.complex_table.lookup(value * edge.weight)

    def matrix_entry(
        self,
        operation: Edge,
        row: BitString,
        column: BitString,
        num_qubits: Optional[int] = None,
    ) -> complex:
        """Entry ``U[row, column]`` of a matrix DD.

        Skip-aware: a node below the expected level (identity skipping)
        contributes identity entries for the skipped levels.  Pass
        ``num_qubits`` explicitly for DDs that skip at the root.
        """
        operation = self._resolve(operation)
        if num_qubits is None:
            num_qubits = self.num_qubits(operation)
        row_bits = _bits_from(row, num_qubits)
        col_bits = _bits_from(column, num_qubits)
        if not self._order_is_identity:
            permuted = tuple(
                num_qubits - 1 - self.qubit_at(num_qubits - 1 - k)
                for k in range(num_qubits)
            )
            row_bits = tuple(row_bits[p] for p in permuted)
            col_bits = tuple(col_bits[p] for p in permuted)
        value = complex(1.0, 0.0)
        edge = operation
        for k in range(num_qubits):
            if edge.is_zero:
                return ComplexTable.ZERO
            level = num_qubits - 1 - k
            i, j = row_bits[k], col_bits[k]
            node = edge.node
            if node.is_terminal or node.var < level:
                # Skipped level: identity — diagonal survives, rest is zero.
                if i != j:
                    return ComplexTable.ZERO
                continue
            value *= edge.weight
            edge = node.edges[2 * i + j]
        if edge.is_zero:
            return ComplexTable.ZERO
        return self.complex_table.lookup(value * edge.weight)

    def to_vector(self, state: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        """Dense state vector represented by ``state`` (for small systems)."""
        state = self._resolve(state)
        if num_qubits is None:
            num_qubits = self.num_qubits(state)
        out = np.zeros(1 << num_qubits, dtype=complex)
        self._fill_vector(state, 0, complex(1.0, 0.0), out)
        return out

    def _fill_vector(
        self, edge: Edge, offset: int, weight: complex, out: np.ndarray
    ) -> None:
        if edge.is_zero:
            return
        weight = weight * edge.weight
        if edge.node.is_terminal:
            out[offset] = weight
            return
        # Level ``var`` hosts qubit ``order[var]``: its bit's significance.
        stride = 1 << self.qubit_at(edge.node.var)
        self._fill_vector(edge.node.edges[0], offset, weight, out)
        self._fill_vector(edge.node.edges[1], offset + stride, weight, out)

    def to_matrix(self, operation: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        """Dense matrix represented by ``operation`` (for small systems).

        Skip-aware: pass ``num_qubits`` explicitly for identity-skipping
        DDs whose root sits below the intended top level.
        """
        operation = self._resolve(operation)
        if num_qubits is None:
            num_qubits = self.num_qubits(operation)
        size = 1 << num_qubits
        out = np.zeros((size, size), dtype=complex)
        self._fill_matrix(operation, num_qubits - 1, 0, 0, complex(1.0, 0.0), out)
        return out

    def _fill_matrix(
        self,
        edge: Edge,
        level: int,
        row: int,
        column: int,
        weight: complex,
        out: np.ndarray,
    ) -> None:
        if edge.is_zero:
            return
        node = edge.node
        if level < 0:
            out[row, column] = weight * edge.weight
            return
        stride = 1 << self.qubit_at(level)
        if node.is_terminal or node.var < level:
            # Skipped level: identity — recurse diagonally with the same
            # edge, deferring its weight until the node is reached.
            self._fill_matrix(edge, level - 1, row, column, weight, out)
            self._fill_matrix(
                edge, level - 1, row + stride, column + stride, weight, out
            )
            return
        weight = weight * edge.weight
        for i in (0, 1):
            for j in (0, 1):
                self._fill_matrix(
                    node.edges[2 * i + j],
                    level - 1,
                    row + i * stride,
                    column + j * stride,
                    weight,
                    out,
                )

    def inner_product(self, left: Edge, right: Edge) -> complex:
        """The inner product ``<left|right>`` of two vector DDs."""
        self._maybe_gc()
        left = self._resolve(left)
        right = self._resolve(right)
        if not self._obs_on:
            return self._inner_product(left, right)
        start = perf_counter()
        result = self._inner_product(left, right)
        self._observe_op("inner_product", start)
        return result

    def _inner_product(self, left: Edge, right: Edge) -> complex:
        if left.is_zero or right.is_zero:
            return ComplexTable.ZERO
        if isinstance(left.node, MatrixNode) or isinstance(right.node, MatrixNode):
            raise DDError("the inner product is defined on vector DDs")
        factor = left.weight.conjugate() * right.weight
        engine = self._pooled
        if engine is not None:
            return self.complex_table.lookup(
                factor
                * engine.inner_nodes(
                    engine.node_index(left.node), engine.node_index(right.node)
                )
            )
        return self.complex_table.lookup(
            factor * self._inner_nodes(left.node, right.node)
        )

    def _inner_nodes(self, left: Node, right: Node) -> complex:
        if left.is_terminal and right.is_terminal:
            return complex(1.0, 0.0)
        if left.var != right.var:
            raise DimensionMismatchError(
                f"inner product of DDs at levels {left.var} and {right.var}"
            )
        key = (left, right)
        cached = self._inner_cache.lookup(key)
        if cached is None:
            total = complex(0.0, 0.0)
            for index in (0, 1):
                l_edge = left.edges[index]
                r_edge = right.edges[index]
                if l_edge.is_zero or r_edge.is_zero:
                    continue
                total += (
                    l_edge.weight.conjugate()
                    * r_edge.weight
                    * self._inner_nodes(l_edge.node, r_edge.node)
                )
            cached = total
            self._inner_cache.insert(key, cached)
        return cached

    def norm_squared(self, state: Edge) -> float:
        """Squared L2 norm of a vector DD."""
        return self.inner_product(state, state).real

    def fidelity(self, left: Edge, right: Edge) -> float:
        """``|<left|right>|**2`` of two (normalized) states."""
        return abs(self.inner_product(left, right)) ** 2

    # ------------------------------------------------------------------
    # dynamic variable reordering
    # ------------------------------------------------------------------
    def reorder(self, strategy: str = "sifting", max_growth: float = 2.0) -> Dict:
        """Re-optimize the variable order of all live (incref'd) roots.

        Runs the sifting optimizer of :mod:`repro.dd.reorder`: each variable
        is moved through every level via adjacent swaps and settled where
        the total diagram is smallest.  Edges handed out before the call
        remain valid — every public entry point translates them through the
        package's remap (:meth:`_resolve`).  Returns a summary dict with
        ``nodes_before``/``nodes_after``/``swaps``/``order``.

        Only enabled with ``reorder="manual"`` or ``"pressure"``.
        """
        if self.reorder_mode == "off":
            raise DDError(
                "dynamic reordering is disabled; construct the package with "
                "reorder='manual' or reorder='pressure'"
            )
        return self._reorder_now(strategy, max_growth)

    def _reorder_now(self, strategy: str = "sifting", max_growth: float = 2.0) -> Dict:
        from repro.dd.reorder import sift

        if strategy != "sifting":
            raise DDError(f"unknown reorder strategy {strategy!r}")
        if self._in_reorder:
            raise DDError("reorder() is not reentrant")
        self._in_reorder = True
        try:
            summary = sift(self, max_growth=max_growth)
        finally:
            self._in_reorder = False
        self._reorder_runs += 1
        # Memoized results remain structurally sound across a reorder, but
        # gate DDs cached per (gate, qubits) are built for the old order.
        self.clear_caches()
        cache = getattr(self, "_gate_dd_cache", None)
        if cache is not None:
            cache.clear()
        return summary

    def _pressure_reorder(self) -> None:
        """Governor hook: request a sift on SOFT pressure
        (``reorder="pressure"``).

        The sift itself is *deferred* to the next :meth:`incref`: pressure
        is detected at operation entry, where callers may still hold
        unrooted intermediate edges (a staged kernel result, a freshly
        built gate DD) that the root remap cannot see — reordering under
        their feet would silently re-interpret their levels.  An incref is
        the natural safe point: the caller is committing a result, so
        every edge that must survive is registered with the governor.
        """
        if self.reorder_mode != "pressure" or self._in_reorder:
            return
        if self._reorder_cooldown > 0:
            self._reorder_cooldown -= 1
            return
        self._reorder_pending = True

    def _run_pending_reorder(self) -> None:
        """Run a pressure-requested sift (called from :meth:`incref`).

        A sift that saves less than 1% of nodes triggers a cooldown to
        keep repeated SOFT collections from thrashing on a local minimum.
        """
        self._reorder_pending = False
        if self.reorder_mode != "pressure" or self._in_reorder:
            return
        summary = self._reorder_now()
        before = summary.get("nodes_before", 0)
        after = summary.get("nodes_after", 0)
        if before <= 0 or (before - after) < 0.01 * before:
            self._reorder_cooldown = 8

    def _retire_stale_roots(self, nodes) -> None:
        """Withdraw pre-reorder root nodes from the unique tables.

        Called by the reorder rebuild *before* any swap conses new nodes.
        The old roots become the remap's domain; evicting them first
        guarantees neither the rebuild itself nor any later operation can
        hash-cons onto a stale node — without this, a rebuilt diagram that
        coincides with another old root (e.g. reordering a state whose
        SWAP-ed twin is also rooted) would alias two meanings onto one
        node object and :meth:`_resolve` would translate fresh edges.
        """
        if self._pooled is not None:
            for node in nodes:
                self._pooled.retire_node(node)
            return
        matrix = [node for node in nodes if isinstance(node, MatrixNode)]
        vector = [node for node in nodes if not isinstance(node, MatrixNode)]
        if vector:
            self._vector_unique.evict(vector)
        if matrix:
            self._matrix_unique.evict(matrix)

    def _apply_reorder_remap(self, mapping: Dict[object, Edge]) -> None:
        """Fold a swap's old-node -> new-edge map into the package remap.

        Existing entries are re-targeted through the new mapping (so the
        remap stays one hop deep), then genuinely new entries are added and
        the governor's root registry is rebuilt.
        """
        if not mapping:
            return
        table = self.complex_table
        for old_node, edge in list(self._remap.items()):
            res = mapping.get(edge.node)
            if res is not None:
                self._remap[old_node] = (
                    ZERO_EDGE
                    if res.is_zero
                    else Edge(res.node, table.lookup(edge.weight * res.weight))
                )
        for old_node, edge in mapping.items():
            if old_node not in self._remap:
                self._remap[old_node] = edge
        self.governor.remap_roots(self._resolve)

    # ------------------------------------------------------------------
    # resource governance
    # ------------------------------------------------------------------
    def incref(self, edge: Edge) -> Edge:
        """Register a long-lived root edge with the governor.

        Holders of roots that must survive garbage collection — simulators,
        verification engines, service sessions — call this so a complex-
        table sweep never purges the root's weight representative.  Node
        liveness itself is still governed by ordinary Python references.
        Returns the (resolved) ``edge`` for call-through convenience.
        """
        edge = self._resolve(edge)
        self.governor.incref(edge)
        if self._reorder_pending:
            self._run_pending_reorder()
            edge = self._resolve(edge)
        return edge

    def decref(self, edge: Edge) -> None:
        """Release a root edge registered with :meth:`incref`.

        Unbalanced calls are tolerated: a decref of an unregistered edge is
        a no-op, and a forgotten decref self-cleans once the node dies.
        """
        self.governor.decref(self._resolve(edge))

    def gc(self, force: bool = False) -> GcStats:
        """Run one garbage collection at the current pressure tier.

        ``force=True`` runs the full HARD tier (clear compute tables, sweep
        the complex table) regardless of measured pressure.  Only safe
        between operations — never call from inside a DD recursion.
        """
        return self.governor.collect(force=force)

    def _maybe_gc(self) -> None:
        """Governor hook for public operation entry points.

        Runs *before* the operation starts, when no un-marked intermediate
        edges are in flight; a sweep mid-recursion could purge weights held
        only by local variables and silently degrade canonicity.  The
        sanitizer tick shares this boundary for the same reason: between
        operations every live edge is table-resident, so a violation here
        is a real invariant break, never an in-flight intermediate.
        """
        if self.sanitize_every:
            self._sanitize_ticks += 1
            if self._sanitize_ticks >= self.sanitize_every:
                self._sanitize_ticks = 0
                self.sanitize(raise_on_violation=True)
        if self.governor.should_collect():
            self.governor.collect()

    # ------------------------------------------------------------------
    # sanitizing
    # ------------------------------------------------------------------
    def sanitize(self, raise_on_violation: bool = False):
        """Verify the package's structural invariants.

        Walks the unique tables, the complex table and the governor's root
        registry, checking hash-consing canonicity, normalization, weight
        hygiene and representative uniqueness (see :mod:`repro.sanitizer`).
        Returns the :class:`~repro.sanitizer.core.SanitizeReport`; with
        ``raise_on_violation`` a failing report raises
        :class:`~repro.errors.SanitizerError` instead.
        """
        from repro.sanitizer.core import DDSanitizer

        report = DDSanitizer(self).run()
        self.sanitize_runs += 1
        self.last_sanitize_report = report
        self._m_sanitize_runs.inc()
        if not report.ok:
            self.sanitize_violations += len(report.violations)
            self._m_sanitize_violations.inc(len(report.violations))
            if self.event_bus is not None:
                self.event_bus.publish("dd.sanitize", {
                    "ok": False,
                    "violations": len(report.violations),
                    "violations_total": self.sanitize_violations,
                    "checks": sorted({v.check for v in report.violations}),
                })
            if raise_on_violation:
                report.raise_if_violations()
        return report

    def _post_gc_sanitize(self) -> None:
        """Governor callback: re-verify invariants right after a collection.

        A sweep is the riskiest moment for canonicity (a live weight swept
        from the complex table lets a later lookup mint a second
        representative), so while sanitizing is enabled every collection is
        followed by a full check.
        """
        if self.sanitize_every:
            self.sanitize(raise_on_violation=True)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop all memoized operation results (unique tables are kept)."""
        for table in self._compute_tables():
            table.clear()
        if self._pooled is not None:
            self._pooled.clear_memos()

    def _compute_tables(self) -> Tuple[ComputeTable, ...]:
        return (
            self._add_cache,
            self._mult_mv_cache,
            self._mult_mm_cache,
            self._kron_cache,
            self._adjoint_cache,
            self._inner_cache,
            self._apply_cache,
        )

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Table statistics (sizes and hit ratios) for diagnostics."""
        result: Dict[str, Dict[str, float]] = {
            "complex_table": {
                "entries": len(self.complex_table),
                "hits": self.complex_table.hits,
                "misses": self.complex_table.misses,
            },
            "unique_vector": {
                "entries": len(self._vector_unique),
                "hits": self._vector_unique.hits,
                "misses": self._vector_unique.misses,
            },
            "unique_matrix": {
                "entries": len(self._matrix_unique),
                "hits": self._matrix_unique.hits,
                "misses": self._matrix_unique.misses,
            },
        }
        for table in self._compute_tables():
            result[table.name] = {
                "entries": len(table),
                "hits": table.hits,
                "misses": table.misses,
                "hit_ratio": table.hit_ratio,
            }
        result["governance"] = self.governor.stats()
        result["storage"] = (
            {"backend": self.storage}
            if self._pooled is None
            else {"backend": self.storage, **self._pooled.stats()}
        )
        result["sanitizer"] = {
            "every": self.sanitize_every,
            "runs": self.sanitize_runs,
            "violations": self.sanitize_violations,
        }
        result["reorder"] = {
            "mode": self.reorder_mode,
            "identity_skipping": self.identity_skipping,
            "runs": self._reorder_runs,
            "swaps": self._reorder_swaps,
            "identity_skips": self.identity_skip_count,
            "order": (
                "identity" if self._order_is_identity else self.qubit_order
            ),
        }
        return result

    @property
    def identity_skip_count(self) -> int:
        """Total matrix-node reductions performed by identity skipping."""
        skips = self._identity_skips
        if self._pooled is not None:
            skips += self._pooled.identity_skips
        return skips
