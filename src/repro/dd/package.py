"""The decision-diagram package facade.

:class:`DDPackage` owns the complex table, the unique tables and the compute
tables, and exposes every operation the paper builds on:

* construction of state DDs (``zero_state``, ``basis_state``,
  ``from_state_vector``) and operation DDs (``identity``, ``from_matrix``,
  ``single_qubit_gate``, ``controlled_gate``, ``two_qubit_gate``);
* arithmetic — element-wise addition, matrix-vector and matrix-matrix
  multiplication (paper Fig. 4), tensor products by terminal replacement
  (paper Fig. 3) and conjugate transposition;
* queries — node counts (terminal excluded, as in the paper), amplitudes,
  dense reconstruction, inner products and norms.

All edge weights flowing through the package are canonicalized through the
complex table, so edges compare with plain ``==`` and two structurally equal
diagrams share the very same root node (canonicity; paper Sec. III-C).

Qubit/level convention follows the paper's big-endian notation: level ``n-1``
(the root) is the most-significant qubit ``q_{n-1}``, level ``0`` is ``q_0``.
"""

from __future__ import annotations

import os
import weakref
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE
from repro.dd.compute_table import ComputeTable
from repro.dd.edge import Edge, ONE_EDGE, ZERO_EDGE
from repro.dd.governance import GcStats, MemoryBudget, ResourceGovernor
from repro.dd.node import MatrixNode, Node, TERMINAL, VectorNode
from repro.dd.normalization import NormalizationScheme, normalize
from repro.dd.pool import WeightPool
from repro.dd.pooled import MATRIX, PooledEngine, PooledUniqueAdapter, VECTOR
from repro.dd.unique_table import UniqueTable
from repro.errors import DDError, DimensionMismatchError, InvalidStateError
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

_ID2 = np.eye(2, dtype=complex)

#: Elementary matrices |i><j| used to decompose two-qubit gates.
_ELEMENTARY = {
    (i, j): np.array(
        [[1.0 if (r, c) == (i, j) else 0.0 for c in (0, 1)] for r in (0, 1)],
        dtype=complex,
    )
    for i in (0, 1)
    for j in (0, 1)
}

BitString = Union[str, int, Sequence[int]]


def _bits_from(value: BitString, num_qubits: int) -> Tuple[int, ...]:
    """Normalize a basis-state designator to a big-endian bit tuple."""
    if isinstance(value, str):
        if len(value) != num_qubits or any(c not in "01" for c in value):
            raise DDError(f"invalid basis string {value!r} for {num_qubits} qubits")
        return tuple(int(c) for c in value)
    if isinstance(value, int):
        if not 0 <= value < (1 << num_qubits):
            raise DDError(f"basis index {value} out of range for {num_qubits} qubits")
        return tuple((value >> (num_qubits - 1 - k)) & 1 for k in range(num_qubits))
    bits = tuple(int(b) for b in value)
    if len(bits) != num_qubits or any(b not in (0, 1) for b in bits):
        raise DDError(f"invalid bit sequence {value!r} for {num_qubits} qubits")
    return bits


class DDPackage:
    """A self-contained decision-diagram package instance.

    Diagrams created by different packages must not be mixed: canonicity
    only holds within one package's unique tables.

    Parameters
    ----------
    tolerance:
        Complex-number identification tolerance.
    vector_scheme:
        Normalization scheme for vector nodes.  The default ``L2`` scheme
        (paper footnote 3) makes subtree norms 1, enabling single-path
        sampling; ``MAX_MAGNITUDE`` is provided for ablation.
    registry:
        Metrics registry receiving the package's table statistics and
        operation counters/timers.  Each package creates a private registry
        by default (so per-package statistics stay separate); pass one
        explicitly to aggregate several components into one report.
    use_apply_kernels:
        Route gate applications through the direct kernels of
        :mod:`repro.dd.apply` (no full-system gate DD is constructed).
        On by default; switch off to force the legacy matrix path, which
        is retained as the differential-testing oracle.
    budget:
        Memory budget enforced by the package's resource governor
        (:mod:`repro.dd.governance`).  The default budget has no limits:
        ``incref``/``decref``/``gc`` still work (so workers can force a
        collection between jobs), but no automatic collection triggers.
    sanitize_every:
        Run the structural sanitizer (:mod:`repro.sanitizer`) every N
        public operations, raising :class:`~repro.errors.SanitizerError`
        on the first violation.  ``0`` disables op-boundary sanitizing;
        ``None`` (the default) reads the ``REPRO_SANITIZE_EVERY``
        environment variable (unset/invalid means disabled).  While
        enabled, the sanitizer also runs after every garbage collection.
    event_bus:
        Optional :class:`repro.obs.events.EventBus` onto which the package
        publishes structured events: ``dd.gc`` per collection,
        ``dd.pressure`` per pressure-tier transition and ``dd.sanitize``
        per failing sanitizer run (the live dashboard's state feed).
    storage:
        DD storage backend.  ``"pooled"`` (the default) keeps nodes in
        flat index arrays behind an open-addressed unique table
        (:mod:`repro.dd.pooled`); ``"object"`` is the legacy one-heap-
        object-per-node core, retained as the differential-testing oracle.
        Both backends produce byte-for-byte identical canonical weights
        and isomorphic diagrams.  ``None`` reads the ``REPRO_DD_STORAGE``
        environment variable (unset means pooled).  Diagrams must never
        be mixed across packages, and hence across backends.
    """

    _OPERATION_NAMES = ("add", "multiply", "kron", "adjoint", "inner_product")

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        vector_scheme: NormalizationScheme = NormalizationScheme.L2,
        cache_capacity: int = 1 << 16,
        registry: Optional[MetricsRegistry] = None,
        use_apply_kernels: bool = True,
        budget: Optional[MemoryBudget] = None,
        sanitize_every: Optional[int] = None,
        event_bus=None,
        storage: Optional[str] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Optional :class:`repro.obs.events.EventBus`: the governor
        #: publishes GC/pressure events onto it and :meth:`sanitize`
        #: publishes its verdicts, feeding the service's live streams.
        self.event_bus = event_bus
        self.use_apply_kernels = use_apply_kernels
        if storage is None:
            storage = os.environ.get("REPRO_DD_STORAGE", "").strip() or "pooled"
        if storage not in ("pooled", "object"):
            raise DDError(f"unknown DD storage backend {storage!r}")
        self.storage = storage
        if storage == "pooled":
            self.complex_table = WeightPool(tolerance, registry=self.registry)
        else:
            self.complex_table = ComplexTable(tolerance, registry=self.registry)
        self.vector_scheme = vector_scheme
        self._add_cache = ComputeTable("add", cache_capacity, registry=self.registry)
        self._mult_mv_cache = ComputeTable(
            "mult-mv", cache_capacity, registry=self.registry
        )
        self._mult_mm_cache = ComputeTable(
            "mult-mm", cache_capacity, registry=self.registry
        )
        self._kron_cache = ComputeTable("kron", cache_capacity, registry=self.registry)
        self._adjoint_cache = ComputeTable(
            "adjoint", cache_capacity, registry=self.registry
        )
        self._inner_cache = ComputeTable(
            "inner", cache_capacity, registry=self.registry
        )
        self._apply_cache = ComputeTable(
            "apply", cache_capacity, registry=self.registry
        )
        if storage == "pooled":
            self._pooled = PooledEngine(
                self.complex_table,
                vector_scheme,
                {
                    "add": self._add_cache,
                    "mult-mv": self._mult_mv_cache,
                    "mult-mm": self._mult_mm_cache,
                    "kron": self._kron_cache,
                    "adjoint": self._adjoint_cache,
                    "inner": self._inner_cache,
                    "apply": self._apply_cache,
                },
            )
            self._vector_unique = PooledUniqueAdapter(
                self._pooled, "vector", registry=self.registry
            )
            self._matrix_unique = PooledUniqueAdapter(
                self._pooled, "matrix", registry=self.registry
            )
        else:
            self._pooled = None
            self._vector_unique = UniqueTable(
                VectorNode, registry=self.registry, kind="vector"
            )
            self._matrix_unique = UniqueTable(
                MatrixNode, registry=self.registry, kind="matrix"
            )
        # Operation counters/timers cover only the *public* entry points;
        # the recursive workers below them stay uninstrumented so the hot
        # recursion pays nothing.
        self._obs_on = self.registry.enabled
        self._op_counters = {
            name: self.registry.counter("dd_ops_total", {"op": name})
            for name in self._OPERATION_NAMES
        }
        self._op_timers = {
            name: self.registry.histogram(
                "dd_op_seconds", DEFAULT_TIME_BUCKETS, {"op": name}
            )
            for name in self._OPERATION_NAMES
        }
        # Sanitizer state must exist before the governor: `collect()` calls
        # back into `_post_gc_sanitize()`.
        if sanitize_every is None:
            raw = os.environ.get("REPRO_SANITIZE_EVERY", "")
            try:
                sanitize_every = int(raw) if raw.strip() else 0
            except ValueError:
                sanitize_every = 0
        self.sanitize_every = max(0, int(sanitize_every))
        self._sanitize_ticks = 0
        self.sanitize_runs = 0
        self.sanitize_violations = 0
        self.last_sanitize_report = None
        self._m_sanitize_runs = self.registry.counter("dd_sanitize_runs_total")
        self._m_sanitize_violations = self.registry.counter(
            "dd_sanitize_violations_total"
        )
        self.governor = ResourceGovernor(
            self,
            budget if budget is not None else MemoryBudget(),
            self.registry,
            event_bus=event_bus,
        )
        # Occupancy is sampled at export time through a weakly-bound
        # collector, so a shared registry never keeps a package alive.
        ref = weakref.ref(self)
        self.registry.add_collector(
            lambda: None if ref() is None else ref()._collect_occupancy()
        )

    def _collect_occupancy(self) -> None:
        """Sample table occupancy into gauges (export-time collector)."""
        registry = self.registry
        registry.gauge("dd_complex_table_entries").set(len(self.complex_table))
        registry.gauge("dd_unique_table_entries", {"kind": "vector"}).set(
            len(self._vector_unique)
        )
        registry.gauge("dd_unique_table_entries", {"kind": "matrix"}).set(
            len(self._matrix_unique)
        )
        for table in self._compute_tables():
            registry.gauge(
                "dd_compute_table_entries", {"table": table.name}
            ).set(len(table))

    def _observe_op(self, name: str, start: float) -> None:
        self._op_counters[name].inc()
        self._op_timers[name].observe(perf_counter() - start)

    # ------------------------------------------------------------------
    # node creation (normalizing constructors)
    # ------------------------------------------------------------------
    def make_vector_node(self, var: int, edges: Sequence[Edge]) -> Edge:
        """Create (or reuse) a normalized vector node; returns its edge.

        The returned edge's weight is the common factor extracted by the
        normalization scheme.  If all successors are zero, the zero stub is
        returned instead of a node.
        """
        if var < 0:
            raise DDError("vector nodes require a non-negative level")
        if self._pooled is not None:
            return self._pooled.make_node_public(VECTOR, var, edges)
        factor, normalized = normalize(edges, self.complex_table, self.vector_scheme)
        if factor == ComplexTable.ZERO:
            return ZERO_EDGE
        node = self._vector_unique.get_or_create(var, normalized)
        return Edge(node, factor)

    def make_matrix_node(self, var: int, edges: Sequence[Edge]) -> Edge:
        """Create (or reuse) a normalized matrix node; returns its edge."""
        if var < 0:
            raise DDError("matrix nodes require a non-negative level")
        if self._pooled is not None:
            return self._pooled.make_node_public(MATRIX, var, edges)
        factor, normalized = normalize(
            edges, self.complex_table, NormalizationScheme.MAX_MAGNITUDE
        )
        if factor == ComplexTable.ZERO:
            return ZERO_EDGE
        node = self._matrix_unique.get_or_create(var, normalized)
        return Edge(node, self.complex_table.lookup(factor))

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def zero_state(self, num_qubits: int) -> Edge:
        """The all-zero state |0...0> as a vector DD (paper Ex. 3)."""
        return self.basis_state(num_qubits, 0)

    def basis_state(self, num_qubits: int, bits: BitString) -> Edge:
        """The computational basis state |bits> as a vector DD."""
        if num_qubits <= 0:
            raise DDError("states require at least one qubit")
        bit_tuple = _bits_from(bits, num_qubits)
        edge = ONE_EDGE
        for var in range(num_qubits):
            bit = bit_tuple[num_qubits - 1 - var]
            children = [ZERO_EDGE, ZERO_EDGE]
            children[bit] = edge
            edge = self.make_vector_node(var, children)
        return edge

    def from_state_vector(self, vector: Iterable[complex]) -> Edge:
        """Build a vector DD from a dense state vector of length ``2**n``.

        The recursive sub-vector decomposition of paper Sec. III-A; sharing
        happens automatically through the unique table.
        """
        array = np.asarray(list(vector), dtype=complex).reshape(-1)
        size = array.shape[0]
        num_qubits = int(size).bit_length() - 1
        if size < 2 or (1 << num_qubits) != size:
            raise InvalidStateError(f"state vector length {size} is not a power of two >= 2")
        return self._vector_from_array(array, num_qubits - 1)

    def _vector_from_array(self, array: np.ndarray, var: int) -> Edge:
        if var < 0:
            value = complex(array[0])
            if self.complex_table.is_zero(value):
                return ZERO_EDGE
            return Edge(TERMINAL, self.complex_table.lookup(value))
        half = array.shape[0] // 2
        low = self._vector_from_array(array[:half], var - 1)
        high = self._vector_from_array(array[half:], var - 1)
        return self.make_vector_node(var, (low, high))

    # ------------------------------------------------------------------
    # matrix construction
    # ------------------------------------------------------------------
    def identity(self, num_qubits: int) -> Edge:
        """The identity operation on ``num_qubits`` qubits as a matrix DD."""
        if num_qubits <= 0:
            raise DDError("operations require at least one qubit")
        edge = ONE_EDGE
        for var in range(num_qubits):
            edge = self.make_matrix_node(var, (edge, ZERO_EDGE, ZERO_EDGE, edge))
        return edge

    def from_matrix(self, matrix: "np.ndarray | Sequence[Sequence[complex]]") -> Edge:
        """Build a matrix DD from a dense ``2**n x 2**n`` matrix.

        Splits into the four sub-matrices ``U_ij`` recursively (paper Ex. 7).
        """
        array = np.asarray(matrix, dtype=complex)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise DDError(f"expected a square matrix, got shape {array.shape}")
        size = array.shape[0]
        num_qubits = int(size).bit_length() - 1
        if size < 2 or (1 << num_qubits) != size:
            raise DDError(f"matrix dimension {size} is not a power of two >= 2")
        return self._matrix_from_array(array, num_qubits - 1)

    def _matrix_from_array(self, array: np.ndarray, var: int) -> Edge:
        if var < 0:
            value = complex(array[0, 0])
            if self.complex_table.is_zero(value):
                return ZERO_EDGE
            return Edge(TERMINAL, self.complex_table.lookup(value))
        half = array.shape[0] // 2
        blocks = (
            array[:half, :half],
            array[:half, half:],
            array[half:, :half],
            array[half:, half:],
        )
        children = tuple(self._matrix_from_array(block, var - 1) for block in blocks)
        return self.make_matrix_node(var, children)

    def _chain(self, num_qubits: int, factors: Dict[int, np.ndarray]) -> Edge:
        """Matrix DD for a tensor-product chain with 2x2 ``factors`` at the
        given levels and identities everywhere else."""
        edge = ONE_EDGE
        for var in range(num_qubits):
            matrix = factors.get(var, _ID2)
            children: List[Edge] = []
            for i in (0, 1):
                for j in (0, 1):
                    value = complex(matrix[i, j])
                    if self.complex_table.is_zero(value) or edge.is_zero:
                        children.append(ZERO_EDGE)
                    else:
                        weight = self.complex_table.lookup(value * edge.weight)
                        children.append(Edge(edge.node, weight))
            edge = self.make_matrix_node(var, children)
        return edge

    def single_qubit_gate(
        self, num_qubits: int, matrix: np.ndarray, target: int
    ) -> Edge:
        """Matrix DD of a single-qubit gate embedded into ``num_qubits``
        qubits (identity on all other lines; paper Ex. 3 / Fig. 3)."""
        self._check_line(num_qubits, target)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2, 2):
            raise DDError(f"expected a 2x2 matrix, got shape {matrix.shape}")
        return self._chain(num_qubits, {target: matrix})

    def controlled_gate(
        self,
        num_qubits: int,
        matrix: np.ndarray,
        target: int,
        controls: Sequence[int] = (),
        negative_controls: Sequence[int] = (),
    ) -> Edge:
        """Matrix DD of a (multi-)controlled single-qubit gate.

        Uses the identity ``CU = I + P_c ⊗ (U - I)`` where ``P_c`` projects
        the control lines onto their active values: the gate acts only where
        all positive controls are |1> and all negative controls |0>.
        """
        self._check_line(num_qubits, target)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2, 2):
            raise DDError(f"expected a 2x2 matrix, got shape {matrix.shape}")
        lines = {target, *controls, *negative_controls}
        if len(lines) != 1 + len(controls) + len(negative_controls):
            raise DDError("target and control lines must be distinct")
        for line in lines:
            self._check_line(num_qubits, line)
        if not controls and not negative_controls:
            return self._chain(num_qubits, {target: matrix})
        factors: Dict[int, np.ndarray] = {target: matrix - _ID2}
        for control in controls:
            factors[control] = _ELEMENTARY[(1, 1)]
        for control in negative_controls:
            factors[control] = _ELEMENTARY[(0, 0)]
        return self._add(self.identity(num_qubits), self._chain(num_qubits, factors))

    def two_qubit_gate(
        self, num_qubits: int, matrix: np.ndarray, qubit_high: int, qubit_low: int
    ) -> Edge:
        """Matrix DD of an arbitrary two-qubit gate on any pair of lines.

        ``matrix`` is the 4x4 unitary in big-endian order with ``qubit_high``
        as the more significant of the two lines.  Decomposes into
        ``sum_ij |i><j|_high ⊗ B_ij_low`` (four tensor-product chains).
        """
        self._check_line(num_qubits, qubit_high)
        self._check_line(num_qubits, qubit_low)
        if qubit_high == qubit_low:
            raise DDError("two-qubit gates need two distinct lines")
        if qubit_high < qubit_low:
            raise DDError("qubit_high must be the more significant line")
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (4, 4):
            raise DDError(f"expected a 4x4 matrix, got shape {matrix.shape}")
        result = ZERO_EDGE
        for i in (0, 1):
            for j in (0, 1):
                block = matrix[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
                if np.allclose(block, 0.0, atol=self.complex_table.tolerance):
                    continue
                term = self._chain(
                    num_qubits,
                    {qubit_high: _ELEMENTARY[(i, j)], qubit_low: block},
                )
                result = self._add(result, term)
        return result

    @staticmethod
    def _check_line(num_qubits: int, line: int) -> None:
        if not 0 <= line < num_qubits:
            raise DDError(f"qubit line {line} out of range for {num_qubits} qubits")

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, left: Edge, right: Edge) -> Edge:
        """Element-wise sum of two vector or two matrix DDs (paper Fig. 4)."""
        self._maybe_gc()
        if not self._obs_on:
            return self._add(left, right)
        start = perf_counter()
        result = self._add(left, right)
        self._observe_op("add", start)
        return result

    def _add(self, left: Edge, right: Edge) -> Edge:
        if left.is_zero:
            return right
        if right.is_zero:
            return left
        engine = self._pooled
        if engine is not None:
            lt, rt = left.node.is_terminal, right.node.is_terminal
            if not lt and not rt and type(left.node) is not type(right.node):
                raise DDError("cannot add a vector DD and a matrix DD")
            probe = right.node if lt else left.node
            kind = MATRIX if isinstance(probe, MatrixNode) else VECTOR
            return engine.to_edge(
                kind,
                engine.add(kind, engine.from_edge(left), engine.from_edge(right)),
            )
        if left.node.is_terminal and right.node.is_terminal:
            total = left.weight + right.weight
            if self.complex_table.is_zero(total):
                return ZERO_EDGE
            return Edge(TERMINAL, self.complex_table.lookup(total))
        if left.node.var != right.node.var:
            raise DimensionMismatchError(
                f"cannot add DDs at levels {left.node.var} and {right.node.var}"
            )
        if type(left.node) is not type(right.node):
            raise DDError("cannot add a vector DD and a matrix DD")
        # Addition is commutative: order operands for better cache reuse.
        if right.node.uid < left.node.uid:
            left, right = right, left
        # Factor the left weight out: l + r = w_l * (l/w_l + r/w_l).
        ratio = self.complex_table.lookup(right.weight / left.weight)
        key = (left.node, right.node, ratio)
        cached = self._add_cache.lookup(key)
        if cached is None:
            children = tuple(
                self._add(
                    left.node.edges[index],
                    right.node.edges[index].scaled(ratio, self.complex_table),
                )
                for index in range(len(left.node.edges))
            )
            if isinstance(left.node, MatrixNode):
                cached = self.make_matrix_node(left.node.var, children)
            else:
                cached = self.make_vector_node(left.node.var, children)
            self._add_cache.insert(key, cached)
        return cached.scaled(left.weight, self.complex_table)

    def multiply(self, operation: Edge, operand: Edge) -> Edge:
        """Matrix-vector or matrix-matrix product (paper Fig. 4).

        ``operation`` must be a matrix DD; ``operand`` may be a vector DD
        (simulation step) or a matrix DD (functionality construction).
        """
        self._maybe_gc()
        if not self._obs_on:
            return self._multiply(operation, operand)
        start = perf_counter()
        result = self._multiply(operation, operand)
        self._observe_op("multiply", start)
        return result

    def _multiply(self, operation: Edge, operand: Edge) -> Edge:
        if operation.is_zero or operand.is_zero:
            return ZERO_EDGE
        if not isinstance(operation.node, MatrixNode):
            raise DDError("the first multiply operand must be a matrix DD")
        if isinstance(operand.node, MatrixNode):
            return self._multiply_mm(operation, operand)
        return self._multiply_mv(operation, operand)

    def _multiply_mv(self, m_edge: Edge, v_edge: Edge) -> Edge:
        if m_edge.is_zero or v_edge.is_zero:
            return ZERO_EDGE
        engine = self._pooled
        if engine is not None:
            return engine.to_edge(
                VECTOR,
                engine.multiply_mv(
                    engine.from_edge(m_edge), engine.from_edge(v_edge)
                ),
            )
        factor = self.complex_table.lookup(m_edge.weight * v_edge.weight)
        if m_edge.node.is_terminal and v_edge.node.is_terminal:
            return Edge(TERMINAL, factor)
        if m_edge.node.var != v_edge.node.var:
            raise DimensionMismatchError(
                f"matrix level {m_edge.node.var} does not match vector level "
                f"{v_edge.node.var}"
            )
        key = (m_edge.node, v_edge.node)
        cached = self._mult_mv_cache.lookup(key)
        if cached is None:
            children = []
            for i in (0, 1):
                partial = self._add(
                    self._multiply_mv(m_edge.node.edges[2 * i], v_edge.node.edges[0]),
                    self._multiply_mv(m_edge.node.edges[2 * i + 1], v_edge.node.edges[1]),
                )
                children.append(partial)
            cached = self.make_vector_node(m_edge.node.var, children)
            self._mult_mv_cache.insert(key, cached)
        return cached.scaled(factor, self.complex_table)

    def _multiply_mm(self, a_edge: Edge, b_edge: Edge) -> Edge:
        if a_edge.is_zero or b_edge.is_zero:
            return ZERO_EDGE
        engine = self._pooled
        if engine is not None:
            return engine.to_edge(
                MATRIX,
                engine.multiply_mm(
                    engine.from_edge(a_edge), engine.from_edge(b_edge)
                ),
            )
        factor = self.complex_table.lookup(a_edge.weight * b_edge.weight)
        if a_edge.node.is_terminal and b_edge.node.is_terminal:
            return Edge(TERMINAL, factor)
        if a_edge.node.var != b_edge.node.var:
            raise DimensionMismatchError(
                f"cannot multiply matrix DDs at levels {a_edge.node.var} and "
                f"{b_edge.node.var}"
            )
        key = (a_edge.node, b_edge.node)
        cached = self._mult_mm_cache.lookup(key)
        if cached is None:
            children = []
            for i in (0, 1):
                for j in (0, 1):
                    entry = self._add(
                        self._multiply_mm(
                            a_edge.node.edges[2 * i], b_edge.node.edges[j]
                        ),
                        self._multiply_mm(
                            a_edge.node.edges[2 * i + 1], b_edge.node.edges[2 + j]
                        ),
                    )
                    children.append(entry)
            cached = self.make_matrix_node(a_edge.node.var, children)
            self._mult_mm_cache.insert(key, cached)
        return cached.scaled(factor, self.complex_table)

    def kron(self, top: Edge, bottom: Edge) -> Edge:
        """Tensor product ``top ⊗ bottom`` by terminal replacement.

        The terminal of ``top`` is replaced by the root of ``bottom`` and the
        ``top`` levels are shifted above ``bottom``'s (paper Fig. 3).  Works
        for two vector DDs or two matrix DDs.
        """
        self._maybe_gc()
        if not self._obs_on:
            return self._kron(top, bottom)
        start = perf_counter()
        result = self._kron(top, bottom)
        self._observe_op("kron", start)
        return result

    def _kron(self, top: Edge, bottom: Edge) -> Edge:
        if top.is_zero or bottom.is_zero:
            return ZERO_EDGE
        if (
            not top.node.is_terminal
            and not bottom.node.is_terminal
            and type(top.node) is not type(bottom.node)
        ):
            raise DDError("cannot tensor a vector DD with a matrix DD")
        engine = self._pooled
        if engine is not None:
            probe = bottom.node if top.node.is_terminal else top.node
            kind = MATRIX if isinstance(probe, MatrixNode) else VECTOR
            return engine.to_edge(
                kind,
                engine.kron(kind, engine.from_edge(top), engine.from_edge(bottom)),
            )
        factor = self.complex_table.lookup(top.weight * bottom.weight)
        result = self._kron_nodes(top.node, bottom.node)
        return result.scaled(factor, self.complex_table)

    def _kron_nodes(self, top: Node, bottom: Node) -> Edge:
        if top.is_terminal:
            return Edge(bottom, ComplexTable.ONE)
        key = (top, bottom)
        cached = self._kron_cache.lookup(key)
        if cached is None:
            shift = bottom.var + 1
            children = []
            for edge in top.edges:
                if edge.is_zero:
                    children.append(ZERO_EDGE)
                else:
                    sub = self._kron_nodes(edge.node, bottom)
                    children.append(sub.scaled(edge.weight, self.complex_table))
            if isinstance(top, MatrixNode):
                cached = self.make_matrix_node(top.var + shift, children)
            else:
                cached = self.make_vector_node(top.var + shift, children)
            self._kron_cache.insert(key, cached)
        return cached

    # ------------------------------------------------------------------
    # direct gate application (no gate DD is constructed)
    # ------------------------------------------------------------------
    def apply_single_qubit_gate(
        self, state: Edge, matrix: np.ndarray, target: int
    ) -> Edge:
        """Apply a single-qubit gate directly to a vector DD.

        Unlike :meth:`single_qubit_gate` + :meth:`multiply`, no full-system
        matrix DD is built — the kernel recurses over the state diagram
        alone (:mod:`repro.dd.apply`).
        """
        from repro.dd import apply as apply_kernels

        self._check_line(self.num_qubits(state), target)
        return apply_kernels.apply_single_qubit(self, state, matrix, target)

    def apply_controlled_gate(
        self,
        state: Edge,
        matrix: np.ndarray,
        target: int,
        controls: Sequence[int] = (),
        negative_controls: Sequence[int] = (),
    ) -> Edge:
        """Apply a (multi-)controlled single-qubit gate directly to a
        vector DD (the direct counterpart of :meth:`controlled_gate`)."""
        from repro.dd import apply as apply_kernels

        num_qubits = self.num_qubits(state)
        for line in (target, *controls, *negative_controls):
            self._check_line(num_qubits, line)
        return apply_kernels.apply_controlled(
            self, state, matrix, target, controls, negative_controls
        )

    def apply_swap_gate(
        self,
        state: Edge,
        line_a: int,
        line_b: int,
        controls: Sequence[int] = (),
        negative_controls: Sequence[int] = (),
    ) -> Edge:
        """Apply a (controlled) SWAP directly to a vector DD."""
        from repro.dd import apply as apply_kernels

        num_qubits = self.num_qubits(state)
        for line in (line_a, line_b, *controls, *negative_controls):
            self._check_line(num_qubits, line)
        return apply_kernels.apply_swap(
            self, state, line_a, line_b, controls, negative_controls
        )

    def adjoint(self, operation: Edge) -> Edge:
        """Conjugate transpose of a matrix DD."""
        self._maybe_gc()
        if not self._obs_on:
            return self._adjoint(operation)
        start = perf_counter()
        result = self._adjoint(operation)
        self._observe_op("adjoint", start)
        return result

    def _adjoint(self, operation: Edge) -> Edge:
        if operation.is_zero:
            return ZERO_EDGE
        engine = self._pooled
        if engine is not None:
            if not operation.node.is_terminal and not isinstance(
                operation.node, MatrixNode
            ):
                raise DDError("adjoint is only defined for matrix DDs")
            return engine.to_edge(MATRIX, engine.adjoint(engine.from_edge(operation)))
        weight = self.complex_table.lookup(operation.weight.conjugate())
        result = self._adjoint_node(operation.node)
        return result.scaled(weight, self.complex_table)

    def _adjoint_node(self, node: Node) -> Edge:
        if node.is_terminal:
            return ONE_EDGE
        if not isinstance(node, MatrixNode):
            raise DDError("adjoint is only defined for matrix DDs")
        cached = self._adjoint_cache.lookup(node)
        if cached is None:
            transposed = (
                node.edges[0], node.edges[2], node.edges[1], node.edges[3]
            )
            children = tuple(self._adjoint(edge) for edge in transposed)
            cached = self.make_matrix_node(node.var, children)
            self._adjoint_cache.insert(node, cached)
        return cached

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @staticmethod
    def num_qubits(edge: Edge) -> int:
        """Number of qubits of a (non-zero) DD rooted at ``edge``."""
        return edge.node.var + 1

    def node_count(self, edge: Edge) -> int:
        """Number of non-terminal nodes reachable from ``edge``.

        The terminal is not counted, following the paper's convention
        (Ex. 6: the Bell-state DD "consists of 3 nodes").
        """
        if self._pooled is not None and not edge.node.is_terminal:
            node = edge.node
            if getattr(node, "_engine", None) is self._pooled:
                return self._pooled.count_nodes(node._KIND, node._index)
        seen = set()
        stack = [edge.node]
        while stack:
            node = stack.pop()
            if node.is_terminal or node in seen:
                continue
            seen.add(node)
            for child in node.edges:
                stack.append(child.node)
        return len(seen)

    def amplitude(self, state: Edge, basis: BitString, num_qubits: Optional[int] = None) -> complex:
        """Amplitude of ``|basis>`` in ``state`` (product of path weights)."""
        if num_qubits is None:
            num_qubits = self.num_qubits(state)
        bits = _bits_from(basis, num_qubits)
        value = complex(1.0, 0.0)
        edge = state
        for bit in bits:
            if edge.is_zero:
                return ComplexTable.ZERO
            value *= edge.weight
            edge = edge.node.edges[bit]
        if edge.is_zero:
            return ComplexTable.ZERO
        return self.complex_table.lookup(value * edge.weight)

    def matrix_entry(
        self,
        operation: Edge,
        row: BitString,
        column: BitString,
        num_qubits: Optional[int] = None,
    ) -> complex:
        """Entry ``U[row, column]`` of a matrix DD."""
        if num_qubits is None:
            num_qubits = self.num_qubits(operation)
        row_bits = _bits_from(row, num_qubits)
        col_bits = _bits_from(column, num_qubits)
        value = complex(1.0, 0.0)
        edge = operation
        for i, j in zip(row_bits, col_bits):
            if edge.is_zero:
                return ComplexTable.ZERO
            value *= edge.weight
            edge = edge.node.edges[2 * i + j]
        if edge.is_zero:
            return ComplexTable.ZERO
        return self.complex_table.lookup(value * edge.weight)

    def to_vector(self, state: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        """Dense state vector represented by ``state`` (for small systems)."""
        if num_qubits is None:
            num_qubits = self.num_qubits(state)
        out = np.zeros(1 << num_qubits, dtype=complex)
        self._fill_vector(state, 0, complex(1.0, 0.0), out)
        return out

    def _fill_vector(
        self, edge: Edge, offset: int, weight: complex, out: np.ndarray
    ) -> None:
        if edge.is_zero:
            return
        weight = weight * edge.weight
        if edge.node.is_terminal:
            out[offset] = weight
            return
        stride = 1 << edge.node.var
        self._fill_vector(edge.node.edges[0], offset, weight, out)
        self._fill_vector(edge.node.edges[1], offset + stride, weight, out)

    def to_matrix(self, operation: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        """Dense matrix represented by ``operation`` (for small systems)."""
        if num_qubits is None:
            num_qubits = self.num_qubits(operation)
        size = 1 << num_qubits
        out = np.zeros((size, size), dtype=complex)
        self._fill_matrix(operation, 0, 0, complex(1.0, 0.0), out)
        return out

    def _fill_matrix(
        self, edge: Edge, row: int, column: int, weight: complex, out: np.ndarray
    ) -> None:
        if edge.is_zero:
            return
        weight = weight * edge.weight
        if edge.node.is_terminal:
            out[row, column] = weight
            return
        stride = 1 << edge.node.var
        for i in (0, 1):
            for j in (0, 1):
                self._fill_matrix(
                    edge.node.edges[2 * i + j],
                    row + i * stride,
                    column + j * stride,
                    weight,
                    out,
                )

    def inner_product(self, left: Edge, right: Edge) -> complex:
        """The inner product ``<left|right>`` of two vector DDs."""
        self._maybe_gc()
        if not self._obs_on:
            return self._inner_product(left, right)
        start = perf_counter()
        result = self._inner_product(left, right)
        self._observe_op("inner_product", start)
        return result

    def _inner_product(self, left: Edge, right: Edge) -> complex:
        if left.is_zero or right.is_zero:
            return ComplexTable.ZERO
        if isinstance(left.node, MatrixNode) or isinstance(right.node, MatrixNode):
            raise DDError("the inner product is defined on vector DDs")
        factor = left.weight.conjugate() * right.weight
        engine = self._pooled
        if engine is not None:
            return self.complex_table.lookup(
                factor
                * engine.inner_nodes(
                    engine.node_index(left.node), engine.node_index(right.node)
                )
            )
        return self.complex_table.lookup(
            factor * self._inner_nodes(left.node, right.node)
        )

    def _inner_nodes(self, left: Node, right: Node) -> complex:
        if left.is_terminal and right.is_terminal:
            return complex(1.0, 0.0)
        if left.var != right.var:
            raise DimensionMismatchError(
                f"inner product of DDs at levels {left.var} and {right.var}"
            )
        key = (left, right)
        cached = self._inner_cache.lookup(key)
        if cached is None:
            total = complex(0.0, 0.0)
            for index in (0, 1):
                l_edge = left.edges[index]
                r_edge = right.edges[index]
                if l_edge.is_zero or r_edge.is_zero:
                    continue
                total += (
                    l_edge.weight.conjugate()
                    * r_edge.weight
                    * self._inner_nodes(l_edge.node, r_edge.node)
                )
            cached = total
            self._inner_cache.insert(key, cached)
        return cached

    def norm_squared(self, state: Edge) -> float:
        """Squared L2 norm of a vector DD."""
        return self.inner_product(state, state).real

    def fidelity(self, left: Edge, right: Edge) -> float:
        """``|<left|right>|**2`` of two (normalized) states."""
        return abs(self.inner_product(left, right)) ** 2

    # ------------------------------------------------------------------
    # resource governance
    # ------------------------------------------------------------------
    def incref(self, edge: Edge) -> Edge:
        """Register a long-lived root edge with the governor.

        Holders of roots that must survive garbage collection — simulators,
        verification engines, service sessions — call this so a complex-
        table sweep never purges the root's weight representative.  Node
        liveness itself is still governed by ordinary Python references.
        Returns ``edge`` for call-through convenience.
        """
        self.governor.incref(edge)
        return edge

    def decref(self, edge: Edge) -> None:
        """Release a root edge registered with :meth:`incref`.

        Unbalanced calls are tolerated: a decref of an unregistered edge is
        a no-op, and a forgotten decref self-cleans once the node dies.
        """
        self.governor.decref(edge)

    def gc(self, force: bool = False) -> GcStats:
        """Run one garbage collection at the current pressure tier.

        ``force=True`` runs the full HARD tier (clear compute tables, sweep
        the complex table) regardless of measured pressure.  Only safe
        between operations — never call from inside a DD recursion.
        """
        return self.governor.collect(force=force)

    def _maybe_gc(self) -> None:
        """Governor hook for public operation entry points.

        Runs *before* the operation starts, when no un-marked intermediate
        edges are in flight; a sweep mid-recursion could purge weights held
        only by local variables and silently degrade canonicity.  The
        sanitizer tick shares this boundary for the same reason: between
        operations every live edge is table-resident, so a violation here
        is a real invariant break, never an in-flight intermediate.
        """
        if self.sanitize_every:
            self._sanitize_ticks += 1
            if self._sanitize_ticks >= self.sanitize_every:
                self._sanitize_ticks = 0
                self.sanitize(raise_on_violation=True)
        if self.governor.should_collect():
            self.governor.collect()

    # ------------------------------------------------------------------
    # sanitizing
    # ------------------------------------------------------------------
    def sanitize(self, raise_on_violation: bool = False):
        """Verify the package's structural invariants.

        Walks the unique tables, the complex table and the governor's root
        registry, checking hash-consing canonicity, normalization, weight
        hygiene and representative uniqueness (see :mod:`repro.sanitizer`).
        Returns the :class:`~repro.sanitizer.core.SanitizeReport`; with
        ``raise_on_violation`` a failing report raises
        :class:`~repro.errors.SanitizerError` instead.
        """
        from repro.sanitizer.core import DDSanitizer

        report = DDSanitizer(self).run()
        self.sanitize_runs += 1
        self.last_sanitize_report = report
        self._m_sanitize_runs.inc()
        if not report.ok:
            self.sanitize_violations += len(report.violations)
            self._m_sanitize_violations.inc(len(report.violations))
            if self.event_bus is not None:
                self.event_bus.publish("dd.sanitize", {
                    "ok": False,
                    "violations": len(report.violations),
                    "violations_total": self.sanitize_violations,
                    "checks": sorted({v.check for v in report.violations}),
                })
            if raise_on_violation:
                report.raise_if_violations()
        return report

    def _post_gc_sanitize(self) -> None:
        """Governor callback: re-verify invariants right after a collection.

        A sweep is the riskiest moment for canonicity (a live weight swept
        from the complex table lets a later lookup mint a second
        representative), so while sanitizing is enabled every collection is
        followed by a full check.
        """
        if self.sanitize_every:
            self.sanitize(raise_on_violation=True)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop all memoized operation results (unique tables are kept)."""
        for table in self._compute_tables():
            table.clear()
        if self._pooled is not None:
            self._pooled.clear_memos()

    def _compute_tables(self) -> Tuple[ComputeTable, ...]:
        return (
            self._add_cache,
            self._mult_mv_cache,
            self._mult_mm_cache,
            self._kron_cache,
            self._adjoint_cache,
            self._inner_cache,
            self._apply_cache,
        )

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Table statistics (sizes and hit ratios) for diagnostics."""
        result: Dict[str, Dict[str, float]] = {
            "complex_table": {
                "entries": len(self.complex_table),
                "hits": self.complex_table.hits,
                "misses": self.complex_table.misses,
            },
            "unique_vector": {
                "entries": len(self._vector_unique),
                "hits": self._vector_unique.hits,
                "misses": self._vector_unique.misses,
            },
            "unique_matrix": {
                "entries": len(self._matrix_unique),
                "hits": self._matrix_unique.hits,
                "misses": self._matrix_unique.misses,
            },
        }
        for table in self._compute_tables():
            result[table.name] = {
                "entries": len(table),
                "hits": table.hits,
                "misses": table.misses,
                "hit_ratio": table.hit_ratio,
            }
        result["governance"] = self.governor.stats()
        result["storage"] = (
            {"backend": self.storage}
            if self._pooled is None
            else {"backend": self.storage, **self._pooled.stats()}
        )
        result["sanitizer"] = {
            "every": self.sanitize_every,
            "runs": self.sanitize_runs,
            "violations": self.sanitize_violations,
        }
        return result
