"""Canonical storage for complex edge weights.

Decision diagrams are only canonical if identical weights are recognised as
identical.  Under floating-point arithmetic, two computations of the same
amplitude (e.g. ``1/sqrt(2)`` obtained via normalization versus via a Hadamard
matrix entry) may differ in the last bits.  Following the complex-table design
of the JKQ/MQT DD package (ICCAD 2019), all edge weights are looked up in a
:class:`ComplexTable` which returns one canonical representative per
tolerance-ball, so that exact ``==`` comparison (and hashing) of weights is
sound everywhere else in the package.

The table buckets values on a grid of width ``tolerance`` and searches the
3x3 neighbourhood of a query's bucket, which guarantees that any stored value
within ``tolerance`` (in Chebyshev distance) of the query is found.
"""

from __future__ import annotations

import cmath
import math
import weakref
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Default tolerance used to identify complex numbers.
DEFAULT_TOLERANCE = 1e-10

_NEIGHBOUR_OFFSETS = tuple(
    (dr, di) for dr in (-1, 0, 1) for di in (-1, 0, 1)
)


class ComplexTable:
    """Canonicalizes complex numbers up to a tolerance.

    Values within ``tolerance`` of an already-stored value are mapped to that
    stored representative; otherwise the value itself becomes a new canonical
    representative.  ``0`` and ``1`` are pre-seeded and always returned
    exactly, because the rest of the package tests edge weights against them.
    """

    #: Canonical zero and one, shared by every table.
    ZERO = complex(0.0, 0.0)
    ONE = complex(1.0, 0.0)

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        registry: Optional[MetricsRegistry] = None,
    ):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self._buckets: Dict[Tuple[int, int], List[complex]] = {}
        # Plain-integer statistics (every weight canonicalization passes
        # through `lookup`, so the hot path must stay one increment); a
        # registry collector copies them into counters at export time.
        self.hits = 0
        self.misses = 0
        if registry is not None and registry.enabled:
            self._register(registry)
        self._seed()

    def _seed(self) -> None:
        """(Re-)insert the special values as canonical representatives.

        Shared by ``__init__``, ``clear`` and ``sweep`` so the seed set
        cannot drift between construction and later resets.  Idempotent:
        a seed that survived a sweep is not inserted twice.
        """
        sqrt2_inv = 1.0 / math.sqrt(2.0)
        for special in (
            self.ZERO, self.ONE, -self.ONE, 1j, -1j,
            complex(sqrt2_inv, 0.0), complex(-sqrt2_inv, 0.0),
            complex(0.0, sqrt2_inv), complex(0.0, -sqrt2_inv),
        ):
            bucket = self._buckets.setdefault(self._key(special), [])
            if special not in bucket:
                bucket.append(special)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def lookup(self, value: complex) -> complex:
        """Return the canonical representative for ``value``.

        If a stored value lies within the tolerance (component-wise), it is
        returned; otherwise ``value`` is stored and returned as-is.
        """
        value = complex(value)
        if not (math.isfinite(value.real) and math.isfinite(value.imag)):
            raise ValueError(f"non-finite complex value: {value!r}")
        # Snap sub-tolerance components to exactly zero.  Besides improving
        # sharing, this keeps subnormals out of the table (cmath.phase
        # raises "math range error" on them).
        real, imag = value.real, value.imag
        if real != 0.0 and abs(real) < self.tolerance:
            real = 0.0
        if imag != 0.0 and abs(imag) < self.tolerance:
            imag = 0.0
        value = complex(real, imag)
        found = self._find(value)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        self._insert(value)
        return value

    def lookup_real(self, value: float) -> complex:
        """Canonicalize a real number (convenience wrapper)."""
        return self.lookup(complex(value, 0.0))

    def is_zero(self, value: complex) -> bool:
        """Whether ``value`` is (canonically) zero."""
        return value == self.ZERO or (
            abs(value.real) < self.tolerance and abs(value.imag) < self.tolerance
        )

    def is_one(self, value: complex) -> bool:
        """Whether ``value`` is (canonically) one."""
        return value == self.ONE or (
            abs(value.real - 1.0) < self.tolerance
            and abs(value.imag) < self.tolerance
        )

    def approx_equal(self, a: complex, b: complex) -> bool:
        """Whether two complex numbers agree within the tolerance."""
        return (
            abs(a.real - b.real) < self.tolerance
            and abs(a.imag - b.imag) < self.tolerance
        )

    def _register(self, registry: MetricsRegistry) -> None:
        hits = registry.counter("dd_complex_table_hits_total")
        misses = registry.counter("dd_complex_table_misses_total")
        ref = weakref.ref(self)

        def sync() -> None:
            table = ref()
            if table is not None:
                hits.set_value(table.hits)
                misses.set_value(table.misses)

        registry.add_collector(sync)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def entries(self) -> "list[Tuple[Tuple[int, int], complex]]":
        """Snapshot of ``(bucket key, stored value)`` pairs for audits."""
        return [
            (key, value)
            for key, bucket in self._buckets.items()
            for value in bucket
        ]

    def clear(self) -> None:
        """Drop all stored values (the special seeds are re-inserted)."""
        self._buckets.clear()
        self.hits = 0
        self.misses = 0
        self._seed()

    def sweep(self, marked: "set[complex]") -> int:
        """Drop every stored value not in ``marked``; return how many.

        This is the sweep half of the governor's mark-and-sweep: ``marked``
        must contain every weight still referenced by a live diagram (node
        successor weights plus registered root-edge weights), because
        removing a live weight's representative would let a later lookup
        mint a *different* representative — silently breaking the exact
        ``==``/hash canonicity the rest of the package relies on.  The
        special seeds always survive.  Only safe between operations: weights
        held solely by in-flight intermediates are not marked.
        """
        before = len(self)
        survivors: Dict[Tuple[int, int], List[complex]] = {}
        for key, bucket in self._buckets.items():
            kept = [value for value in bucket if value in marked]
            if kept:
                survivors[key] = kept
        self._buckets = survivors
        self._seed()
        return before - len(self)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _key(self, value: complex) -> Tuple[int, int]:
        return (
            int(math.floor(value.real / self.tolerance)),
            int(math.floor(value.imag / self.tolerance)),
        )

    def _find(self, value: complex) -> "complex | None":
        key_r, key_i = self._key(value)
        best = None
        best_dist = math.inf
        for off_r, off_i in _NEIGHBOUR_OFFSETS:
            bucket = self._buckets.get((key_r + off_r, key_i + off_i))
            if not bucket:
                continue
            for stored in bucket:
                dist = max(
                    abs(stored.real - value.real), abs(stored.imag - value.imag)
                )
                if dist < self.tolerance and dist < best_dist:
                    best = stored
                    best_dist = dist
        return best

    def _insert(self, value: complex) -> None:
        self._buckets.setdefault(self._key(value), []).append(value)


def phase_of(value: complex) -> float:
    """Phase of ``value`` in the half-open interval ``[0, 2*pi)``.

    Used by the visualization layer's HLS color wheel; exposed here because
    normalization also needs a consistent phase convention.
    """
    angle = cmath.phase(value)
    if angle < 0:
        angle += 2.0 * math.pi
    if angle >= 2.0 * math.pi:
        angle = 0.0
    return angle
