"""Struct-of-arrays storage primitives for the pooled DD backend.

The object-based hot core allocates one heap object per node and per edge
and chases pointers through a dict-backed complex table.  Production DD
packages instead keep nodes in flat arrays and refer to successors and
weights by *integer index* (arXiv:2108.07027 Sec. "the node pool";
arXiv:1911.12691 for the table-based complex management).  This module
provides the three storage primitives the pooled backend is built from:

:class:`WeightPool`
    A :class:`~repro.dd.complex_table.ComplexTable` subclass that assigns
    every canonical representative a stable integer index.  Values are
    kept in a flat list (plus parallel ``array('d')`` component arrays)
    with a free-list, and an exact-value dict gives O(1) index lookup for
    values that repeat bit-identically — the overwhelmingly common case on
    the hot path, because products/sums of canonical values repeat exactly.
    The exact-first fast path is semantics-preserving: an exact match has
    Chebyshev distance 0, which is always the strict nearest representative
    the bucket search would have returned.

:class:`NodePool`
    Flat per-kind node storage: ``var``, successor node indices, successor
    weight indices and a monotonically increasing creation ``order`` are
    kept in parallel ``array`` objects, ``arity`` entries per node, with a
    free-list for slot reuse after a GC sweep.  ``order`` values are never
    reused, so they serve as stable node uids (creation-ordered, exactly
    like the object backend's global uid counter).

:class:`PooledUniqueTable`
    An open-addressed integer hash table keyed on
    ``(var, successor indices, weight indices)`` with linear probing.
    Deletion is tombstone-free: a GC sweep rebuilds the whole slot array
    from the surviving nodes (:meth:`PooledUniqueTable.rebuild`), so probe
    chains never degrade.
"""

from __future__ import annotations

import math
import weakref
from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE
from repro.obs.metrics import MetricsRegistry

__all__ = ["WeightPool", "NodePool", "PooledUniqueTable", "TERMINAL_INDEX"]

#: Successor index denoting the terminal node (it lives in no pool).
TERMINAL_INDEX = -1

#: ``var`` value marking a freed node-pool slot.
FREED_VAR = -2


class WeightPool(ComplexTable):
    """A complex table whose representatives carry stable integer indices.

    Index 0 is always the canonical zero and index 1 the canonical one
    (:data:`ZERO_INDEX` / :data:`ONE_INDEX`); the remaining seed values
    occupy the next few indices.  Seeds are permanent — a sweep never frees
    them.  All base-class entry points (``lookup``, ``sweep``, ``entries``,
    ``_insert``) remain functional and keep the index layer consistent, so
    code written against :class:`ComplexTable` (normalization, sanitizer,
    fault injection) works on a pool unchanged.
    """

    ZERO_INDEX = 0
    ONE_INDEX = 1

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        registry: Optional[MetricsRegistry] = None,
    ):
        # The index layer must exist before the base constructor runs
        # (it seeds the table through our _seed override).
        self._values: List[Optional[complex]] = []
        self._exact = {}
        self._re = array("d")
        self._im = array("d")
        self._free: List[int] = []
        # Bumped on every mutation of the representative set (mint, sweep,
        # clear).  ``lookup`` resolves a raw value to its *nearest* stored
        # representative, so its result is only a pure function of the
        # input while the generation stands still — caches of lookup
        # results must be invalidated whenever it moves.
        self.generation = 0
        super().__init__(tolerance, registry=registry)

    # ------------------------------------------------------------------
    # index layer
    # ------------------------------------------------------------------
    def _register_value(self, value: complex) -> int:
        """Assign ``value`` an index (reusing a freed slot when possible)."""
        self.generation += 1
        if self._free:
            index = self._free.pop()
            self._values[index] = value
            self._re[index] = value.real
            self._im[index] = value.imag
        else:
            index = len(self._values)
            self._values.append(value)
            self._re.append(value.real)
            self._im.append(value.imag)
        self._exact[value] = index
        return index

    def _seed(self) -> None:
        sqrt2_inv = 1.0 / math.sqrt(2.0)
        for special in (
            self.ZERO, self.ONE, -self.ONE, 1j, -1j,
            complex(sqrt2_inv, 0.0), complex(-sqrt2_inv, 0.0),
            complex(0.0, sqrt2_inv), complex(0.0, -sqrt2_inv),
        ):
            bucket = self._buckets.setdefault(self._key(special), [])
            if special not in bucket:
                bucket.append(special)
            if special not in self._exact:
                self._register_value(special)
        if not hasattr(self, "_seed_count"):
            self._seed_count = len(self._values)

    def _insert(self, value: complex) -> None:
        super()._insert(value)
        if value not in self._exact:
            self._register_value(value)

    def lookup(self, value: complex) -> complex:
        """Canonicalize ``value`` (exact-match fast path, then base search).

        A bit-identical hit on the exact dict short-circuits the bucket
        search; distance 0 is always the strict nearest representative, so
        the result is identical to the base class's.
        """
        index = self._exact.get(value)
        if index is not None:
            self.hits += 1
            return self._values[index]
        return super().lookup(value)

    def lookup_index(self, value: complex) -> int:
        """Canonicalize ``value`` and return its representative's *index*."""
        index = self._exact.get(value)
        if index is not None:
            self.hits += 1
            return index
        rep = super().lookup(value)
        return self._exact[rep]

    def lookup_many(self, values: Iterable[complex]) -> List[int]:
        """Batched canonicalization: one index per input value.

        Amortizes attribute lookups over a whole batch (used when building
        DDs from dense vectors/matrices and by the batched normalization
        path); exact-dict hits dominate because repeated amplitudes repeat
        bit-identically.
        """
        exact_get = self._exact.get
        out = []
        append = out.append
        hits = 0
        for value in values:
            index = exact_get(value)
            if index is None:
                rep = super().lookup(value)
                index = self._exact[rep]
            else:
                hits += 1
            append(index)
        self.hits += hits
        return out

    def value(self, index: int) -> complex:
        """The canonical value stored at ``index``.

        Freed slots answer NaN (never a canonical value) so audits of
        stale indices fail loudly instead of resurrecting old weights.
        """
        value = self._values[index]
        if value is None:
            return complex(float("nan"), float("nan"))
        return value

    def index_is_live(self, index: int) -> bool:
        return 0 <= index < len(self._values) and self._values[index] is not None

    @property
    def slot_count(self) -> int:
        """Allocated index slots, including freed ones (capacity metric)."""
        return len(self._values)

    def index_bytes(self) -> int:
        """Resident bytes of the index layer's flat arrays."""
        return (
            len(self._re) * self._re.itemsize
            + len(self._im) * self._im.itemsize
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all values and indices (seeds are re-registered).

        Invalidates every outstanding index; only callable when no pooled
        nodes reference the table (the engine clears node pools first).
        """
        self._values = []
        self._exact = {}
        self._re = array("d")
        self._im = array("d")
        self._free = []
        self.generation += 1
        super().clear()

    def sweep(self, marked: "set[complex]") -> int:
        """Value-level sweep (base API): frees the indices of swept values."""
        marked_indices = {
            index
            for value, index in self._exact.items()
            if value in marked
        }
        return self.sweep_indices(marked_indices)

    def sweep_indices(self, marked: "set[int]") -> int:
        """Free every index not in ``marked``; seeds always survive.

        Rebuilds the buckets and the exact dict from the survivors —
        tombstone-free, like the unique-table rebuild — and pushes freed
        slots onto the free-list for reuse.  Returns the number freed.
        """
        freed = 0
        self.generation += 1
        survivors: dict = {}
        for index, value in enumerate(self._values):
            if value is None:
                continue
            if index < self._seed_count or index in marked:
                survivors.setdefault(self._key(value), []).append(value)
            else:
                freed += 1
                del self._exact[value]
                self._values[index] = None
                self._re[index] = float("nan")
                self._im[index] = float("nan")
                self._free.append(index)
        self._buckets = survivors
        # Seeds are index-permanent, but a fault may have removed one from
        # the buckets; re-seeding restores bucket membership idempotently.
        self._seed()
        return freed


class NodePool:
    """Flat storage for one node kind (vector: arity 2, matrix: arity 4).

    Per node: ``var`` (level), ``arity`` successor node indices, ``arity``
    successor weight indices, and a creation-order stamp.  Freed slots are
    marked ``var == FREED_VAR`` and recycled through a free-list; ``order``
    stamps are handed out by the engine's shared counter and never reused,
    so they double as stable uids.
    """

    __slots__ = ("arity", "var", "succ", "wsucc", "order", "free_list")

    def __init__(self, arity: int):
        self.arity = arity
        self.var = array("i")
        self.succ = array("q")
        self.wsucc = array("q")
        self.order = array("q")
        self.free_list: List[int] = []

    def alloc(
        self,
        var: int,
        successors: Sequence[int],
        weights: Sequence[int],
        order: int,
    ) -> int:
        arity = self.arity
        if self.free_list:
            index = self.free_list.pop()
            self.var[index] = var
            base = index * arity
            for offset in range(arity):
                self.succ[base + offset] = successors[offset]
                self.wsucc[base + offset] = weights[offset]
            self.order[index] = order
        else:
            index = len(self.var)
            self.var.append(var)
            self.succ.extend(successors)
            self.wsucc.extend(weights)
            self.order.append(order)
        return index

    def free(self, index: int) -> None:
        self.var[index] = FREED_VAR
        self.free_list.append(index)

    def is_live(self, index: int) -> bool:
        return 0 <= index < len(self.var) and self.var[index] != FREED_VAR

    @property
    def slot_count(self) -> int:
        return len(self.var)

    @property
    def live_count(self) -> int:
        return len(self.var) - len(self.free_list)

    def live_indices(self) -> List[int]:
        freed = set(self.free_list)
        return [i for i in range(len(self.var)) if i not in freed]

    def edges_of(self, index: int) -> List[Tuple[int, int]]:
        base = index * self.arity
        return [
            (self.succ[base + k], self.wsucc[base + k])
            for k in range(self.arity)
        ]

    def array_bytes(self) -> int:
        return (
            len(self.var) * self.var.itemsize
            + len(self.succ) * self.succ.itemsize
            + len(self.wsucc) * self.wsucc.itemsize
            + len(self.order) * self.order.itemsize
        )


class PooledUniqueTable:
    """Open-addressed hash consing over a :class:`NodePool`.

    Slots hold node indices (or -1 for empty) in a power-of-two
    ``array('q')``; collisions are resolved by linear probing.  Keys are
    never stored — a probe compares the candidate node's pool fields
    directly, so the table costs 8 bytes per slot.  There are no
    tombstones: deletion happens only during a GC sweep, which rebuilds
    the slot array from the survivors (:meth:`rebuild`).
    """

    __slots__ = ("pool", "_slots", "_mask", "_count", "hits", "misses")

    _INITIAL_CAPACITY = 1 << 10

    def __init__(self, pool: NodePool):
        self.pool = pool
        self._slots = array("q", [-1]) * self._INITIAL_CAPACITY
        self._mask = self._INITIAL_CAPACITY - 1
        self._count = 0
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _hash(var: int, successors: Sequence[int], weights: Sequence[int]) -> int:
        # hash() of a flat tuple: C-speed mixing, stable within a process.
        return hash((var,) + tuple(successors) + tuple(weights))

    def find_slot(
        self, var: int, successors: Sequence[int], weights: Sequence[int]
    ) -> Tuple[int, int]:
        """Probe for ``(var, successors, weights)``.

        Returns ``(slot, node_index)`` — ``node_index`` is -1 when absent,
        with ``slot`` pointing at the insertion position.
        """
        pool = self.pool
        arity = pool.arity
        slots = self._slots
        mask = self._mask
        pvar, psucc, pwsucc = pool.var, pool.succ, pool.wsucc
        slot = self._hash(var, successors, weights) & mask
        while True:
            candidate = slots[slot]
            if candidate < 0:
                return slot, -1
            if pvar[candidate] == var:
                base = candidate * arity
                for k in range(arity):
                    if (
                        psucc[base + k] != successors[k]
                        or pwsucc[base + k] != weights[k]
                    ):
                        break
                else:
                    return slot, candidate
            slot = (slot + 1) & mask

    def insert_at(self, slot: int, node_index: int) -> None:
        """Fill the empty ``slot`` found by :meth:`find_slot`."""
        self._slots[slot] = node_index
        self._count += 1
        if self._count * 3 >= (self._mask + 1) * 2:
            self._grow()

    def _grow(self) -> None:
        self._resize((self._mask + 1) * 2)

    def _resize(self, capacity: int) -> None:
        live = [index for index in self._slots if index >= 0]
        self._slots = array("q", [-1]) * capacity
        self._mask = capacity - 1
        self._reinsert(live)

    def _reinsert(self, indices: Iterable[int]) -> None:
        pool = self.pool
        slots = self._slots
        mask = self._mask
        for index in indices:
            slot = self._hash(
                pool.var[index], *self._key_parts(index)
            ) & mask
            while slots[slot] >= 0:
                slot = (slot + 1) & mask
            slots[slot] = index

    def _key_parts(self, index: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        base = index * self.pool.arity
        end = base + self.pool.arity
        return tuple(self.pool.succ[base:end]), tuple(self.pool.wsucc[base:end])

    def rebuild(self, live_indices: Iterable[int]) -> None:
        """Tombstone-free deletion: re-hash only the surviving nodes.

        Capacity shrinks back towards the survivors' size (never below the
        initial capacity), so a large transient peak does not pin memory.
        """
        live = list(live_indices)
        capacity = self._INITIAL_CAPACITY
        while capacity * 2 < len(live) * 3:
            capacity *= 2
        self._slots = array("q", [-1]) * capacity
        self._mask = capacity - 1
        self._count = len(live)
        self._reinsert(live)

    def remove_index(self, node_index: int) -> bool:
        """Remove one node from the consing table (reorder retirement).

        Linear probing has no tombstones, so deletion re-inserts the rest
        of the probe cluster to keep every survivor reachable through its
        own chain.  Returns whether the index was present.
        """
        pool = self.pool
        base = node_index * pool.arity
        end = base + pool.arity
        slot, found = self.find_slot(
            pool.var[node_index],
            tuple(pool.succ[base:end]),
            tuple(pool.wsucc[base:end]),
        )
        if found != node_index:
            return False
        slots = self._slots
        mask = self._mask
        slots[slot] = -1
        probe = (slot + 1) & mask
        cluster = []
        while slots[probe] >= 0:
            cluster.append(slots[probe])
            slots[probe] = -1
            probe = (probe + 1) & mask
        self._count -= 1
        self._reinsert(cluster)
        return True

    def contains_index(self, node_index: int) -> bool:
        """Whether ``node_index`` is reachable through its own probe chain
        (probe-chain integrity check used by the sanitizer)."""
        pool = self.pool
        base = node_index * pool.arity
        end = base + pool.arity
        _slot, found = self.find_slot(
            pool.var[node_index],
            tuple(pool.succ[base:end]),
            tuple(pool.wsucc[base:end]),
        )
        return found == node_index

    @property
    def capacity(self) -> int:
        return self._mask + 1

    def __len__(self) -> int:
        return self._count

    def array_bytes(self) -> int:
        return len(self._slots) * self._slots.itemsize

    def clear(self) -> None:
        self._slots = array("q", [-1]) * self._INITIAL_CAPACITY
        self._mask = self._INITIAL_CAPACITY - 1
        self._count = 0
        self.hits = 0
        self.misses = 0

    def iter_indices(self) -> Iterable[int]:
        for index in self._slots:
            if index >= 0:
                yield index
