"""Memory governance for decision-diagram packages.

The paper's central claim is that decision diagrams stay *compact* — but the
tables around them do not.  The unique tables, the complex table and the
compute tables all grow monotonically with the work performed, so a
long-lived package (one worker process serving thousands of requests)
bloats even though every individual diagram is small.  Mature DD packages
treat this as a first-class engineering problem: bounded tables,
reference-counting garbage collection and periodic sweeps (the JKQ/MQT
package of [14]; arXiv:2108.07027 Sec. "garbage collection").

This module provides the Pythonic counterpart:

:class:`MemoryBudget`
    Declarative limits — node count, complex-table entries, estimated
    resident bytes — with a soft-pressure fraction below the hard limit.

:class:`ResourceGovernor`
    Watches one :class:`~repro.dd.package.DDPackage`'s tables, classifies
    the current :class:`PressureLevel` and runs tiered collections:

    * **SOFT** — shrink every compute table to half (dropping the oldest
      entries), which releases the strong references that pin otherwise
      dead nodes in the weak unique tables;
    * **HARD** — clear the compute tables entirely *and* mark-and-sweep
      the complex table: weights reachable from live nodes (and from
      reference-counted root edges) are marked, everything else is swept.

Reference counting is *assistive*, not authoritative: node liveness is
governed by ordinary Python references (the unique tables hold nodes
weakly), but the complex table cannot know which weights are still in use.
Holders of long-lived root edges — simulators, verification engines,
service sessions — register them via :meth:`DDPackage.incref` /
:meth:`DDPackage.decref` so a sweep never purges the canonical
representative of a live root weight (which would silently break
canonicity: two equal diagrams could stop comparing equal).  Registry
entries hold the node weakly, so a forgotten ``decref`` degrades into a
stale entry that self-cleans on the next collection instead of a leak.

Every governor action is observable: ``dd_gc_runs_total``,
``dd_gc_nodes_reclaimed_total``, ``dd_gc_complex_reclaimed_total``
counters, and ``dd_table_bytes`` / ``dd_pressure_level`` gauges.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "GcStats",
    "MemoryBudget",
    "PressureLevel",
    "ResourceGovernor",
    "NODE_BYTES_ESTIMATE",
    "COMPLEX_ENTRY_BYTES_ESTIMATE",
    "COMPUTE_ENTRY_BYTES_ESTIMATE",
]

#: Rough per-entry resident-size estimates (CPython 3.11, 64-bit): a node
#: object with its edge tuple plus its unique-table slot; a complex value
#: plus its bucket share; a compute-table key tuple plus the dict slot.
#: They only need to be the right order of magnitude — budgets are coarse
#: guardrails, not an allocator.
NODE_BYTES_ESTIMATE = 480
COMPLEX_ENTRY_BYTES_ESTIMATE = 160
COMPUTE_ENTRY_BYTES_ESTIMATE = 320


class PressureLevel(enum.IntEnum):
    """How close the package's tables are to their budget."""

    OK = 0
    SOFT = 1
    HARD = 2


@dataclass(frozen=True)
class MemoryBudget:
    """Resource limits for one :class:`~repro.dd.package.DDPackage`.

    ``None`` disables the corresponding limit.  ``soft_fraction`` is the
    utilization at which the governor starts shedding compute-table entries
    (SOFT tier); crossing 1.0 of any limit triggers the HARD tier.
    ``check_interval`` is the number of governed public operations between
    pressure checks, keeping the per-operation overhead to one counter
    increment.
    """

    max_nodes: Optional[int] = None
    max_complex_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    soft_fraction: float = 0.8
    check_interval: int = 64

    def __post_init__(self) -> None:
        for name in ("max_nodes", "max_complex_entries", "max_bytes"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ValueError("soft_fraction must be in (0, 1]")
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")

    @property
    def limited(self) -> bool:
        """Whether any limit is actually set."""
        return (
            self.max_nodes is not None
            or self.max_complex_entries is not None
            or self.max_bytes is not None
        )


@dataclass
class GcStats:
    """Result of one :meth:`ResourceGovernor.collect` run."""

    level: PressureLevel = PressureLevel.OK
    nodes_before: int = 0
    nodes_after: int = 0
    complex_before: int = 0
    complex_after: int = 0
    compute_entries_dropped: int = 0
    duration_seconds: float = 0.0

    @property
    def nodes_reclaimed(self) -> int:
        return max(0, self.nodes_before - self.nodes_after)

    @property
    def complex_reclaimed(self) -> int:
        return max(0, self.complex_before - self.complex_after)

    def as_dict(self) -> Dict[str, float]:
        return {
            "level": int(self.level),
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "nodes_reclaimed": self.nodes_reclaimed,
            "complex_before": self.complex_before,
            "complex_after": self.complex_after,
            "complex_reclaimed": self.complex_reclaimed,
            "compute_entries_dropped": self.compute_entries_dropped,
            "duration_seconds": self.duration_seconds,
        }


class ResourceGovernor:
    """Budget enforcement and garbage collection for one package."""

    def __init__(
        self,
        package,
        budget: MemoryBudget,
        registry: Optional[MetricsRegistry] = None,
        event_bus=None,
    ):
        # Weak: the package owns the governor, not vice versa — a strong
        # reference would form a cycle and defer package teardown to the
        # cyclic collector.
        self._package = weakref.ref(package)
        self.budget = budget
        # Root-edge reference counts: (node uid, weight) -> [weakref, count].
        # The node is held weakly so a forgotten decref cannot pin a diagram;
        # dead entries are dropped during the mark phase.
        self._roots: Dict[Tuple[int, complex], List] = {}
        self._ticks = 0
        # Plain-int statistics (mirrors the table pattern: hot path pays one
        # increment; a weakref collector copies into registry counters).
        self.runs = 0
        self.nodes_reclaimed_total = 0
        self.complex_reclaimed_total = 0
        self.compute_entries_dropped_total = 0
        self.last_stats: Optional[GcStats] = None
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._registry = registry
        #: Optional :class:`repro.obs.events.EventBus` receiving one
        #: ``dd.gc`` event per collection and a ``dd.pressure`` event per
        #: pressure-tier transition (the dashboard's GC/pressure feed).
        self.event_bus = event_bus
        self._last_published_pressure = int(PressureLevel.OK)
        if registry.enabled:
            self._register(registry)

    def _register(self, registry: MetricsRegistry) -> None:
        runs = registry.counter("dd_gc_runs_total")
        nodes = registry.counter("dd_gc_nodes_reclaimed_total")
        complexes = registry.counter("dd_gc_complex_reclaimed_total")
        dropped = registry.counter("dd_gc_compute_entries_dropped_total")
        table_bytes = registry.gauge("dd_table_bytes")
        pressure = registry.gauge("dd_pressure_level")
        ref = weakref.ref(self)

        def sync() -> None:
            governor = ref()
            if governor is None or governor._package() is None:
                return
            runs.set_value(governor.runs)
            nodes.set_value(governor.nodes_reclaimed_total)
            complexes.set_value(governor.complex_reclaimed_total)
            dropped.set_value(governor.compute_entries_dropped_total)
            table_bytes.set(governor.table_bytes())
            pressure.set(int(governor.pressure()))

        registry.add_collector(sync)

    @property
    def package(self):
        package = self._package()
        if package is None:
            raise ReferenceError("the governed DDPackage has been freed")
        return package

    # ------------------------------------------------------------------
    # reference counting (assistive, see module docstring)
    # ------------------------------------------------------------------
    def incref(self, edge) -> None:
        node = edge.node
        if node.is_terminal:
            return
        key = (node.uid, edge.weight)
        entry = self._roots.get(key)
        if entry is None:
            self._roots[key] = [weakref.ref(node), 1]
        else:
            entry[1] += 1

    def decref(self, edge) -> None:
        node = edge.node
        if node.is_terminal:
            return
        key = (node.uid, edge.weight)
        entry = self._roots.get(key)
        if entry is None:
            return  # tolerated: a stale/foreign edge must not raise
        entry[1] -= 1
        if entry[1] <= 0:
            del self._roots[key]

    @property
    def live_root_count(self) -> int:
        return sum(1 for ref, _count in self._roots.values() if ref() is not None)

    def remap_roots(self, translate) -> None:
        """Rebuild the root registry through an edge-translation function.

        Dynamic reordering replaces root nodes wholesale; the registered
        ``(uid, weight)`` keys would otherwise keep the *old* diagrams
        alive (and miss the new ones during mark/sweep).  ``translate``
        maps an old root edge to its current equivalent — typically
        :meth:`DDPackage._resolve`.
        """
        from repro.dd.edge import Edge

        remapped: Dict[Tuple[int, complex], List] = {}
        for key, (ref, count) in self._roots.items():
            node = ref()
            if node is None:
                continue
            edge = translate(Edge(node, key[1]))
            new_node = edge.node
            if new_node.is_terminal:
                continue
            new_key = (new_node.uid, edge.weight)
            entry = remapped.get(new_key)
            if entry is None:
                remapped[new_key] = [weakref.ref(new_node), count]
            else:
                entry[1] += count
        self._roots = remapped

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        package = self.package
        return len(package._vector_unique) + len(package._matrix_unique)

    def compute_entry_count(self) -> int:
        return sum(len(table) for table in self.package._compute_tables())

    def table_bytes(self) -> int:
        """Resident bytes of all tables.

        Pooled storage reports the *actual* byte size of its flat index
        arrays (node pools, unique-table slots, weight components); the
        value-level complex buckets and the compute tables remain coarse
        per-entry estimates, as does everything on the object backend.
        """
        package = self.package
        engine = getattr(package, "_pooled", None)
        if engine is not None:
            return (
                engine.table_bytes()
                + len(package.complex_table) * COMPLEX_ENTRY_BYTES_ESTIMATE
                + self.compute_entry_count() * COMPUTE_ENTRY_BYTES_ESTIMATE
            )
        return (
            self.node_count() * NODE_BYTES_ESTIMATE
            + len(package.complex_table) * COMPLEX_ENTRY_BYTES_ESTIMATE
            + self.compute_entry_count() * COMPUTE_ENTRY_BYTES_ESTIMATE
        )

    def utilization(self) -> float:
        """Highest current/limit ratio over the configured limits (0 if none)."""
        budget = self.budget
        ratios = []
        if budget.max_nodes is not None:
            ratios.append(self.node_count() / budget.max_nodes)
        if budget.max_complex_entries is not None:
            ratios.append(len(self.package.complex_table) / budget.max_complex_entries)
        if budget.max_bytes is not None:
            ratios.append(self.table_bytes() / budget.max_bytes)
        return max(ratios) if ratios else 0.0

    def pressure(self) -> PressureLevel:
        utilization = self.utilization()
        if utilization >= 1.0:
            return PressureLevel.HARD
        if utilization >= self.budget.soft_fraction:
            return PressureLevel.SOFT
        return PressureLevel.OK

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def should_collect(self) -> bool:
        """Cheap per-operation cadence check (one increment most calls)."""
        if not self.budget.limited:
            return False
        self._ticks += 1
        if self._ticks < self.budget.check_interval:
            return False
        self._ticks = 0
        return self.pressure() is not PressureLevel.OK

    def collect(
        self, level: Optional[PressureLevel] = None, force: bool = False
    ) -> GcStats:
        """Run one tiered collection; safe only between package operations.

        ``force`` runs the full HARD tier regardless of measured pressure
        (used by service workers between jobs).
        """
        start = perf_counter()
        if level is None:
            level = PressureLevel.HARD if force else self.pressure()
        if force and level is not PressureLevel.HARD:
            level = PressureLevel.HARD
        package = self.package
        stats = GcStats(
            level=level,
            nodes_before=self.node_count(),
            complex_before=len(package.complex_table),
        )
        dropped = 0
        if level in (PressureLevel.SOFT, PressureLevel.HARD):
            # Pressure-triggered reordering runs *before* any shedding: a
            # successful sift shrinks the diagrams themselves, which may
            # clear the pressure outright (and clears the compute tables
            # anyway as part of its cache invalidation).  Growth is bursty,
            # so a package can blow straight past the SOFT window between
            # two checks — hence the hook runs at HARD as well.
            package._pressure_reorder()
        if level is PressureLevel.SOFT:
            for table in package._compute_tables():
                dropped += table.shrink(0.5)
        elif level is PressureLevel.HARD:
            for table in package._compute_tables():
                dropped += len(table)
                table.clear()
            engine = getattr(package, "_pooled", None)
            if engine is not None:
                # Index-keyed caches are empty now, so the engine may free
                # and recycle pool slots: mark every Python-reachable view
                # and refcounted root, sweep the rest, rebuild the unique
                # tables tombstone-free, then sweep orphaned weight indices.
                engine.sweep(self._live_roots())
            else:
                # Dropping the compute tables releases the strong references
                # that pinned dead nodes; the weak unique tables shed them
                # immediately (CPython refcounting; diagrams are acyclic).
                package.complex_table.sweep(self._mark())
        stats.compute_entries_dropped = dropped
        stats.nodes_after = self.node_count()
        stats.complex_after = len(package.complex_table)
        stats.duration_seconds = perf_counter() - start
        self.runs += 1
        self.nodes_reclaimed_total += stats.nodes_reclaimed
        self.complex_reclaimed_total += stats.complex_reclaimed
        self.compute_entries_dropped_total += dropped
        self.last_stats = stats
        self._publish_collection(stats)
        # Re-verify structural invariants straight after the collection (a
        # no-op unless the package has sanitizing enabled): a sweep that
        # purged a live weight representative must surface here, at the GC
        # that caused it, not at some distant later operation.
        package._post_gc_sanitize()
        return stats

    def _publish_collection(self, stats: GcStats) -> None:
        """Push this collection (and any pressure transition) onto the bus."""
        bus = self.event_bus
        if bus is None:
            return
        bus.publish("dd.gc", dict(stats.as_dict(), runs=self.runs))
        self.publish_pressure()

    def publish_pressure(self) -> None:
        """Publish a ``dd.pressure`` event if the tier changed since last time."""
        bus = self.event_bus
        if bus is None:
            return
        level = int(self.pressure())
        if level != self._last_published_pressure:
            bus.publish("dd.pressure", {
                "level": level,
                "previous": self._last_published_pressure,
                "table_bytes": self.table_bytes(),
                "nodes": self.node_count(),
            })
            self._last_published_pressure = level

    def _mark(self) -> set:
        """Weights that must survive a complex-table sweep.

        Successor weights of every live node plus the weights of
        reference-counted root edges (root weights live on edges, not in
        any node, so without refcounts a sweep would orphan them).
        """
        marked = set()
        package = self.package
        for table in (package._vector_unique, package._matrix_unique):
            for node in table.live_nodes():
                for edge in node.edges:
                    marked.add(edge.weight)
        for _node, weight in self._live_roots():
            marked.add(weight)
        return marked

    def _live_roots(self) -> List[Tuple[object, complex]]:
        """Live ``(node, weight)`` root pairs; purges dead registry entries."""
        roots = []
        dead = []
        for key, (ref, _count) in self._roots.items():
            node = ref()
            if node is None:
                dead.append(key)
            else:
                roots.append((node, key[1]))
        for key in dead:
            del self._roots[key]
        return roots

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Snapshot for ``DDPackage.stats()`` / ``/healthz``."""
        return {
            "pressure": int(self.pressure()),
            "utilization": round(self.utilization(), 4),
            "nodes": self.node_count(),
            "complex_entries": len(self.package.complex_table),
            "compute_entries": self.compute_entry_count(),
            "table_bytes": self.table_bytes(),
            "live_roots": self.live_root_count,
            "gc_runs": self.runs,
            "gc_nodes_reclaimed": self.nodes_reclaimed_total,
            "gc_complex_reclaimed": self.complex_reclaimed_total,
        }
