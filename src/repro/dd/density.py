"""Density matrices on decision diagrams — the exact treatment of
non-unitary operations.

Paper Sec. IV-B notes that a reset "maps pure states to mixed states and
can thus in general not be represented by the same kind of decision diagram
used for representing state vectors"; the tool therefore handles resets
probabilistically.  This module provides the exact alternative: a density
matrix is just a ``2^n x 2^n`` Hermitian matrix, so it fits the *matrix*
decision diagrams the package already has.  On top of that representation:

* ``outer_product`` builds ``|psi><phi|`` from two vector DDs;
* ``trace`` / ``partial_trace`` contract diagonal blocks recursively;
* ``apply_unitary`` evolves ``rho -> U rho U^t``;
* ``measure_probabilities`` / ``collapse`` implement projective
  measurement, and ``reset`` applies the *exact* reset channel
  ``rho -> P0 rho P0 + X P1 rho P1 X`` — deterministically, with no
  dialog or random branch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple

import numpy as np

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ONE_EDGE, ZERO_EDGE
from repro.dd.node import Node
from repro.dd.package import DDPackage
from repro.errors import DDError, InvalidStateError

_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_P0 = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
_P1 = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def outer_product(package: DDPackage, ket: Edge, bra: Edge) -> Edge:
    """The matrix DD of ``|ket><bra|`` from two vector DDs."""
    if ket.is_zero or bra.is_zero:
        return ZERO_EDGE
    factor = package.complex_table.lookup(ket.weight * bra.weight.conjugate())
    result = _outer_nodes(package, ket.node, bra.node, {})
    return result.scaled(factor, package.complex_table)


def _outer_nodes(
    package: DDPackage, ket: Node, bra: Node, cache: Dict[Tuple[Node, Node], Edge]
) -> Edge:
    if ket.is_terminal and bra.is_terminal:
        return ONE_EDGE
    if ket.var != bra.var:
        raise DDError("outer product requires equally-sized vectors")
    key = (ket, bra)
    cached = cache.get(key)
    if cached is not None:
        return cached
    children = []
    for i in (0, 1):
        for j in (0, 1):
            k_edge = ket.edges[i]
            b_edge = bra.edges[j]
            if k_edge.is_zero or b_edge.is_zero:
                children.append(ZERO_EDGE)
                continue
            sub = _outer_nodes(package, k_edge.node, b_edge.node, cache)
            weight = package.complex_table.lookup(
                k_edge.weight * b_edge.weight.conjugate()
            )
            children.append(sub.scaled(weight, package.complex_table))
    result = package.make_matrix_node(ket.var, children)
    cache[key] = result
    return result


def density_from_state(package: DDPackage, state: Edge) -> Edge:
    """The pure-state density matrix ``|state><state|``."""
    return outer_product(package, state, state)


def density_from_statevector(package: DDPackage, vector) -> Edge:
    """Density matrix of a dense state vector."""
    return density_from_state(package, package.from_state_vector(vector))


def maximally_mixed(package: DDPackage, num_qubits: int) -> Edge:
    """The maximally mixed state ``I / 2^n``."""
    identity = package.identity(num_qubits)
    factor = package.complex_table.lookup(1.0 / (1 << num_qubits))
    return identity.scaled(factor, package.complex_table)


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------
def trace(package: DDPackage, rho: Edge) -> complex:
    """The full trace of a matrix DD."""
    return _trace_edge(package, rho, {})


def _trace_edge(package: DDPackage, edge: Edge, cache: Dict[Node, complex]) -> complex:
    if edge.is_zero:
        return ComplexTable.ZERO
    if edge.node.is_terminal:
        return edge.weight
    node_trace = cache.get(edge.node)
    if node_trace is None:
        node_trace = _trace_edge(package, edge.node.edges[0], cache) + _trace_edge(
            package, edge.node.edges[3], cache
        )
        cache[edge.node] = node_trace
    return edge.weight * node_trace


def partial_trace(
    package: DDPackage, rho: Edge, traced_qubits: Sequence[int]
) -> Edge:
    """Trace out ``traced_qubits``; the kept qubits are re-indexed densely
    (order preserved).  Tracing out everything returns a scalar edge."""
    if rho.is_zero:
        return ZERO_EDGE
    num_qubits = package.num_qubits(rho)
    traced = frozenset(int(q) for q in traced_qubits)
    for qubit in traced:
        if not 0 <= qubit < num_qubits:
            raise DDError(f"qubit {qubit} out of range for {num_qubits} qubits")
    cache: Dict[Node, Edge] = {}
    result = _pt_node(package, rho.node, traced, cache)
    return result.scaled(rho.weight, package.complex_table)


def _pt_node(
    package: DDPackage, node: Node, traced: FrozenSet[int], cache: Dict[Node, Edge]
) -> Edge:
    if node.is_terminal:
        return ONE_EDGE
    cached = cache.get(node)
    if cached is not None:
        return cached
    if node.var in traced:
        result = package.add(
            _pt_edge(package, node.edges[0], traced, cache),
            _pt_edge(package, node.edges[3], traced, cache),
        )
    else:
        new_var = sum(1 for level in range(node.var) if level not in traced)
        children = [
            _pt_edge(package, child, traced, cache) for child in node.edges
        ]
        result = package.make_matrix_node(new_var, children)
    cache[node] = result
    return result


def _pt_edge(
    package: DDPackage, edge: Edge, traced: FrozenSet[int], cache: Dict[Node, Edge]
) -> Edge:
    if edge.is_zero:
        return ZERO_EDGE
    sub = _pt_node(package, edge.node, traced, cache)
    return sub.scaled(edge.weight, package.complex_table)


def purity(package: DDPackage, rho: Edge) -> float:
    """``Tr(rho^2)``: 1 for pure states, ``1/2^n`` for maximally mixed."""
    squared = package.multiply(rho, rho)
    return trace(package, squared).real


# ----------------------------------------------------------------------
# evolution and measurement
# ----------------------------------------------------------------------
def apply_unitary(package: DDPackage, rho: Edge, unitary: Edge) -> Edge:
    """``rho -> U rho U^t``."""
    return package.multiply(package.multiply(unitary, rho), package.adjoint(unitary))


def measure_probabilities(
    package: DDPackage, rho: Edge, qubit: int
) -> Tuple[float, float]:
    """``(Tr(P0 rho), Tr(P1 rho))``, normalized by ``Tr(rho)``."""
    num_qubits = package.num_qubits(rho)
    total = trace(package, rho).real
    if total <= 0.0:
        raise InvalidStateError("density matrix has non-positive trace")
    projector = package.single_qubit_gate(num_qubits, _P1, qubit)
    p1 = trace(package, package.multiply(projector, rho)).real / total
    p1 = min(max(p1, 0.0), 1.0)
    return 1.0 - p1, p1


def collapse(
    package: DDPackage, rho: Edge, qubit: int, outcome: int
) -> Tuple[float, Edge]:
    """Projective collapse: returns ``(probability, P rho P / p)``."""
    if outcome not in (0, 1):
        raise DDError(f"measurement outcome must be 0 or 1, got {outcome}")
    probabilities = measure_probabilities(package, rho, qubit)
    probability = probabilities[outcome]
    if probability <= 0.0:
        raise InvalidStateError(
            f"outcome {outcome} on qubit {qubit} has probability zero"
        )
    num_qubits = package.num_qubits(rho)
    projector = package.single_qubit_gate(
        num_qubits, _P0 if outcome == 0 else _P1, qubit
    )
    projected = package.multiply(package.multiply(projector, rho), projector)
    scale = package.complex_table.lookup(projected.weight / probability)
    return probability, Edge(projected.node, scale)


def reset(package: DDPackage, rho: Edge, qubit: int) -> Edge:
    """The exact reset channel: ``P0 rho P0 + X P1 rho P1 X``.

    Unlike the probabilistic reset of the vector simulator (paper
    Sec. IV-B), this is deterministic and generally produces a mixed state.
    """
    num_qubits = package.num_qubits(rho)
    p0_dd = package.single_qubit_gate(num_qubits, _P0, qubit)
    p1_dd = package.single_qubit_gate(num_qubits, _P1, qubit)
    x_dd = package.single_qubit_gate(num_qubits, _X, qubit)
    keep = package.multiply(package.multiply(p0_dd, rho), p0_dd)
    flip = package.multiply(
        x_dd, package.multiply(package.multiply(p1_dd, rho), package.multiply(p1_dd, x_dd))
    )
    return package.add(keep, flip)


def fidelity_with_state(package: DDPackage, rho: Edge, state: Edge) -> float:
    """``<state| rho |state>`` for a pure reference state."""
    image = package.multiply(rho, state)
    return package.inner_product(state, image).real
