"""Approximation of state DDs by pruning negligible branches.

When a decision diagram grows too large, accuracy can be traded for size:
branches whose total probability mass is below a threshold are replaced by
zero stubs and the state is renormalized.  The sampling-oriented L2
normalization (paper footnote 3) makes the mass of a branch available
locally — it is the squared product of the edge weights on the path — so
pruning is a single recursive pass.

This mirrors the approximation techniques of the DD simulation literature
(e.g. Zulehner/Wille, "Advanced simulation of quantum computations",
TCAD 2019) and quantifies the paper's "strengths and limits" theme: a
little fidelity buys a lot of nodes on noisy-structured states, and almost
nothing on maximally random ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dd.edge import Edge, ZERO_EDGE
from repro.dd.normalization import NormalizationScheme
from repro.dd.package import DDPackage
from repro.errors import DDError, InvalidStateError


@dataclass(frozen=True)
class ApproximationResult:
    """Outcome of a pruning pass."""

    state: Edge
    fidelity: float
    nodes_before: int
    nodes_after: int
    pruned_mass: float

    @property
    def compression(self) -> float:
        """Node-count ratio before/after (>= 1)."""
        return self.nodes_before / max(self.nodes_after, 1)


def prune_small_branches(
    package: DDPackage,
    state: Edge,
    threshold: float,
) -> ApproximationResult:
    """Drop every branch whose probability mass is below ``threshold``.

    ``threshold`` is an absolute probability (e.g. ``1e-4``): a branch is
    removed if the total probability of all basis states below it is less
    than the threshold.  The result is renormalized; its fidelity with the
    original state is reported exactly.

    Requires the L2 normalization scheme (branch mass must be readable off
    the edge weights).
    """
    if package.vector_scheme is not NormalizationScheme.L2:
        raise DDError("pruning requires the L2 normalization scheme")
    if not 0.0 <= threshold < 1.0:
        raise DDError(f"threshold {threshold} outside [0, 1)")
    if state.is_zero:
        raise InvalidStateError("cannot prune the zero vector")
    nodes_before = package.node_count(state)
    if threshold == 0.0:
        return ApproximationResult(state, 1.0, nodes_before, nodes_before, 0.0)

    def rebuild(edge: Edge, mass: float) -> Edge:
        """``mass`` is the probability of reaching ``edge`` times the
        squared magnitude of its weight."""
        if edge.is_zero or mass < threshold:
            return ZERO_EDGE
        if edge.node.is_terminal:
            return edge
        zero_child, one_child = edge.node.edges
        new_zero = rebuild(zero_child, mass * abs(zero_child.weight) ** 2)
        new_one = rebuild(one_child, mass * abs(one_child.weight) ** 2)
        rebuilt = package.make_vector_node(edge.node.var, (new_zero, new_one))
        return rebuilt.scaled(edge.weight, package.complex_table)

    # The root mass is |w_root|^2 (1 for normalized states).
    pruned = rebuild(state, abs(state.weight) ** 2)
    if pruned.is_zero:
        raise InvalidStateError(
            f"threshold {threshold} pruned the entire state"
        )
    kept_mass = package.norm_squared(pruned)
    # Renormalize the root weight so the approximation is a valid state.
    scale = package.complex_table.lookup(pruned.weight / kept_mass**0.5)
    normalized = Edge(pruned.node, scale)
    fidelity = package.fidelity(state, normalized)
    return ApproximationResult(
        state=normalized,
        fidelity=fidelity,
        nodes_before=nodes_before,
        nodes_after=package.node_count(normalized),
        pruned_mass=max(0.0, 1.0 - kept_mass),
    )


def prune_to_size(
    package: DDPackage,
    state: Edge,
    max_nodes: int,
    initial_threshold: float = 1e-8,
    growth: float = 4.0,
    max_rounds: int = 24,
) -> ApproximationResult:
    """Increase the pruning threshold until the DD fits ``max_nodes``.

    Returns the first (least destructive) approximation meeting the size
    budget; raises if even aggressive pruning cannot reach it.
    """
    if max_nodes < 1:
        raise DDError("max_nodes must be positive")
    best: Optional[ApproximationResult] = None
    threshold = initial_threshold
    for _ in range(max_rounds):
        result = prune_small_branches(package, state, min(threshold, 0.999))
        best = result
        if result.nodes_after <= max_nodes:
            return result
        threshold *= growth
    raise InvalidStateError(
        f"could not prune below {max_nodes} nodes "
        f"(reached {best.nodes_after if best else '?'})"
    )
