"""Decision-diagram package for quantum computing.

This subpackage re-implements, in pure Python, the decision-diagram machinery
the paper builds on (Zulehner/Hillmich/Wille, "How to efficiently handle
complex values? Implementing decision diagrams for quantum computing",
ICCAD 2019): a complex-number table for canonical edge weights, hash-consed
vector and matrix nodes, compute tables, normalization schemes, and the
arithmetic needed for simulation and verification (addition, matrix-vector
and matrix-matrix multiplication, tensor products, adjoints) together with
measurement, sampling and reset.

The central entry point is :class:`repro.dd.DDPackage`.
"""

from repro.dd.apply import (
    apply_controlled,
    apply_single_qubit,
    apply_swap,
)
from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge
from repro.dd.governance import GcStats, MemoryBudget, PressureLevel, ResourceGovernor
from repro.dd.node import MatrixNode, Node, TERMINAL, VectorNode
from repro.dd.normalization import NormalizationScheme
from repro.dd.expectation import expectation_hamiltonian, expectation_pauli, pauli_string_dd
from repro.dd.package import DDPackage
from repro.dd.pool import NodePool, PooledUniqueTable, WeightPool
from repro.dd.pooled import PooledEngine, PooledMatrixNode, PooledVectorNode

__all__ = [
    "ComplexTable",
    "DDPackage",
    "NodePool",
    "PooledEngine",
    "PooledMatrixNode",
    "PooledUniqueTable",
    "PooledVectorNode",
    "WeightPool",
    "GcStats",
    "MemoryBudget",
    "PressureLevel",
    "ResourceGovernor",
    "apply_controlled",
    "apply_single_qubit",
    "apply_swap",
    "Edge",
    "MatrixNode",
    "Node",
    "NormalizationScheme",
    "TERMINAL",
    "expectation_hamiltonian",
    "expectation_pauli",
    "pauli_string_dd",
    "VectorNode",
]
