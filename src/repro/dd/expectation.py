"""Expectation values of Pauli observables on decision diagrams.

Computes ``<psi| P |psi>`` for Pauli strings ``P`` (e.g. ``"XZIY"``,
big-endian: first character acts on the most-significant qubit) and for
weighted sums of them (a Hamiltonian).  The observable is built as a
matrix DD via the same tensor-chain construction used for gates, so the
cost is one matrix-vector product and one inner product per string.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple, Union

import numpy as np

from repro.dd.edge import Edge
from repro.dd.package import DDPackage
from repro.errors import DDError

_PAULIS: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.diag([1.0, -1.0]).astype(complex),
}


def pauli_string_dd(package: DDPackage, pauli: str) -> Edge:
    """Matrix DD of a Pauli string (big-endian, first char = top qubit)."""
    pauli = pauli.upper()
    if not pauli or any(c not in _PAULIS for c in pauli):
        raise DDError(
            f"invalid Pauli string {pauli!r}; use characters from I, X, Y, Z"
        )
    num_qubits = len(pauli)
    factors = {
        num_qubits - 1 - position: _PAULIS[character]
        for position, character in enumerate(pauli)
        if character != "I"
    }
    return package._chain(num_qubits, factors)


def expectation_pauli(package: DDPackage, state: Edge, pauli: str) -> float:
    """``<state| P |state>`` for one Pauli string (always real)."""
    num_qubits = package.num_qubits(state)
    if len(pauli) != num_qubits:
        raise DDError(
            f"Pauli string length {len(pauli)} does not match "
            f"{num_qubits} qubits"
        )
    observable = pauli_string_dd(package, pauli)
    image = package.multiply(observable, state)
    return package.inner_product(state, image).real


def expectation_hamiltonian(
    package: DDPackage,
    state: Edge,
    terms: Union[Dict[str, float], Iterable[Tuple[str, float]]],
) -> float:
    """``<state| H |state>`` for ``H = sum_k c_k P_k``.

    ``terms`` maps Pauli strings to real coefficients (dict or pairs).
    """
    if isinstance(terms, dict):
        items: Sequence[Tuple[str, float]] = list(terms.items())
    else:
        items = list(terms)
    if not items:
        raise DDError("the Hamiltonian needs at least one term")
    return sum(
        float(coefficient) * expectation_pauli(package, state, pauli)
        for pauli, coefficient in items
    )
