"""Dynamic variable reordering for decision diagrams.

Decision diagrams are canonical — and compact — only *relative to a
variable order* (paper Sec. III-C); a bad order costs up to ``2^(n/2)``
nodes for states a good order represents linearly.  This module closes
the engine's last static assumption (ROADMAP item #4): the level-to-qubit
mapping becomes dynamic, optimized by *sifting* (Rudell 1993) built from
adjacent-level swap primitives.

Because package edges are immutable named tuples hash-consed in the
unique tables, swaps are implemented as *rebuilds* rather than in-place
successor surgery: swapping levels ``(l, l+1)`` rebuilds every live root
through a memoized recursion that re-brackets the two-level window

    top(l+1) -> children c_k -> grandchildren g[k][m]

into

    top'(l+1) -> inner_m(l) -> g[k][m]

(the entry at path ``(k, m)`` becomes the entry at path ``(m, k)``).
Nodes strictly below the window are shared unchanged; nodes above are
rebuilt with translated children.  Everything goes back through the
normalizing constructors, so the result is canonical under the new order
by construction — and with identity skipping enabled, the reduction rule
re-fires automatically on every rebuilt matrix node.

The package keeps a remap (old root node -> new edge) so edges handed
out before a reorder keep working; every public ``DDPackage`` entry
point funnels operands through it (``DDPackage._resolve``).

Works identically over both storage backends: the recursion only uses
``node.edges`` / ``node.var`` and the package's normalizing
constructors, which the pooled backend exposes through its flyweight
node views.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ZERO_EDGE
from repro.dd.node import MatrixNode
from repro.errors import DDError

__all__ = ["swap_adjacent", "sift"]


def _make_node(package, is_matrix: bool, var: int, children) -> Edge:
    if is_matrix:
        return package.make_matrix_node(var, children)
    return package.make_vector_node(var, children)


def _swap_window(package, level: int, node) -> Edge:
    """Re-bracket one node whose variable sits inside the swap window.

    ``node.var`` is ``level + 1`` (the usual case) or ``level`` (identity
    skipping only: the path skips ``level + 1``, so the top of the window
    is a virtual identity).
    """
    table = package.complex_table
    is_matrix = isinstance(node, MatrixNode)
    arity = 4 if is_matrix else 2
    if node.var == level + 1:
        tops = node.edges
    else:
        if not (is_matrix and package.identity_skipping):
            raise DDError(
                f"cannot swap levels ({level}, {level + 1}): a root spans "
                f"only {node.var + 1} levels (mixed-span roots are not "
                "supported)"
            )
        unit = Edge(node, ComplexTable.ONE)
        tops = (unit, ZERO_EDGE, ZERO_EDGE, unit)
    rows: List[Tuple[Edge, ...]] = []
    for child in tops:
        if child.is_zero:
            rows.append((ZERO_EDGE,) * arity)
            continue
        cnode = child.node
        if cnode.is_terminal or cnode.var < level:
            if not (is_matrix and package.identity_skipping):
                raise DDError(
                    f"level {level} is missing below a level-{level + 1} "
                    "node (non-canonical diagram)"
                )
            # The child skips the lower window level: virtually diagonal.
            row = [ZERO_EDGE] * arity
            row[0] = child
            row[arity - 1] = child
            rows.append(tuple(row))
        else:
            rows.append(
                tuple(
                    ZERO_EDGE if gc.is_zero else gc.scaled(child.weight, table)
                    for gc in cnode.edges
                )
            )
    inner = tuple(
        _make_node(
            package, is_matrix, level, tuple(rows[k][m] for k in range(arity))
        )
        for m in range(arity)
    )
    return _make_node(package, is_matrix, level + 1, inner)


def _swap_edge(package, level: int, edge: Edge, memo: Dict) -> Edge:
    if edge.is_zero:
        return edge
    node = edge.node
    if node.is_terminal or node.var < level:
        # Entirely below the window (or, with identity skipping, an
        # identity across both window levels): shared unchanged.
        return edge
    res = memo.get(node)
    if res is None:
        if node.var > level + 1:
            children = tuple(
                _swap_edge(package, level, child, memo) for child in node.edges
            )
            res = _make_node(
                package, isinstance(node, MatrixNode), node.var, children
            )
        else:
            res = _swap_window(package, level, node)
        memo[node] = res
    if res.is_zero:
        return ZERO_EDGE
    return res.scaled(edge.weight, package.complex_table)


def _swap_roots(package, level: int, edges: List[Edge]) -> List[Edge]:
    """Swap levels ``(level, level + 1)`` under every root in ``edges``.

    Rebuilds the roots, swaps the package's order-map entries and bumps
    the swap counter.  Returns the translated root edges.
    """
    if level < 0:
        raise DDError("swap levels must be non-negative")
    memo: Dict = {}
    out = [_swap_edge(package, level, edge, memo) for edge in edges]
    package._ensure_order(level + 2)
    order = package._order
    order[level], order[level + 1] = order[level + 1], order[level]
    package._refresh_order_identity()
    package._reorder_swaps += 1
    return out


def _live_root_nodes(package) -> List:
    """Deduplicated non-terminal nodes registered as governor roots."""
    nodes = []
    seen = set()
    for node, _weight in package.governor._live_roots():
        if node.is_terminal or id(node) in seen:
            continue
        seen.add(id(node))
        nodes.append(node)
    return nodes


def _reachable_count(edges: List[Edge]) -> int:
    """Non-terminal nodes reachable from all roots together (shared)."""
    seen = set()
    stack = [edge.node for edge in edges if not edge.is_zero]
    while stack:
        node = stack.pop()
        if node.is_terminal or node in seen:
            continue
        seen.add(node)
        for child in node.edges:
            if not child.is_zero:
                stack.append(child.node)
    return len(seen)


def _level_sizes(edges: List[Edge]) -> Dict[int, int]:
    sizes: Dict[int, int] = {}
    seen = set()
    stack = [edge.node for edge in edges if not edge.is_zero]
    while stack:
        node = stack.pop()
        if node.is_terminal or node in seen:
            continue
        seen.add(node)
        sizes[node.var] = sizes.get(node.var, 0) + 1
        for child in node.edges:
            if not child.is_zero:
                stack.append(child.node)
    return sizes


def _finish(package, root_nodes, finals: List[Edge]) -> None:
    """Install the root translation map and rebuild the governor roots."""
    mapping = {}
    for orig, final in zip(root_nodes, finals):
        if final.node is orig and final.weight == ComplexTable.ONE:
            continue
        mapping[orig] = final
    package._apply_reorder_remap(mapping)


def swap_adjacent(package, level: int) -> None:
    """Swap the variables at ``level`` and ``level + 1`` for all live roots.

    The primitive underneath :func:`sift`, exposed for tests and manual
    experiments.  Statevector-preserving: only the level-to-qubit map and
    the diagram structure change, never the represented amplitudes.
    """
    root_nodes = _live_root_nodes(package)
    # Retire the old roots from the unique tables before rebuilding: the
    # rebuild (and every later operation) must cons *fresh* nodes, never
    # resurrect a stale one, or the remap would alias two meanings onto a
    # single node object and mis-translate current edges.
    package._retire_stale_roots(
        [node for node in root_nodes if node.var >= level]
    )
    edges = [Edge(node, ComplexTable.ONE) for node in root_nodes]
    finals = _swap_roots(package, level, edges)
    _finish(package, root_nodes, finals)
    cache = getattr(package, "_gate_dd_cache", None)
    if cache:
        cache.clear()


def sift(package, max_growth: float = 2.0) -> Dict:
    """Sifting: move every variable through all levels via adjacent swaps
    and settle it where the total live diagram is smallest.

    Variables are processed in decreasing level-population order.  Ties
    keep a variable at its original position, which makes sifting
    idempotent at a local minimum.  ``max_growth`` aborts a sweep
    direction once the diagram exceeds that multiple of the best size
    seen for the current variable.
    """
    root_nodes = _live_root_nodes(package)
    current = [Edge(node, ComplexTable.ONE) for node in root_nodes]
    before = _reachable_count(current)
    summary = {
        "strategy": "sifting",
        "swaps": 0,
        "nodes_before": before,
        "nodes_after": before,
        "order": package.qubit_order,
    }
    if not current:
        return summary
    n = max(edge.node.var for edge in current) + 1
    if n < 2:
        return summary
    package._ensure_order(n)
    swaps_before = package._reorder_swaps
    # See swap_adjacent: the old roots become the remap's domain, so they
    # must leave the unique tables before the first swap conses anything.
    package._retire_stale_roots(root_nodes)

    def move(swap_level: int) -> None:
        current[:] = _swap_roots(package, swap_level, current)

    sizes = _level_sizes(current)
    by_population = sorted(range(n), key=lambda lvl: (-sizes.get(lvl, 0), lvl))
    qubits = [package.qubit_at(lvl) for lvl in by_population]
    for qubit in qubits:
        pos = package.level_of(qubit)
        best_pos = pos
        best_count = _reachable_count(current)
        # Sweep down to level 0 ...
        while pos > 0:
            move(pos - 1)
            pos -= 1
            count = _reachable_count(current)
            if count < best_count:
                best_count, best_pos = count, pos
            if count > max_growth * best_count:
                break
        # ... then up to the top ...
        while pos < n - 1:
            move(pos)
            pos += 1
            count = _reachable_count(current)
            if count < best_count:
                best_count, best_pos = count, pos
            if count > max_growth * best_count:
                break
        # ... and settle at the best position seen.
        while pos > best_pos:
            move(pos - 1)
            pos -= 1
        while pos < best_pos:
            move(pos)
            pos += 1
    _finish(package, root_nodes, current)
    summary["swaps"] = package._reorder_swaps - swaps_before
    summary["nodes_after"] = _reachable_count(current)
    summary["order"] = package.qubit_order
    return summary
