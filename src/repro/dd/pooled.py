"""The pooled (index-based) DD engine behind :class:`~repro.dd.package.DDPackage`.

The engine keeps every node in a :class:`~repro.dd.pool.NodePool` and every
edge weight in a :class:`~repro.dd.pool.WeightPool`; the hot recursions
(addition, multiplication, tensor products, the direct apply kernels) pass
``(node_index, weight_index)`` integer pairs and never allocate node or edge
objects.  Each operation mirrors its object-backend counterpart *line by
line* — same arithmetic, same operand ordering, same complex-table lookup
sequence — so both backends produce byte-for-byte identical canonical
weights and isomorphic diagrams (the differential suite's contract).

At the package boundary the engine hands out lightweight *views*
(:class:`PooledVectorNode` / :class:`PooledMatrixNode`): real
``VectorNode``/``MatrixNode`` subclasses whose ``edges`` tuple is
materialized lazily from the pool arrays.  Views keep ``isinstance`` checks,
serialization, visualization and the sanitizer working unchanged, and they
double as GC roots: a diagram is live exactly while some view of it is
reachable from Python (mirroring the object backend's weak-table semantics,
where ordinary references govern liveness).

Index invariants (enforced by the sanitizer's ``pool-*`` checks):

* every live node's successor indices point at live slots (or the terminal),
* every live node's weight indices point at live weight-pool entries,
* the free-list holds exactly the freed slots, each once,
* every live node is reachable through its own unique-table probe chain.

All index-keyed memoization (the shared compute tables, the interned gate
ids) is cleared *before* a sweep frees any index — a stale index key would
otherwise alias a recycled slot.
"""

from __future__ import annotations

import cmath
import itertools
import math
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ZERO_EDGE
from repro.dd.node import MatrixNode, Node, TERMINAL, VectorNode
from repro.dd.normalization import NormalizationScheme, normalize
from repro.dd.pool import (
    FREED_VAR,
    NodePool,
    PooledUniqueTable,
    TERMINAL_INDEX,
    WeightPool,
)
from repro.errors import DDError, DimensionMismatchError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "PooledEngine",
    "PooledVectorNode",
    "PooledMatrixNode",
    "PooledUniqueAdapter",
    "PooledApplyKernel",
]

#: Index-pair edges for the two special shapes.
ZERO_E = (TERMINAL_INDEX, WeightPool.ZERO_INDEX)
ONE_E = (TERMINAL_INDEX, WeightPool.ONE_INDEX)

VECTOR, MATRIX = 0, 1


# ----------------------------------------------------------------------
# views
# ----------------------------------------------------------------------
class _PooledViewMixin:
    """Shared plumbing for pooled node views.

    Views bypass ``Node.__init__``: ``var``/``uid`` are copied from the pool
    (the uid is the pool's creation-order stamp — stable across view
    re-materialization, unique per allocation) and ``edges`` is a property
    that builds the successor tuple from the pool arrays on demand.  The
    ``edges`` *setter* stores an override used by fault injection to model
    post-consing mutation; the sanitizer compares the override against the
    pool-derived signature, exactly as the object backend compares a mutated
    node against its stored table key.
    """

    __slots__ = ()

    def _init_view(self, engine: "PooledEngine", index: int) -> None:
        pool = engine.vpool if self._KIND == VECTOR else engine.mpool
        self.var = pool.var[index]
        self.uid = pool.order[index]
        self._engine = engine
        self._index = index
        self._edges_override = None

    @property
    def edges(self):
        override = self._edges_override
        if override is not None:
            return override
        return self._engine.view_edges(self._KIND, self._index)

    @edges.setter
    def edges(self, value):
        self._edges_override = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self).__name__
        return f"<{kind} q{self.var} #{self.uid} @{self._index}>"


class PooledVectorNode(_PooledViewMixin, VectorNode):
    """View of a pooled vector node (a real :class:`VectorNode`)."""

    __slots__ = ("_engine", "_index", "_edges_override")
    _KIND = VECTOR

    def __init__(self, engine: "PooledEngine", index: int):
        self._init_view(engine, index)


class PooledMatrixNode(_PooledViewMixin, MatrixNode):
    """View of a pooled matrix node (a real :class:`MatrixNode`)."""

    __slots__ = ("_engine", "_index", "_edges_override")
    _KIND = MATRIX

    def __init__(self, engine: "PooledEngine", index: int):
        self._init_view(engine, index)


# ----------------------------------------------------------------------
# unique-table adapter
# ----------------------------------------------------------------------
class PooledUniqueAdapter:
    """Object-API facade over one pooled unique table.

    Exposes the :class:`~repro.dd.unique_table.UniqueTable` surface the
    rest of the package relies on — ``len``, ``hits``/``misses``,
    ``live_nodes``, ``audit_entries``, ``get_or_create`` — backed by the
    open-addressed table and the node pool.  ``audit_entries`` rebuilds the
    stored signature from the *pool arrays* while the paired view reports
    its (possibly fault-overridden) ``edges``, so the sanitizer's
    ``unique-key`` comparison retains its mutation-detection power.
    """

    def __init__(
        self,
        engine: "PooledEngine",
        kind: str,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._engine = engine
        self.kind = kind
        self._kindbit = VECTOR if kind == "vector" else MATRIX
        if registry is not None and registry.enabled:
            self._register(registry, {"kind": kind})

    def _register(self, registry: MetricsRegistry, labels: dict) -> None:
        hits = registry.counter("dd_unique_table_hits_total", labels)
        misses = registry.counter("dd_unique_table_misses_total", labels)
        ref = weakref.ref(self)

        def sync() -> None:
            adapter = ref()
            if adapter is not None:
                hits.set_value(adapter.hits)
                misses.set_value(adapter.misses)

        registry.add_collector(sync)

    @property
    def _raw(self) -> PooledUniqueTable:
        return (
            self._engine._vunique
            if self._kindbit == VECTOR
            else self._engine._munique
        )

    @property
    def _pool(self) -> NodePool:
        return self._engine.vpool if self._kindbit == VECTOR else self._engine.mpool

    @property
    def hits(self) -> int:
        return self._raw.hits

    @property
    def misses(self) -> int:
        return self._raw.misses

    def __len__(self) -> int:
        return len(self._raw)

    def live_nodes(self):
        engine = self._engine
        kind = self._kindbit
        return iter([engine.view(kind, index) for index in self._pool.live_indices()])

    def audit_entries(self) -> list:
        engine = self._engine
        kind = self._kindbit
        pool = self._pool
        weights = engine.weights
        entries = []
        for index in self._raw.iter_indices():
            if pool.var[index] == FREED_VAR:
                continue  # dangling table slot; flagged by the pool checks
            signature = (pool.var[index],) + tuple(
                (
                    TERMINAL.uid if succ < 0 else pool.order[succ],
                    weights.value(wsucc),
                )
                for succ, wsucc in pool.edges_of(index)
            )
            entries.append((signature, engine.view(kind, index)))
        return entries

    def get_or_create(self, var: int, edges: Tuple[Edge, ...]) -> Node:
        """Raw consing entry (compat API; weights are canonicalized)."""
        for edge in edges:
            weight = edge.weight
            real, imag = weight.real, weight.imag
            if not (real == real and imag == imag and abs(real) != float("inf")
                    and abs(imag) != float("inf")):
                raise DDError(
                    f"non-finite edge weight {weight!r} at level {var}"
                )
        engine = self._engine
        pool = self._pool
        if len(edges) != pool.arity:
            noun = "two" if pool.arity == 2 else "four"
            kind = "vector" if pool.arity == 2 else "matrix"
            raise ValueError(f"{kind} nodes have exactly {noun} successors")
        successors = [engine.node_index(edge.node) for edge in edges]
        weights = [engine.weights.lookup_index(edge.weight) for edge in edges]
        index = engine._cons(self._kindbit, var, successors, weights)
        return engine.view(self._kindbit, index)

    def clear(self) -> None:
        """Drop the consing table (pool slots are reclaimed at the next sweep)."""
        self._raw.clear()


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class PooledEngine:
    """Index-based DD operations over pooled storage.

    Owns the node pools, the open-addressed unique tables and the view
    caches; shares the package's :class:`WeightPool` and compute tables so
    statistics, governance accounting and cache eviction behave identically
    to the object backend.
    """

    def __init__(
        self,
        weights: WeightPool,
        vector_scheme: NormalizationScheme,
        caches: Dict[str, object],
        identity_skipping: bool = False,
    ):
        self.weights = weights
        self.vector_scheme = vector_scheme
        # Identity skipping (arXiv:2406.11959): matrix nodes of the shape
        # (e, 0, 0, e) are never consed — the constructor returns ``e``, and
        # the arithmetic virtualizes skipped levels back on demand.
        self.identity_skipping = bool(identity_skipping)
        self.identity_skips = 0
        self.vpool = NodePool(2)
        self.mpool = NodePool(4)
        self._vunique = PooledUniqueTable(self.vpool)
        self._munique = PooledUniqueTable(self.mpool)
        self._order = itertools.count(1)  # 0 is the terminal's uid
        self._add_cache = caches["add"]
        self._mult_mv_cache = caches["mult-mv"]
        self._mult_mm_cache = caches["mult-mm"]
        self._kron_cache = caches["kron"]
        self._adjoint_cache = caches["adjoint"]
        self._inner_cache = caches["inner"]
        self._apply_cache = caches["apply"]
        self._views: Tuple[weakref.WeakValueDictionary, weakref.WeakValueDictionary] = (
            weakref.WeakValueDictionary(),
            weakref.WeakValueDictionary(),
        )
        # Indices retired by a variable reorder: still allocated (stale
        # edges resolve through the package remap, which pins their views)
        # but withdrawn from the consing tables so future constructions
        # mint fresh indices — see ``retire_node``.
        self._retired: Tuple[set, set] = (set(), set())
        # Interned gate operations: op-key tuple -> small integer, so apply
        # cache keys are two-int tuples instead of nested tuples.
        self._gate_ids: Dict[tuple, int] = {}
        # Index-keyed weight-arithmetic memos (the complex operation
        # caches of arXiv:1911.12691): between mutations of the weight
        # table a repeated product/quotient/sum — or a whole normalization
        # of a repeated weight combination — resolves with one dict probe
        # instead of complex arithmetic plus a bucket search.
        #
        # Soundness: ``lookup`` snaps a raw value to the *nearest* stored
        # representative, so its result can change when a new
        # representative is minted closer to the raw value.  The memos are
        # therefore valid only for one ``weights.generation`` — every
        # helper clears them when the generation has moved, which keeps
        # the pooled backend's arithmetic bit-for-bit the object
        # backend's (the object backend re-resolves every lookup).
        # A result is *stable* when the raw value resolved at distance
        # zero (bit-identical to its representative, or canonically zero):
        # no later mint can ever resolve it differently, so those entries
        # survive generation bumps.  Tolerance-snapped results (distance
        # > 0) go into the fragile dicts and are dropped whenever the
        # generation moves.
        # Constructed apply kernels, reused across gate applications when
        # their canonicalization is mint-stable (kernel.cacheable).
        self._kernel_cache: Dict[tuple, object] = {}
        self._wmul_stable: Dict[Tuple[int, int], int] = {}
        self._wdiv_stable: Dict[Tuple[int, int], int] = {}
        self._wadd_stable: Dict[Tuple[int, int], int] = {}
        self._norm_stable: Dict[tuple, tuple] = {}
        self._wmul: Dict[Tuple[int, int], int] = {}
        self._wdiv: Dict[Tuple[int, int], int] = {}
        self._wadd: Dict[Tuple[int, int], int] = {}
        self._norm_memo: Dict[tuple, tuple] = {}
        self._memo_generation = self.weights.generation

    _WEIGHT_MEMO_CAP = 1 << 17

    # ------------------------------------------------------------------
    # weight arithmetic memos
    # ------------------------------------------------------------------
    def _sync_weight_memos(self) -> int:
        """Clear the fragile memos if the weight table mutated."""
        generation = self.weights.generation
        if self._memo_generation != generation:
            self._wmul.clear()
            self._wdiv.clear()
            self._wadd.clear()
            self._norm_memo.clear()
            self._memo_generation = generation
        return generation

    def _memo_store(
        self, stable: dict, fragile: dict, key, widx: int, raw: complex,
        generation: int,
    ) -> None:
        """File ``key -> widx`` under the right lifetime.

        Distance-zero results (``values[widx] == raw``, including the
        canonical zero) can never be beaten by a later mint and live in
        the stable dict.  Snapped results are valid only while no new
        representative appears: they go into the fragile dict — unless
        this very lookup minted (generation moved), in which case every
        fragile entry may already be stale and is dropped.
        """
        weights = self.weights
        if widx == 0 or weights._values[widx] == raw:
            if len(stable) >= self._WEIGHT_MEMO_CAP:
                stable.clear()
            stable[key] = widx
            if weights.generation != generation:
                self._sync_weight_memos()
            return
        if weights.generation != generation:
            self._sync_weight_memos()
        elif len(fragile) >= self._WEIGHT_MEMO_CAP:
            fragile.clear()
        fragile[key] = widx

    def _mul_index(self, a: int, b: int) -> int:
        """Index of ``values[a] * values[b]`` (commutative, ordered key)."""
        if a == 1:
            return b
        if b == 1:
            return a
        key = (a, b) if a <= b else (b, a)
        widx = self._wmul_stable.get(key)
        if widx is not None:
            return widx
        generation = self._sync_weight_memos()
        widx = self._wmul.get(key)
        if widx is None:
            weights = self.weights
            raw = weights._values[a] * weights._values[b]
            widx = weights.lookup_index(raw)
            self._memo_store(
                self._wmul_stable, self._wmul, key, widx, raw, generation
            )
        return widx

    def _div_index(self, a: int, b: int) -> int:
        """Index of ``values[a] / values[b]``."""
        if b == 1:
            return a
        key = (a, b)
        widx = self._wdiv_stable.get(key)
        if widx is not None:
            return widx
        generation = self._sync_weight_memos()
        widx = self._wdiv.get(key)
        if widx is None:
            weights = self.weights
            raw = weights._values[a] / weights._values[b]
            widx = weights.lookup_index(raw)
            self._memo_store(
                self._wdiv_stable, self._wdiv, key, widx, raw, generation
            )
        return widx

    def _add_index(self, a: int, b: int) -> int:
        """Index of ``values[a] + values[b]`` (0 when the sum is zero)."""
        key = (a, b) if a <= b else (b, a)
        widx = self._wadd_stable.get(key)
        if widx is not None:
            return widx
        generation = self._sync_weight_memos()
        widx = self._wadd.get(key)
        if widx is None:
            weights = self.weights
            raw = weights._values[a] + weights._values[b]
            widx = 0 if weights.is_zero(raw) else weights.lookup_index(raw)
            self._memo_store(
                self._wadd_stable, self._wadd, key, widx, raw, generation
            )
        return widx

    # ------------------------------------------------------------------
    # views and edge conversion
    # ------------------------------------------------------------------
    def view(self, kind: int, index: int) -> Node:
        if index < 0:
            return TERMINAL
        cache = self._views[kind]
        node = cache.get(index)
        if node is None:
            node = (
                PooledVectorNode(self, index)
                if kind == VECTOR
                else PooledMatrixNode(self, index)
            )
            cache[index] = node
        return node

    def view_edges(self, kind: int, index: int) -> Tuple[Edge, ...]:
        pool = self.vpool if kind == VECTOR else self.mpool
        value = self.weights.value
        return tuple(
            Edge(self.view(kind, succ), value(wsucc))
            for succ, wsucc in pool.edges_of(index)
        )

    def node_index(self, node: Node) -> int:
        if node.var < 0:
            return TERMINAL_INDEX
        index = getattr(node, "_index", None)
        if index is None or getattr(node, "_engine", None) is not self:
            raise DDError(
                "node does not belong to this package's pooled storage"
            )
        return index

    def to_edge(self, kind: int, edge: Tuple[int, int]) -> Edge:
        index, widx = edge
        if widx == 0:
            return ZERO_EDGE
        return Edge(self.view(kind, index), self.weights._values[widx])

    def from_edge(self, edge: Edge) -> Tuple[int, int]:
        return (
            self.node_index(edge.node),
            self.weights.lookup_index(edge.weight),
        )

    def var_of(self, kind: int, index: int) -> int:
        if index < 0:
            return -1
        pool = self.vpool if kind == VECTOR else self.mpool
        return pool.var[index]

    def count_nodes(self, kind: int, index: int) -> int:
        """Reachable non-terminal node count, walked on the flat arrays."""
        if index < 0:
            return 0
        pool = self.vpool if kind == VECTOR else self.mpool
        succ = pool.succ
        arity = pool.arity
        seen = {index}
        stack = [index]
        pop = stack.pop
        push = stack.append
        while stack:
            base = pop() * arity
            for k in range(base, base + arity):
                # Mirror the object walk: any stored successor counts,
                # even under a (theoretical) zero weight.
                child = succ[k]
                if child >= 0 and child not in seen:
                    seen.add(child)
                    push(child)
        return len(seen)

    # ------------------------------------------------------------------
    # weight arithmetic (index level)
    # ------------------------------------------------------------------
    def scale(self, edge: Tuple[int, int], factor: int) -> Tuple[int, int]:
        """Mirror of :meth:`Edge.scaled` on index pairs."""
        if factor == 1:
            return edge
        widx = self._mul_index(edge[1], factor)
        if widx == 0:
            return ZERO_E
        return (edge[0], widx)

    # ------------------------------------------------------------------
    # node creation (normalizing constructor)
    # ------------------------------------------------------------------
    def _cons(
        self, kind: int, var: int, successors: Sequence[int], wsuccs: Sequence[int]
    ) -> int:
        """Hash-cons a node with already-normalized successors."""
        unique = self._vunique if kind == VECTOR else self._munique
        slot, found = unique.find_slot(var, successors, wsuccs)
        if found >= 0:
            unique.hits += 1
            return found
        unique.misses += 1
        pool = self.vpool if kind == VECTOR else self.mpool
        index = pool.alloc(var, successors, wsuccs, next(self._order))
        unique.insert_at(slot, index)
        return index

    def make_node_values(
        self, kind: int, var: int, value_edges: Tuple[Edge, ...]
    ) -> Tuple[int, int]:
        """Normalize + cons from ``Edge(node_index, raw_weight)`` tuples.

        Runs the *same* :func:`~repro.dd.normalization.normalize` as the
        object backend (the ``node`` field of the throwaway edges is an
        integer pool index, which normalization carries through untouched),
        so factor extraction and canonicalization are bit-identical.
        """
        if kind == MATRIX and self.identity_skipping:
            e0, e1, e2, e3 = value_edges
            if (
                e1.weight == ComplexTable.ZERO
                and e2.weight == ComplexTable.ZERO
                and e0.weight != ComplexTable.ZERO
                and e0 == e3
            ):
                self.identity_skips += 1
                n0 = e0.node if isinstance(e0.node, int) else TERMINAL_INDEX
                return (n0, self.weights.lookup_index(e0.weight))
        scheme = (
            self.vector_scheme if kind == VECTOR else NormalizationScheme.MAX_MAGNITUDE
        )
        factor, normalized = normalize(value_edges, self.weights, scheme)
        if factor == ComplexTable.ZERO:
            return ZERO_E
        exact = self.weights._exact
        successors = []
        wsuccs = []
        for edge in normalized:
            node = edge.node
            successors.append(node if isinstance(node, int) else TERMINAL_INDEX)
            weight = edge.weight
            wsuccs.append(0 if weight == ComplexTable.ZERO else exact[weight])
        index = self._cons(kind, var, successors, wsuccs)
        if kind == VECTOR:
            # The L2 factor was canonicalized inside normalization.
            return (index, exact[factor])
        return (index, self.weights.lookup_index(factor))

    def make_node(
        self, kind: int, var: int, edges: Sequence[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """Normalize + cons from index-pair edges (the hot-path entry).

        Inlines :func:`~repro.dd.normalization.normalize` on the index
        pairs — the identical floating-point operations in the identical
        order (``_clean_edges`` is the identity here: pool indices only
        exist for finite canonical values, and the only sub-tolerance
        canonical value is the zero at index 0), so the result is
        bit-for-bit what :meth:`make_node_values` would have produced,
        without materializing throwaway edge tuples.
        """
        weights = self.weights
        if kind == MATRIX and self.identity_skipping:
            (n0, w0), (n1, w1), (n2, w2), (n3, w3) = edges
            if w1 == 0 and w2 == 0 and w0 != 0 and n0 == n3 and w0 == w3:
                self.identity_skips += 1
                return (n0, w0)
        if kind == VECTOR and self.vector_scheme is NormalizationScheme.L2:
            (n0, w0), (n1, w1) = edges
            if w0 == 0 and w1 == 0:
                return ZERO_E
            # Normalization depends only on the weight pair, so a repeated
            # pair replays its canonical decomposition from the memo; the
            # successors are carried through unchanged (a zero input edge
            # points at the terminal, mirroring _clean_edges).
            hit = self._norm_stable.get((w0, w1))
            if hit is None:
                generation = self._sync_weight_memos()
                hit = self._norm_memo.get((w0, w1))
            if hit is None:
                values = weights._values
                if w0 == 0:
                    v1 = values[w1]
                    # sum() over the cleaned pair: 0 + 0.0 + |v1|**2.
                    norm = math.sqrt(0.0 + abs(v1) ** 2)
                    raw_factor = cmath.rect(norm, cmath.phase(v1))
                    factor = weights.lookup(raw_factor)
                    nw0 = 0
                    raw0 = complex(abs(v1) / norm, 0.0)
                    nw1 = weights.lookup_index(raw0)
                    stable = factor == raw_factor and values[nw1] == raw0
                elif w1 == 0:
                    v0 = values[w0]
                    norm = math.sqrt(0.0 + abs(v0) ** 2)
                    raw_factor = cmath.rect(norm, cmath.phase(v0))
                    factor = weights.lookup(raw_factor)
                    raw0 = complex(abs(v0) / norm, 0.0)
                    nw0 = weights.lookup_index(raw0)
                    nw1 = 0
                    stable = factor == raw_factor and values[nw0] == raw0
                else:
                    v0 = values[w0]
                    v1 = values[w1]
                    norm = math.sqrt(abs(v0) ** 2 + abs(v1) ** 2)
                    raw_factor = cmath.rect(norm, cmath.phase(v0))
                    factor = weights.lookup(raw_factor)
                    raw0 = complex(abs(v0) / norm, 0.0)
                    nw0 = weights.lookup_index(raw0)
                    # A normalized weight may collapse to zero (index 0);
                    # the successor is kept either way, mirroring
                    # make_node_values.
                    raw1 = v1 / factor
                    nw1 = weights.lookup_index(raw1)
                    stable = (
                        factor == raw_factor
                        and values[nw0] == raw0
                        and (nw1 == 0 or values[nw1] == raw1)
                    )
                hit = (weights._exact[factor], nw0, nw1)
                if stable:
                    # Every component resolved at distance zero: no later
                    # mint can change this decomposition.
                    if len(self._norm_stable) >= self._WEIGHT_MEMO_CAP:
                        self._norm_stable.clear()
                    self._norm_stable[(w0, w1)] = hit
                    if weights.generation != generation:
                        self._sync_weight_memos()
                elif weights.generation == generation:
                    memo = self._norm_memo
                    if len(memo) >= self._WEIGHT_MEMO_CAP:
                        memo.clear()
                    memo[(w0, w1)] = hit
                else:
                    # A mid-normalization mint: an earlier lookup of the
                    # same pair might now resolve differently — recompute
                    # next time instead of memoizing.
                    self._sync_weight_memos()
            factor_index, nw0, nw1 = hit
            index = self._cons(
                kind,
                var,
                (n0 if w0 else TERMINAL_INDEX, n1 if w1 else TERMINAL_INDEX),
                (nw0, nw1),
            )
            return (index, factor_index)
        # MAX_MAGNITUDE (matrix nodes; vector nodes under that scheme).
        key = (kind,) + tuple(w for _n, w in edges)
        hit = self._norm_stable.get(key)
        if hit is None:
            generation = self._sync_weight_memos()
            hit = self._norm_memo.get(key)
        if hit is None:
            values = weights._values
            vals = [values[w] for _n, w in edges]
            magnitudes = [abs(v) for v in vals]
            maximum = max(magnitudes)
            if maximum == 0.0:
                return ZERO_E
            threshold = maximum - weights.tolerance
            pivot = next(
                k for k, magnitude in enumerate(magnitudes) if magnitude >= threshold
            )
            factor = vals[pivot]
            lookup_index = weights.lookup_index
            stable = True
            wsuccs = []
            for k, (_n, w) in enumerate(edges):
                if w == 0:
                    wsuccs.append(0)
                elif k == pivot:
                    wsuccs.append(WeightPool.ONE_INDEX)
                else:
                    raw = vals[k] / factor
                    widx = lookup_index(raw)
                    if widx != 0 and values[widx] != raw:
                        stable = False
                    wsuccs.append(widx)
            # The pivot weight is already canonical, so its lookup always
            # resolves at distance zero.
            hit = (lookup_index(factor), tuple(wsuccs))
            if stable:
                if len(self._norm_stable) >= self._WEIGHT_MEMO_CAP:
                    self._norm_stable.clear()
                self._norm_stable[key] = hit
                if weights.generation != generation:
                    self._sync_weight_memos()
            elif weights.generation == generation:
                memo = self._norm_memo
                if len(memo) >= self._WEIGHT_MEMO_CAP:
                    memo.clear()
                memo[key] = hit
            else:
                self._sync_weight_memos()
        factor_index, wsuccs = hit
        successors = tuple(
            n if w else TERMINAL_INDEX for n, w in edges
        )
        index = self._cons(kind, var, successors, wsuccs)
        return (index, factor_index)

    def make_node_public(self, kind: int, var: int, edges: Sequence[Edge]) -> Edge:
        """Package-boundary constructor taking ordinary edge objects."""
        arity = 2 if kind == VECTOR else 4
        if len(edges) != arity:
            noun = "two" if arity == 2 else "four"
            name = "vector" if arity == 2 else "matrix"
            raise ValueError(f"{name} nodes have exactly {noun} successors")
        converted = tuple(
            Edge(self.node_index(edge.node), edge.weight) for edge in edges
        )
        return self.to_edge(kind, self.make_node_values(kind, var, converted))

    # ------------------------------------------------------------------
    # arithmetic (index level; each mirrors the object backend)
    # ------------------------------------------------------------------
    def add(
        self, kind: int, left: Tuple[int, int], right: Tuple[int, int]
    ) -> Tuple[int, int]:
        ln, lw = left
        rn, rw = right
        if lw == 0:
            return right
        if rw == 0:
            return left
        if ln < 0 and rn < 0:
            total = self._add_index(lw, rw)
            if total == 0:
                return ZERO_E
            return (TERMINAL_INDEX, total)
        pool = self.vpool if kind == VECTOR else self.mpool
        lvar = pool.var[ln] if ln >= 0 else -1
        rvar = pool.var[rn] if rn >= 0 else -1
        if lvar != rvar:
            if kind == MATRIX and self.identity_skipping:
                return self._add_skipping((ln, lw), (rn, rw))
            raise DimensionMismatchError(
                f"cannot add DDs at levels {lvar} and {rvar}"
            )
        # Addition is commutative: order operands for better cache reuse
        # (creation-order stamps mirror the object backend's uid ordering).
        order = pool.order
        if order[rn] < order[ln]:
            ln, lw, rn, rw = rn, rw, ln, lw
        # Factor the left weight out: l + r = w_l * (l/w_l + r/w_l).
        ratio = self._div_index(rw, lw)
        key = (kind, ln, rn, ratio)
        cache = self._add_cache
        cached = cache.lookup(key)
        if cached is None:
            arity = pool.arity
            succ, wsucc = pool.succ, pool.wsucc
            lbase = ln * arity
            rbase = rn * arity
            children = [
                self.add(
                    kind,
                    (succ[lbase + k], wsucc[lbase + k]),
                    self.scale((succ[rbase + k], wsucc[rbase + k]), ratio),
                )
                for k in range(arity)
            ]
            cached = self.make_node(kind, lvar, children)
            cache.insert(key, cached)
        return self.scale(cached, lw)

    def _mchildren_at(self, index: int, var: int, widx: int):
        """Successors of ``widx * node`` viewed as a matrix node at ``var``.

        With identity skipping, the terminal or a node below ``var`` stands
        for ``I ⊗ ... ⊗ node`` — virtually a diagonal node ``(e, 0, 0, e)``.
        """
        if index >= 0 and self.mpool.var[index] == var:
            base = index * 4
            succ, wsucc = self.mpool.succ, self.mpool.wsucc
            return tuple(
                self.scale((succ[base + k], wsucc[base + k]), widx)
                for k in range(4)
            )
        unit = (index, widx)
        return (unit, ZERO_E, ZERO_E, unit)

    def _add_skipping(
        self, left: Tuple[int, int], right: Tuple[int, int]
    ) -> Tuple[int, int]:
        """Matrix addition across mismatched (skipped) levels."""
        ln, lw = left
        rn, rw = right
        pool = self.mpool
        order = pool.order
        if (order[rn] if rn >= 0 else 0) < (order[ln] if ln >= 0 else 0):
            ln, lw, rn, rw = rn, rw, ln, lw
        var = max(
            pool.var[ln] if ln >= 0 else -1,
            pool.var[rn] if rn >= 0 else -1,
        )
        ratio = self._div_index(rw, lw)
        key = (MATRIX, ln, rn, ratio)
        cache = self._add_cache
        cached = cache.lookup(key)
        if cached is None:
            lchildren = self._mchildren_at(ln, var, 1)
            rchildren = self._mchildren_at(rn, var, ratio)
            children = [
                self.add(MATRIX, lchildren[k], rchildren[k]) for k in range(4)
            ]
            cached = self.make_node(MATRIX, var, children)
            cache.insert(key, cached)
        return self.scale(cached, lw)

    def multiply_mv(
        self, m_edge: Tuple[int, int], v_edge: Tuple[int, int]
    ) -> Tuple[int, int]:
        mn, mw = m_edge
        vn, vw = v_edge
        if mw == 0 or vw == 0:
            return ZERO_E
        factor = self._mul_index(mw, vw)
        if mn < 0 and vn < 0:
            return (TERMINAL_INDEX, factor)
        if self.identity_skipping and vn >= 0:
            if mn < 0:
                # w * I applied to the (dense) state: rescale only.
                return (vn, factor)
            if self.mpool.var[mn] < self.vpool.var[vn]:
                return self.scale(self._multiply_mv_skipping(mn, vn), factor)
        mvar = self.mpool.var[mn] if mn >= 0 else -1
        vvar = self.vpool.var[vn] if vn >= 0 else -1
        if mvar != vvar:
            raise DimensionMismatchError(
                f"matrix level {mvar} does not match vector level {vvar}"
            )
        key = (mn, vn)
        cache = self._mult_mv_cache
        cached = cache.lookup(key)
        if cached is None:
            msucc, mwsucc = self.mpool.succ, self.mpool.wsucc
            vsucc, vwsucc = self.vpool.succ, self.vpool.wsucc
            mbase = mn * 4
            vbase = vn * 2
            v0 = (vsucc[vbase], vwsucc[vbase])
            v1 = (vsucc[vbase + 1], vwsucc[vbase + 1])
            children = [
                self.add(
                    VECTOR,
                    self.multiply_mv(
                        (msucc[mbase + 2 * i], mwsucc[mbase + 2 * i]), v0
                    ),
                    self.multiply_mv(
                        (msucc[mbase + 2 * i + 1], mwsucc[mbase + 2 * i + 1]), v1
                    ),
                )
                for i in (0, 1)
            ]
            cached = self.make_node(VECTOR, mvar, children)
            cache.insert(key, cached)
        return self.scale(cached, factor)

    def _multiply_mv_skipping(self, mn: int, vn: int) -> Tuple[int, int]:
        """Matrix-vector product where the matrix skips the vector's level."""
        vvar = self.vpool.var[vn]
        key = (mn, vn)
        cache = self._mult_mv_cache
        cached = cache.lookup(key)
        if cached is None:
            mchildren = self._mchildren_at(mn, vvar, 1)
            vsucc, vwsucc = self.vpool.succ, self.vpool.wsucc
            vbase = vn * 2
            v0 = (vsucc[vbase], vwsucc[vbase])
            v1 = (vsucc[vbase + 1], vwsucc[vbase + 1])
            children = [
                self.add(
                    VECTOR,
                    self.multiply_mv(mchildren[2 * i], v0),
                    self.multiply_mv(mchildren[2 * i + 1], v1),
                )
                for i in (0, 1)
            ]
            cached = self.make_node(VECTOR, vvar, children)
            cache.insert(key, cached)
        return cached

    def _multiply_mm_skipping(self, an: int, bn: int) -> Tuple[int, int]:
        """Matrix-matrix product across mismatched (skipped) levels."""
        var = max(self.mpool.var[an], self.mpool.var[bn])
        key = (an, bn)
        cache = self._mult_mm_cache
        cached = cache.lookup(key)
        if cached is None:
            achildren = self._mchildren_at(an, var, 1)
            bchildren = self._mchildren_at(bn, var, 1)
            children = []
            for i in (0, 1):
                for j in (0, 1):
                    children.append(
                        self.add(
                            MATRIX,
                            self.multiply_mm(achildren[2 * i], bchildren[j]),
                            self.multiply_mm(
                                achildren[2 * i + 1], bchildren[2 + j]
                            ),
                        )
                    )
            cached = self.make_node(MATRIX, var, children)
            cache.insert(key, cached)
        return cached

    def multiply_mm(
        self, a_edge: Tuple[int, int], b_edge: Tuple[int, int]
    ) -> Tuple[int, int]:
        an, aw = a_edge
        bn, bw = b_edge
        if aw == 0 or bw == 0:
            return ZERO_E
        factor = self._mul_index(aw, bw)
        if an < 0 and bn < 0:
            return (TERMINAL_INDEX, factor)
        if self.identity_skipping:
            # w * I absorbs into the other operand's weight.
            if an < 0:
                return (bn, factor)
            if bn < 0:
                return (an, factor)
            if self.mpool.var[an] != self.mpool.var[bn]:
                return self.scale(self._multiply_mm_skipping(an, bn), factor)
        avar = self.mpool.var[an] if an >= 0 else -1
        bvar = self.mpool.var[bn] if bn >= 0 else -1
        if avar != bvar:
            raise DimensionMismatchError(
                f"cannot multiply matrix DDs at levels {avar} and {bvar}"
            )
        key = (an, bn)
        cache = self._mult_mm_cache
        cached = cache.lookup(key)
        if cached is None:
            succ, wsucc = self.mpool.succ, self.mpool.wsucc
            abase = an * 4
            bbase = bn * 4
            children = []
            for i in (0, 1):
                for j in (0, 1):
                    children.append(
                        self.add(
                            MATRIX,
                            self.multiply_mm(
                                (succ[abase + 2 * i], wsucc[abase + 2 * i]),
                                (succ[bbase + j], wsucc[bbase + j]),
                            ),
                            self.multiply_mm(
                                (succ[abase + 2 * i + 1], wsucc[abase + 2 * i + 1]),
                                (succ[bbase + 2 + j], wsucc[bbase + 2 + j]),
                            ),
                        )
                    )
            cached = self.make_node(MATRIX, avar, children)
            cache.insert(key, cached)
        return self.scale(cached, factor)

    def kron(
        self,
        kind: int,
        top: Tuple[int, int],
        bottom: Tuple[int, int],
        shift: int,
    ) -> Tuple[int, int]:
        if top[1] == 0 or bottom[1] == 0:
            return ZERO_E
        factor = self._mul_index(top[1], bottom[1])
        result = self.kron_nodes(kind, top[0], bottom[0], shift)
        return self.scale(result, factor)

    def kron_nodes(
        self, kind: int, top: int, bottom: int, shift: int
    ) -> Tuple[int, int]:
        if top < 0:
            return (bottom, 1)
        key = (kind, top, bottom, shift)
        cache = self._kron_cache
        cached = cache.lookup(key)
        if cached is None:
            pool = self.vpool if kind == VECTOR else self.mpool
            children = []
            for succ, wsucc in pool.edges_of(top):
                if wsucc == 0:
                    children.append(ZERO_E)
                else:
                    sub = self.kron_nodes(kind, succ, bottom, shift)
                    children.append(self.scale(sub, wsucc))
            cached = self.make_node(kind, pool.var[top] + shift, children)
            cache.insert(key, cached)
        return cached

    def adjoint(self, operation: Tuple[int, int]) -> Tuple[int, int]:
        if operation[1] == 0:
            return ZERO_E
        weights = self.weights
        weight = weights.lookup_index(weights._values[operation[1]].conjugate())
        result = self.adjoint_node(operation[0])
        return self.scale(result, weight)

    def adjoint_node(self, index: int) -> Tuple[int, int]:
        if index < 0:
            return ONE_E
        cached = self._adjoint_cache.lookup(index)
        if cached is None:
            succ, wsucc = self.mpool.succ, self.mpool.wsucc
            base = index * 4
            transposed = (base, base + 2, base + 1, base + 3)
            children = [
                self.adjoint((succ[offset], wsucc[offset])) for offset in transposed
            ]
            cached = self.make_node(MATRIX, self.mpool.var[index], children)
            self._adjoint_cache.insert(index, cached)
        return cached

    def inner_nodes(self, left: int, right: int) -> complex:
        if left < 0 and right < 0:
            return complex(1.0, 0.0)
        pool = self.vpool
        lvar = pool.var[left] if left >= 0 else -1
        rvar = pool.var[right] if right >= 0 else -1
        if lvar != rvar:
            raise DimensionMismatchError(
                f"inner product of DDs at levels {lvar} and {rvar}"
            )
        key = (left, right)
        cached = self._inner_cache.lookup(key)
        if cached is None:
            values = self.weights._values
            succ, wsucc = pool.succ, pool.wsucc
            lbase = left * 2
            rbase = right * 2
            total = complex(0.0, 0.0)
            for index in (0, 1):
                lww = wsucc[lbase + index]
                rww = wsucc[rbase + index]
                if lww == 0 or rww == 0:
                    continue
                total += (
                    values[lww].conjugate()
                    * values[rww]
                    * self.inner_nodes(succ[lbase + index], succ[rbase + index])
                )
            cached = total
            self._inner_cache.insert(key, cached)
        return cached

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def clear_memos(self) -> None:
        """Drop engine-private memoization (the interned gate ids).

        The shared compute tables are cleared by the package; this hook
        exists so ``clear_caches``/HARD collections also reset state whose
        keys embed canonical weight values.  The weight-arithmetic memos
        are keyed on (and resolve to) weight indices, so they MUST be
        dropped before any sweep can recycle an index.
        """
        self._gate_ids.clear()
        self._kernel_cache.clear()
        self._wmul.clear()
        self._wdiv.clear()
        self._wadd.clear()
        self._norm_memo.clear()
        self._wmul_stable.clear()
        self._wdiv_stable.clear()
        self._wadd_stable.clear()
        self._norm_stable.clear()

    def gate_id(self, op_key: tuple) -> int:
        """Intern an apply-kernel operation key to a small integer."""
        gate_id = self._gate_ids.get(op_key)
        if gate_id is None:
            gate_id = len(self._gate_ids)
            self._gate_ids[op_key] = gate_id
        return gate_id

    def retire_node(self, node) -> None:
        """Withdraw a stale (pre-reorder) root node from its consing table.

        The package remap translates edges that still point at the node;
        retiring it guarantees no *future* construction can cons onto the
        same index, so remapping is idempotent (a current edge's node is
        never in the remap's domain).  The slot stays allocated while any
        view of it is Python-reachable and is excluded from unique-table
        rebuilds until it dies.
        """
        kind = node._KIND
        index = node._index
        unique = self._vunique if kind == VECTOR else self._munique
        if unique.remove_index(index):
            self._retired[kind].add(index)

    def is_retired(self, kind: int, index: int) -> bool:
        return index in self._retired[kind]

    def sweep(self, roots: Sequence[Tuple[Node, complex]]) -> Tuple[int, int]:
        """Mark-and-sweep the pools; returns ``(nodes_freed, weights_freed)``.

        Mark roots are every live view (any Python-reachable diagram) plus
        the governor's reference-counted root edges.  Must run only after
        every index-keyed cache has been cleared — freed indices are
        recycled by later allocations.
        """
        self.clear_memos()
        marked: Tuple[set, set] = (set(), set())
        stack: List[Tuple[int, int]] = []
        for kind in (VECTOR, MATRIX):
            for view in list(self._views[kind].values()):
                stack.append((kind, view._index))
        for node, _weight in roots:
            index = getattr(node, "_index", None)
            if index is not None and getattr(node, "_engine", None) is self:
                stack.append((node._KIND, index))
        pools = (self.vpool, self.mpool)
        while stack:
            kind, index = stack.pop()
            if index < 0 or index in marked[kind]:
                continue
            marked[kind].add(index)
            pool = pools[kind]
            base = index * pool.arity
            for offset in range(pool.arity):
                child = pool.succ[base + offset]
                if child >= 0 and child not in marked[kind]:
                    stack.append((kind, child))
        nodes_freed = 0
        marked_weights: set = set()
        for kind in (VECTOR, MATRIX):
            pool = pools[kind]
            live = marked[kind]
            for index in pool.live_indices():
                if index in live:
                    base = index * pool.arity
                    for offset in range(pool.arity):
                        marked_weights.add(pool.wsucc[base + offset])
                else:
                    pool.free(index)
                    nodes_freed += 1
            retired = self._retired[kind]
            retired.intersection_update(live)
            unique = self._vunique if kind == VECTOR else self._munique
            unique.rebuild(sorted(live - retired))
        exact = self.weights._exact
        for _node, weight in roots:
            widx = exact.get(weight)
            if widx is not None:
                marked_weights.add(widx)
        weights_freed = self.weights.sweep_indices(marked_weights)
        return nodes_freed, weights_freed

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def table_bytes(self) -> int:
        """Actual resident bytes of the flat index arrays."""
        return (
            self.vpool.array_bytes()
            + self.mpool.array_bytes()
            + self._vunique.array_bytes()
            + self._munique.array_bytes()
            + self.weights.index_bytes()
        )

    def stats(self) -> Dict[str, float]:
        return {
            "pooled": 1,
            "vector_slots": self.vpool.slot_count,
            "vector_live": self.vpool.live_count,
            "vector_free": len(self.vpool.free_list),
            "matrix_slots": self.mpool.slot_count,
            "matrix_live": self.mpool.live_count,
            "matrix_free": len(self.mpool.free_list),
            "weight_slots": self.weights.slot_count,
            "weight_free": len(self.weights._free),
            "unique_capacity": self._vunique.capacity + self._munique.capacity,
            "gate_ids": len(self._gate_ids),
            "identity_skips": self.identity_skips,
            "array_bytes": self.table_bytes(),
        }

    # ------------------------------------------------------------------
    # fault-injection support
    # ------------------------------------------------------------------
    def clone_node_for_fault(self, view: Node) -> int:
        """Allocate a structural clone bypassing hash consing (test-only).

        Plants the aliasing corruption the ``alias-unique-entry`` fault
        models: two live pool nodes with the same signature, both reachable
        through the unique table's probe chains.
        """
        kind = view._KIND
        pool = self.vpool if kind == VECTOR else self.mpool
        unique = self._vunique if kind == VECTOR else self._munique
        index = view._index
        base = index * pool.arity
        var = pool.var[index]
        successors = list(pool.succ[base : base + pool.arity])
        wsuccs = list(pool.wsucc[base : base + pool.arity])
        clone = pool.alloc(var, successors, wsuccs, next(self._order))
        slot = unique._hash(var, successors, wsuccs) & unique._mask
        while unique._slots[slot] >= 0:
            slot = (slot + 1) & unique._mask
        unique.insert_at(slot, clone)
        return clone


# ----------------------------------------------------------------------
# direct gate application on pooled storage
# ----------------------------------------------------------------------
class PooledApplyKernel:
    """Index-level mirror of :class:`repro.dd.apply._ApplyKernel`.

    Same recursion, same shortcuts (diagonal / antidiagonal / controlled /
    projector chain), same arithmetic on the same canonical values — but
    operating on ``(node_index, weight_index)`` pairs, with the apply-cache
    keyed ``(interned gate id, node index)`` so repeated gates hash two
    small integers instead of a nested unitary tuple.
    """

    __slots__ = (
        "engine", "weights", "pool", "cache", "mode", "kind",
        "u", "u_val", "target", "controls", "low", "below", "below_map",
        "below_low", "op_id", "proj_id", "kernel", "cacheable",
        "skipping", "high", "lines", "below_lines",
    )

    def __init__(
        self,
        package,
        mode: str,
        matrix,
        target: int,
        controls: Dict[int, int],
    ):
        import numpy as np

        engine = package._pooled
        self.engine = engine
        self.weights = engine.weights
        self.mode = mode
        self.kind = VECTOR if mode == "v" else MATRIX
        self.pool = engine.vpool if mode == "v" else engine.mpool
        self.cache = engine._apply_cache
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2, 2):
            raise DDError(f"expected a 2x2 matrix, got shape {matrix.shape}")
        if mode == "mr":
            matrix = matrix.T
        raw_values = tuple(complex(matrix[i, j]) for i in (0, 1) for j in (0, 1))
        self.u_val = tuple(self._canonical_value(value) for value in raw_values)
        exact = self.weights._exact
        self.u = tuple(
            0 if value == ComplexTable.ZERO else exact[value] for value in self.u_val
        )
        # Reusable across applications iff every matrix entry resolved at
        # distance zero (canonically zero, or bit-identical to its
        # representative): a later mint can then never change the
        # canonicalization, so a fresh construction would be identical.
        is_zero = self.weights.is_zero
        self.cacheable = all(
            is_zero(raw) or canonical == raw
            for raw, canonical in zip(raw_values, self.u_val)
        )
        self.target = target
        self.controls = dict(controls)
        for line, bit in self.controls.items():
            if line == target:
                raise DDError("target and control lines must be distinct")
            if bit not in (0, 1):
                raise DDError(f"control value must be 0 or 1, got {bit!r}")
        levels = [target, *self.controls]
        self.low = min(levels)
        self.high = max(levels)
        self.lines = tuple(sorted(levels, reverse=True))
        self.below = tuple(
            sorted((line, bit) for line, bit in self.controls.items() if line < target)
        )
        self.below_map = dict(self.below)
        self.below_low = self.below[0][0] if self.below else target
        self.below_lines = tuple(sorted(self.below_map, reverse=True))
        # Identity-skipping matrix DDs may skip gate lines; `_rec_s` mirrors
        # the object kernel's level-tracking recursion (vector DDs stay
        # dense, so mode "v" keeps the fast path).
        self.skipping = mode != "v" and bool(
            getattr(package, "identity_skipping", False)
        )
        ctrl_key = tuple(sorted(self.controls.items()))
        self.op_id = engine.gate_id(("apply", mode, self.u_val, target, ctrl_key))
        self.proj_id = engine.gate_id(("proj", mode, self.below))
        if self.controls:
            self.kernel = "controlled"
        elif self.u_val[1] == ComplexTable.ZERO and self.u_val[2] == ComplexTable.ZERO:
            self.kernel = "diagonal"
        elif self.u_val[0] == ComplexTable.ZERO and self.u_val[3] == ComplexTable.ZERO:
            self.kernel = "antidiagonal"
        else:
            self.kernel = "generic"

    def _canonical_value(self, value: complex) -> complex:
        value = complex(value)
        if self.weights.is_zero(value):
            return ComplexTable.ZERO
        return self.weights.lookup(value)

    def _canonical_index(self, value: complex) -> int:
        value = complex(value)
        if self.weights.is_zero(value):
            return 0
        return self.weights.lookup_index(value)

    # -- entry -----------------------------------------------------------
    def run(self, root: Edge) -> Edge:
        if root.is_zero:
            return ZERO_EDGE
        node = root.node
        engine = self.engine
        if self.skipping:
            if not node.is_terminal and not isinstance(node, MatrixNode):
                raise DDError("apply kernels need a matrix DD root")
            index = engine.node_index(node)
            entry = self.high if index < 0 else max(self.high, self.pool.var[index])
            widx = self.weights.lookup_index(root.weight)
            return engine.to_edge(
                self.kind, engine.scale(self._rec_s(index, entry), widx)
            )
        expected = VectorNode if self.mode == "v" else MatrixNode
        if node.is_terminal or not isinstance(node, expected):
            kind = "vector" if self.mode == "v" else "matrix"
            raise DDError(f"apply kernels need a non-trivial {kind} DD root")
        if node.var < self.target or (self.controls and node.var < max(self.controls)):
            raise DDError(
                f"gate lines exceed the DD's qubit range (root level {node.var})"
            )
        engine = self.engine
        index = engine.node_index(node)
        widx = self.weights.lookup_index(root.weight)
        return engine.to_edge(self.kind, engine.scale(self._rec(index), widx))

    # -- recursion over untouched upper levels ---------------------------
    def _rec(self, index: int) -> Tuple[int, int]:
        if index < 0 or self.pool.var[index] < self.low:
            # Everything the gate touches lies above: the subtree (possibly
            # the terminal) is shared unchanged.
            return (index, 1)
        key = (self.op_id, index)
        cache = self.cache
        cached = cache.lookup(key)
        if cached is None:
            cached = self._expand(index)
            cache.insert(key, cached)
        return cached

    def _rec_edge(self, edge: Tuple[int, int]) -> Tuple[int, int]:
        if edge[1] == 0:
            return ZERO_E
        return self.engine.scale(self._rec(edge[0]), edge[1])

    def _expand(self, index: int) -> Tuple[int, int]:
        var = self.pool.var[index]
        pairs = self._pairs(index)
        if var == self.target:
            new_pairs = [self._apply_target(pair) for pair in pairs]
        else:
            bit = self.controls.get(var)
            if bit is None:
                # A line between the gate's lines: descend on both branches.
                new_pairs = [
                    tuple(self._rec_edge(child) for child in pair) for pair in pairs
                ]
            else:
                # Control above the (remaining) gate lines: the active branch
                # continues, the inactive branch is shared unchanged.
                new_pairs = []
                for pair in pairs:
                    updated = list(pair)
                    updated[bit] = self._rec_edge(pair[bit])
                    new_pairs.append(tuple(updated))
        return self._make(var, new_pairs)

    # -- the target level -----------------------------------------------
    def _apply_target(self, pair):
        u00, u01, u10, u11 = self.u
        c0, c1 = pair
        engine = self.engine
        scale = engine.scale
        kind = self.kind
        if self.below:
            # Controls below the target: CU = I + P (U - I), with the
            # projector chain P applied to the subtrees first.
            add = engine.add
            d00 = self._canonical_index(self.u_val[0] - 1.0)
            d11 = self._canonical_index(self.u_val[3] - 1.0)
            p0 = self._proj_edge(c0)
            p1 = self._proj_edge(c1)
            new0 = add(kind, c0, add(kind, scale(p0, d00), scale(p1, u01)))
            new1 = add(kind, c1, add(kind, scale(p0, u10), scale(p1, d11)))
            return (new0, new1)
        if self.u_val[1] == ComplexTable.ZERO and self.u_val[2] == ComplexTable.ZERO:
            # Diagonal shortcut: only the edge weights change.
            return (scale(c0, u00), scale(c1, u11))
        if self.u_val[0] == ComplexTable.ZERO and self.u_val[3] == ComplexTable.ZERO:
            # Anti-diagonal shortcut (X/Y): swap the successors.
            return (scale(c1, u01), scale(c0, u10))
        add = engine.add
        new0 = add(kind, scale(c0, u00), scale(c1, u01))
        new1 = add(kind, scale(c0, u10), scale(c1, u11))
        return (new0, new1)

    # -- projector chain for controls below the target -------------------
    def _proj_edge(self, edge: Tuple[int, int]) -> Tuple[int, int]:
        if edge[1] == 0:
            return ZERO_E
        return self.engine.scale(self._proj(edge[0]), edge[1])

    def _proj(self, index: int) -> Tuple[int, int]:
        if index < 0 or self.pool.var[index] < self.below_low:
            return (index, 1)
        key = (self.proj_id, index)
        cache = self.cache
        cached = cache.lookup(key)
        if cached is None:
            var = self.pool.var[index]
            pairs = self._pairs(index)
            bit = self.below_map.get(var)
            new_pairs = []
            for pair in pairs:
                if bit is None:
                    new_pairs.append(tuple(self._proj_edge(child) for child in pair))
                else:
                    updated = [ZERO_E, ZERO_E]
                    updated[bit] = self._proj_edge(pair[bit])
                    new_pairs.append(tuple(updated))
            cached = self._make(var, new_pairs)
            cache.insert(key, cached)
        return cached

    # -- identity-skipping recursion (matrix modes) ----------------------
    # Mirror of `_ApplyKernel._rec_s`: skipped levels stand for identities,
    # so the recursion tracks the next gate line and keys the cache on it
    # (node-only keys would collide when gate lines fall in skipped ranges).
    @staticmethod
    def _next_line(lines: Tuple[int, ...], level: int):
        for line in lines:
            if line <= level:
                return line
        return None

    def _pairs_at(self, index: int, virtual: bool):
        if not virtual:
            return self._pairs(index)
        # The node skips this level: virtually a diagonal (e, 0, 0, e),
        # identical under row ("ml") and column ("mr") grouping.
        unit = (index, 1)
        return ((unit, ZERO_E), (ZERO_E, unit))

    def _rec_s_edge(self, edge: Tuple[int, int], level: int) -> Tuple[int, int]:
        if edge[1] == 0:
            return ZERO_E
        return self.engine.scale(self._rec_s(edge[0], level), edge[1])

    def _rec_s(self, index: int, level: int) -> Tuple[int, int]:
        line = self._next_line(self.lines, level)
        if line is None:
            return (index, 1)
        key = (self.op_id, index, line)
        cache = self.cache
        cached = cache.lookup(key)
        if cached is not None:
            return cached
        var = self.pool.var[index] if index >= 0 else -1
        if index >= 0 and var > line:
            pairs = self._pairs(index)
            new_pairs = [
                tuple(self._rec_s_edge(child, var - 1) for child in pair)
                for pair in pairs
            ]
            cached = self._make(var, new_pairs)
        else:
            virtual = index < 0 or var < line
            pairs = self._pairs_at(index, virtual)
            if line == self.target:
                new_pairs = [self._apply_target_s(pair) for pair in pairs]
            else:
                bit = self.controls[line]
                new_pairs = []
                for pair in pairs:
                    updated = list(pair)
                    updated[bit] = self._rec_s_edge(pair[bit], line - 1)
                    new_pairs.append(tuple(updated))
            cached = self._make(line, new_pairs)
        cache.insert(key, cached)
        return cached

    def _apply_target_s(self, pair):
        u00, u01, u10, u11 = self.u
        c0, c1 = pair
        engine = self.engine
        scale = engine.scale
        kind = self.kind
        if self.below:
            add = engine.add
            d00 = self._canonical_index(self.u_val[0] - 1.0)
            d11 = self._canonical_index(self.u_val[3] - 1.0)
            p0 = self._proj_s_edge(c0, self.target - 1)
            p1 = self._proj_s_edge(c1, self.target - 1)
            new0 = add(kind, c0, add(kind, scale(p0, d00), scale(p1, u01)))
            new1 = add(kind, c1, add(kind, scale(p0, u10), scale(p1, d11)))
            return (new0, new1)
        if self.u_val[1] == ComplexTable.ZERO and self.u_val[2] == ComplexTable.ZERO:
            return (scale(c0, u00), scale(c1, u11))
        if self.u_val[0] == ComplexTable.ZERO and self.u_val[3] == ComplexTable.ZERO:
            return (scale(c1, u01), scale(c0, u10))
        add = engine.add
        new0 = add(kind, scale(c0, u00), scale(c1, u01))
        new1 = add(kind, scale(c0, u10), scale(c1, u11))
        return (new0, new1)

    def _proj_s_edge(self, edge: Tuple[int, int], level: int) -> Tuple[int, int]:
        if edge[1] == 0:
            return ZERO_E
        return self.engine.scale(self._proj_s(edge[0], level), edge[1])

    def _proj_s(self, index: int, level: int) -> Tuple[int, int]:
        line = self._next_line(self.below_lines, level)
        if line is None:
            return (index, 1)
        key = (self.proj_id, index, line)
        cache = self.cache
        cached = cache.lookup(key)
        if cached is not None:
            return cached
        var = self.pool.var[index] if index >= 0 else -1
        if index >= 0 and var > line:
            pairs = self._pairs(index)
            new_pairs = [
                tuple(self._proj_s_edge(child, var - 1) for child in pair)
                for pair in pairs
            ]
            cached = self._make(var, new_pairs)
        else:
            virtual = index < 0 or var < line
            pairs = self._pairs_at(index, virtual)
            bit = self.below_map[line]
            new_pairs = []
            for pair in pairs:
                updated = [ZERO_E, ZERO_E]
                updated[bit] = self._proj_s_edge(pair[bit], line - 1)
                new_pairs.append(tuple(updated))
            cached = self._make(line, new_pairs)
        cache.insert(key, cached)
        return cached

    # -- mode-dependent successor layout ---------------------------------
    def _pairs(self, index: int):
        """Successors grouped into 2-vectors along the gate's active index."""
        pool = self.pool
        base = index * pool.arity
        succ, wsucc = pool.succ, pool.wsucc
        edges = [
            (succ[base + k], wsucc[base + k]) for k in range(pool.arity)
        ]
        if self.mode == "v":
            return (tuple(edges),)
        if self.mode == "ml":
            # Row pairs per column j: (U_0j, U_1j).
            return ((edges[0], edges[2]), (edges[1], edges[3]))
        # "mr": column pairs per row i: (U_i0, U_i1).
        return ((edges[0], edges[1]), (edges[2], edges[3]))

    def _make(self, var: int, new_pairs) -> Tuple[int, int]:
        if self.mode == "v":
            return self.engine.make_node(VECTOR, var, new_pairs[0])
        if self.mode == "ml":
            (e00, e10), (e01, e11) = new_pairs
        else:
            (e00, e01), (e10, e11) = new_pairs
        return self.engine.make_node(MATRIX, var, (e00, e01, e10, e11))
