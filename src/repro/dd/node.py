"""Decision-diagram nodes.

A *vector node* at level ``var`` has two successor edges (the |0> and |1>
branch of qubit ``q_var``); a *matrix node* has four successor edges,
corresponding to the four equally-sized sub-matrices ``U_ij`` (paper Sec.
III-A): edge ``2*i + j`` describes how the rest of the system is transformed
given that ``q_var`` is mapped from ``|j>`` to ``|i>``.

Nodes are hash-consed through :class:`repro.dd.unique_table.UniqueTable`;
therefore node *identity* implies structural equality and nodes use the
default identity hash.  Both node classes are immutable after construction.

The unique terminal node :data:`TERMINAL` sits below level 0 (``var == -1``)
and carries no successors.  Following the paper, the terminal is *not*
counted towards a decision diagram's size.
"""

from __future__ import annotations

import itertools
from typing import Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dd.edge import Edge

_node_ids = itertools.count()


class Node:
    """Common base for vector and matrix nodes (and the terminal)."""

    __slots__ = ("var", "edges", "uid", "__weakref__")

    def __init__(self, var: int, edges: Tuple["Edge", ...]):
        self.var = var
        self.edges = edges
        self.uid = next(_node_ids)

    @property
    def is_terminal(self) -> bool:
        return self.var < 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_terminal:
            return "<terminal>"
        kind = type(self).__name__
        return f"<{kind} q{self.var} #{self.uid}>"


class VectorNode(Node):
    """A node of a decision diagram representing a state vector."""

    __slots__ = ()

    def __init__(self, var: int, edges: Tuple["Edge", "Edge"]):
        if len(edges) != 2:
            raise ValueError("vector nodes have exactly two successors")
        super().__init__(var, edges)


class MatrixNode(Node):
    """A node of a decision diagram representing an operation matrix."""

    __slots__ = ()

    def __init__(self, var: int, edges: Tuple["Edge", "Edge", "Edge", "Edge"]):
        if len(edges) != 4:
            raise ValueError("matrix nodes have exactly four successors")
        super().__init__(var, edges)


class _TerminalNode(Node):
    """The unique terminal node (level -1, no successors)."""

    __slots__ = ()

    def __init__(self):
        super().__init__(-1, ())


#: The unique terminal node shared by all decision diagrams.
TERMINAL = _TerminalNode()
