"""Hash consing of decision-diagram nodes.

Equivalent sub-vectors (and sub-matrices) must be represented by the *same*
node for the sharing — and the canonicity used by the verification scheme —
to work (paper Sec. III-A and III-C).  The unique table maps a node's
structural signature ``(var, successor edges)`` to one canonical node object.

Nodes are held through weak references so that diagrams dropped by the user
are reclaimed by Python's garbage collector; the table never keeps a diagram
alive on its own.  (The C++ package of [14] achieves the same with explicit
reference counting; weak values are the Pythonic equivalent.)
"""

from __future__ import annotations

import math
import weakref
from typing import Callable, Iterator, Optional, Tuple

from repro.dd.edge import Edge
from repro.dd.node import Node
from repro.errors import DDError
from repro.obs.metrics import MetricsRegistry


def _signature(var: int, edges: Tuple[Edge, ...]) -> tuple:
    # Node identity (uid) is sufficient because successors are themselves
    # hash-consed; weights are canonical complex values, so exact equality
    # and hashing are sound.
    return (var,) + tuple((edge.node.uid, edge.weight) for edge in edges)


class UniqueTable:
    """One hash-consing table for a node kind (vector or matrix)."""

    def __init__(
        self,
        factory: Callable[[int, Tuple[Edge, ...]], Node],
        registry: Optional[MetricsRegistry] = None,
        kind: Optional[str] = None,
    ):
        self._factory = factory
        self._table: "weakref.WeakValueDictionary[tuple, Node]" = (
            weakref.WeakValueDictionary()
        )
        # Hit/miss statistics are plain integers (the get_or_create hot path
        # pays one increment); a registry collector copies them into labelled
        # counters at export time so `DDPackage.stats()` and the Prometheus
        # exporter read the same numbers.
        self.hits = 0
        self.misses = 0
        if registry is not None and registry.enabled:
            self._register(registry, {"kind": kind or factory.__name__})

    def _register(self, registry: MetricsRegistry, labels: dict) -> None:
        hits = registry.counter("dd_unique_table_hits_total", labels)
        misses = registry.counter("dd_unique_table_misses_total", labels)
        ref = weakref.ref(self)

        def sync() -> None:
            table = ref()
            if table is not None:
                hits.set_value(table.hits)
                misses.set_value(table.misses)

        registry.add_collector(sync)

    def get_or_create(self, var: int, edges: Tuple[Edge, ...]) -> Node:
        """Return the canonical node with the given level and successors."""
        for edge in edges:
            weight = edge.weight
            if not (math.isfinite(weight.real) and math.isfinite(weight.imag)):
                # A non-finite weight would poison every diagram sharing this
                # node (NaN breaks hashing/equality, so canonicity too); fail
                # at the entry gate where the culprit operation is on stack.
                raise DDError(
                    f"non-finite edge weight {weight!r} at level {var}"
                )
        key = _signature(var, edges)
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        node = self._factory(var, edges)
        self._table[key] = node
        return node

    def evict(self, nodes) -> int:
        """Drop the canonical entries for ``nodes`` (reorder retirement).

        After a variable reorder the old root nodes keep their pre-reorder
        structure but are semantically stale: the package's remap translates
        edges that still point at them.  Evicting them from the table makes
        the remap's domain unreachable for *future* constructions — a fresh
        node with the same signature conses a distinct object, so
        ``DDPackage._resolve`` can never mistake a current edge for a stale
        one.  The evicted nodes stay alive through ordinary references.
        """
        victims = {id(node) for node in nodes}
        removed = 0
        for key, node in list(self._table.items()):
            if id(node) in victims:
                try:
                    del self._table[key]
                except KeyError:  # pragma: no cover - weakref race
                    continue
                removed += 1
        return removed

    def __len__(self) -> int:
        return len(self._table)

    def live_nodes(self) -> Iterator[Node]:
        """Iterate over the currently live nodes (GC mark phase).

        ``WeakValueDictionary.values()`` already snapshots with strong
        references internally, so nodes cannot vanish mid-iteration.
        """
        return iter(self._table.values())

    def audit_entries(self) -> list:
        """Snapshot of ``(stored key, node)`` pairs for integrity audits.

        The sanitizer recomputes each node's signature and compares it to
        the stored key: a mismatch means the node was mutated after hash
        consing (or planted under a bogus key) and canonicity no longer
        holds for it.
        """
        return list(self._table.items())

    def clear(self) -> None:
        self._table.clear()
        self.hits = 0
        self.misses = 0
