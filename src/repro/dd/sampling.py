"""Measurement, sampling and reset on vector decision diagrams.

Implements the paper's Sec. III-B / IV-B semantics:

* **sampling** (weak simulation, [16]): a randomized single-path traversal.
  Under the L2 normalization scheme every sub-tree represents a norm-1
  vector, so at each node the squared magnitude of the |0>/|1> successor
  weight *is* the branch probability and sampling costs one root-to-terminal
  walk.  Under other schemes a (cached) subtree-norm computation provides
  the probabilities instead.
* **measurement** of a single qubit: the outcome probabilities are reported,
  an outcome is chosen (by the caller or at random), and the state collapses
  irreversibly via the corresponding projector, renormalized.  Measurements
  of classically simulated states are non-destructive in the sense that the
  pre-measurement DD can be kept and re-measured (paper Sec. III-B).
* **reset**: probabilistic reset as described in Sec. IV-B — the qubit is
  measured, the other branch is discarded, and the remaining branch becomes
  the |0> branch (equivalently: a conditional X after the collapse).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.dd.edge import Edge
from repro.dd.node import Node
from repro.dd.normalization import NormalizationScheme
from repro.dd.package import DDPackage
from repro.errors import DDError, InvalidStateError

_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_P0 = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
_P1 = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)

#: Callback deciding a measurement outcome given ``(p0, p1)``; mirrors the
#: web tool's pop-up dialog (paper Sec. IV-B).
OutcomeChooser = Callable[[float, float], int]


def _subtree_norms(edge: Edge, cache: Dict[Node, float]) -> float:
    """Squared norm of the sub-vector represented by ``edge``."""
    if edge.is_zero:
        return 0.0
    if edge.node.is_terminal:
        return abs(edge.weight) ** 2
    node_norm = cache.get(edge.node)
    if node_norm is None:
        node_norm = sum(_subtree_norms(child, cache) for child in edge.node.edges)
        cache[edge.node] = node_norm
    return abs(edge.weight) ** 2 * node_norm


def branch_probabilities(package: DDPackage, state: Edge) -> Tuple[float, float]:
    """Probabilities of the root qubit being |0> / |1> in ``state``."""
    state = package._resolve(state)
    return qubit_probabilities(
        package, state, package.qubit_at(state.node.var)
    )


def qubit_probabilities(
    package: DDPackage, state: Edge, qubit: int
) -> Tuple[float, float]:
    """Probabilities ``(p0, p1)`` of measuring ``qubit`` in ``state``.

    Works for any normalization scheme by accumulating path probabilities
    down to the qubit's level, then using (cached) subtree norms.
    """
    state = package._resolve(state)
    if state.is_zero:
        raise InvalidStateError("cannot measure the zero vector")
    num_qubits = package.num_qubits(state)
    if not 0 <= qubit < num_qubits:
        raise DDError(f"qubit {qubit} out of range for {num_qubits} qubits")
    # Under dynamic reordering the qubit's nodes sit at its *level*.
    level = package.level_of(qubit)
    cache: Dict[Node, float] = {}
    total = _subtree_norms(state, cache)
    if total <= 0.0:
        raise InvalidStateError("state has zero norm")

    # mass_cache[node] = probability mass of `outcome` within the
    # sub-vector rooted at `node` (memoized per node, so shared structure
    # is visited once instead of once per path).
    mass_cache: Dict[Node, float] = {}

    def mass(edge: Edge, outcome: int) -> float:
        if edge.is_zero:
            return 0.0
        if edge.node.is_terminal:
            # The measured qubit was skipped by a zero stub - impossible for
            # a non-zero path, because stubs only stand for zero vectors.
            return 0.0
        node_mass = mass_cache.get(edge.node)
        if node_mass is None:
            if edge.node.var == level:
                node_mass = _subtree_norms(edge.node.edges[outcome], cache)
            else:
                node_mass = sum(
                    mass(child, outcome) for child in edge.node.edges
                )
            mass_cache[edge.node] = node_mass
        return abs(edge.weight) ** 2 * node_mass

    p1 = mass(state, 1) / total
    p1 = min(max(p1, 0.0), 1.0)
    return 1.0 - p1, p1


def sample(
    package: DDPackage,
    state: Edge,
    rng: Optional[np.random.Generator] = None,
) -> str:
    """Draw one basis state from ``state`` via single-path traversal.

    Returns the big-endian bit string ``q_{n-1} ... q_0`` (paper footnote 1).
    """
    state = package._resolve(state)
    if state.is_zero:
        raise InvalidStateError("cannot sample from the zero vector")
    if rng is None:
        rng = np.random.default_rng()
    local = package.vector_scheme is NormalizationScheme.L2
    cache: Dict[Node, float] = {}
    num_qubits = 0 if state.node.is_terminal else state.node.var + 1
    # Bit at level l belongs to qubit_at(l); place it at its big-endian
    # string position so reordering never changes the reported outcomes.
    bits = [0] * num_qubits
    edge = state
    while not edge.node.is_terminal:
        zero_child, one_child = edge.node.edges
        if local:
            p0 = abs(zero_child.weight) ** 2
        else:
            mass0 = _subtree_norms(zero_child, cache)
            mass1 = _subtree_norms(one_child, cache)
            p0 = mass0 / (mass0 + mass1)
        outcome = 0 if rng.random() < p0 else 1
        bits[num_qubits - 1 - package.qubit_at(edge.node.var)] = outcome
        edge = edge.node.edges[outcome]
    return "".join(str(bit) for bit in bits)


def sample_counts(
    package: DDPackage,
    state: Edge,
    shots: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, int]:
    """Histogram of ``shots`` independent samples (non-destructive)."""
    if shots <= 0:
        raise DDError("shots must be positive")
    if rng is None:
        rng = np.random.default_rng()
    counts: Dict[str, int] = {}
    for _ in range(shots):
        outcome = sample(package, state, rng)
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def measure_qubit(
    package: DDPackage,
    state: Edge,
    qubit: int,
    outcome: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[int, float, Edge]:
    """Measure ``qubit``; returns ``(outcome, probability, collapsed_state)``.

    If ``outcome`` is given it is forced (its probability must be non-zero),
    mirroring the user choosing an option in the tool's measurement dialog;
    otherwise the outcome is drawn from ``rng``.
    """
    p0, p1 = qubit_probabilities(package, state, qubit)
    if outcome is None:
        if rng is None:
            rng = np.random.default_rng()
        outcome = 0 if rng.random() < p0 else 1
    if outcome not in (0, 1):
        raise DDError(f"measurement outcome must be 0 or 1, got {outcome}")
    probability = p0 if outcome == 0 else p1
    if probability <= 0.0:
        raise InvalidStateError(
            f"outcome {outcome} on qubit {qubit} has probability zero"
        )
    collapsed = _project(package, state, qubit, outcome, probability)
    return outcome, probability, collapsed


def _project(
    package: DDPackage, state: Edge, qubit: int, outcome: int, probability: float
) -> Edge:
    """Apply the outcome projector and renormalize."""
    matrix = _P0 if outcome == 0 else _P1
    if getattr(package, "use_apply_kernels", False):
        # Diagonal kernel: the projector only rescales (zeroes) edge
        # weights, no full-system matrix DD is built.
        from repro.dd.apply import apply_single_qubit

        projected = apply_single_qubit(package, state, matrix, qubit)
    else:
        num_qubits = package.num_qubits(state)
        projector = package.single_qubit_gate(num_qubits, matrix, qubit)
        projected = package.multiply(projector, state)
    if projected.is_zero:
        raise InvalidStateError("projection annihilated the state")
    scale = package.complex_table.lookup(
        projected.weight / math.sqrt(probability)
    )
    return Edge(projected.node, scale)


def reset_qubit(
    package: DDPackage,
    state: Edge,
    qubit: int,
    outcome: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[int, float, Edge]:
    """Probabilistic reset (paper Sec. IV-B).

    Measures the qubit (``outcome`` may be forced, as in the tool's dialog),
    discards the other branch, and re-initializes the qubit to |0>.
    Returns ``(observed_outcome, probability, new_state)``.
    """
    observed, probability, collapsed = measure_qubit(
        package, state, qubit, outcome, rng
    )
    if observed == 1:
        if getattr(package, "use_apply_kernels", False):
            from repro.dd.apply import apply_single_qubit

            collapsed = apply_single_qubit(package, collapsed, _X, qubit)
        else:
            num_qubits = package.num_qubits(state)
            flip = package.single_qubit_gate(num_qubits, _X, qubit)
            collapsed = package.multiply(flip, collapsed)
    return observed, probability, collapsed
