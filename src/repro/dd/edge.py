"""Weighted edges of decision diagrams.

An :class:`Edge` is a pointer to a node together with a complex weight.  The
amplitude of a basis state is the product of the edge weights along the
corresponding root-to-terminal path (paper Sec. III-A).

Two special shapes occur:

* the **zero stub**: an edge with weight ``0`` pointing directly at the
  terminal, denoting an all-zero sub-vector/sub-matrix regardless of level;
* **terminal edges** with non-zero weight, which represent scalars (they only
  appear as successors of level-0 nodes, or as the root of a 0-qubit DD).

Edges are immutable value objects; equality is structural (same node object,
same canonical weight), which — thanks to hash consing and the complex
table — coincides with semantic equality of the represented functions.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.dd.complex_table import ComplexTable
from repro.dd.node import Node, TERMINAL


class Edge(NamedTuple):
    """A weighted pointer to a decision-diagram node."""

    node: Node
    weight: complex

    @property
    def is_zero(self) -> bool:
        """Whether this edge denotes the zero vector/matrix."""
        return self.weight == ComplexTable.ZERO

    @property
    def is_terminal(self) -> bool:
        """Whether this edge points at the terminal node."""
        return self.node.is_terminal

    def with_weight(self, weight: complex) -> "Edge":
        """A copy of this edge carrying ``weight`` instead."""
        return Edge(self.node, weight)

    def scaled(self, factor: complex, table: ComplexTable) -> "Edge":
        """This edge with its weight multiplied by ``factor`` (canonicalized)."""
        if factor == ComplexTable.ONE:
            return self
        product = table.lookup(self.weight * factor)
        if product == ComplexTable.ZERO:
            return ZERO_EDGE
        return Edge(self.node, product)


#: The canonical zero stub (all-zero sub-function).
ZERO_EDGE = Edge(TERMINAL, ComplexTable.ZERO)

#: The scalar 1 (used as the root of empty tensor products).
ONE_EDGE = Edge(TERMINAL, ComplexTable.ONE)
