"""Memoization caches for decision-diagram operations.

DD packages employ *compute tables* so that repeated sub-computations (which
abound, thanks to sharing) are performed only once (paper footnote 4).  This
module provides a bounded cache: when the table exceeds its capacity it is
cleared wholesale, mirroring the fixed-size overwrite-on-collision tables of
the C++ package while staying simple and allocation-friendly in Python.

Keys may contain node objects (kept alive while cached — harmless because the
cache is bounded) and canonical complex weights.
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, Optional

from repro.obs.metrics import MetricsRegistry


class ComputeTable:
    """A bounded memoization table with hit/miss statistics.

    ``hits`` / ``misses`` / ``evictions`` are plain integer attributes so
    the lookup hot path costs exactly one increment.  When a ``registry``
    is given, a weakref-bound collector copies them into registry counters
    (labelled with the table name) at export time, so ``DDPackage.stats()``,
    the ``qdd-tool stats`` command and any Prometheus scrape all read the
    same numbers without taxing lookups.
    """

    def __init__(
        self,
        name: str,
        capacity: int = 1 << 16,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._table: Dict[Hashable, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if registry is not None and registry.enabled:
            self._register(registry)

    def _register(self, registry: MetricsRegistry) -> None:
        labels = {"table": self.name}
        hits = registry.counter("dd_compute_table_hits_total", labels)
        misses = registry.counter("dd_compute_table_misses_total", labels)
        evictions = registry.counter("dd_compute_table_evictions_total", labels)
        ref = weakref.ref(self)

        def sync() -> None:
            table = ref()
            if table is not None:
                hits.set_value(table.hits)
                misses.set_value(table.misses)
                evictions.set_value(table.evictions)

        registry.add_collector(sync)

    def lookup(self, key: Hashable):
        """Return the cached result for ``key`` or ``None`` if absent."""
        result = self._table.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def insert(self, key: Hashable, result: object) -> None:
        """Cache ``result`` under ``key`` (clearing the table when full)."""
        if len(self._table) >= self.capacity:
            self._table.clear()
            self.evictions += 1
        self._table[key] = result

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Empty the table and reset the hit/miss statistics.

        The counters describe the *current* table contents — after a HARD
        collection empties it, a stale pre-collection ratio would
        misrepresent cache effectiveness in ``stats()`` and ``/metrics``
        until enough fresh traffic drowned it out.  Evictions stay
        cumulative (they count capacity events over the table's lifetime).
        """
        self._table.clear()
        self.hits = 0
        self.misses = 0

    def shrink(self, fraction: float = 0.5) -> int:
        """Drop the oldest ``fraction`` of entries; return how many.

        Dict insertion order approximates LRU-by-insertion: the oldest
        entries are the least likely to be hit again.  Used by the resource
        governor's SOFT pressure tier, where dropping cached results also
        releases the strong node references that pin otherwise dead
        diagrams in the weak unique tables.  Like :meth:`clear`, a shrink
        that actually drops entries resets the hit/miss statistics so the
        reported ratio describes the surviving table.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        drop = int(len(self._table) * fraction)
        if drop <= 0:
            return 0
        if drop >= len(self._table):
            dropped = len(self._table)
            self._table.clear()
        else:
            for key in list(self._table)[:drop]:
                del self._table[key]
            dropped = drop
        self.hits = 0
        self.misses = 0
        return dropped

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ComputeTable {self.name}: {len(self._table)} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )
